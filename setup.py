"""Legacy setup shim.

``pip install -e .`` needs the ``wheel`` package to build editable installs
under PEP 660; on machines without it (e.g. offline environments), use::

    python setup.py develop --user

which installs the same editable package through setuptools directly.
"""

from setuptools import setup

setup()
