"""Isolation demo: the Faaslet security and sharing properties of §3.

Shows, with runnable checks rather than claims:

1. SFI memory safety — out-of-bounds access traps and is contained;
2. shared memory regions — two Faaslets communicate through a mapped
   region with zero copies and zero network traffic (Fig. 2);
3. resource isolation — network policy (no AF_UNIX) and traffic shaping;
   CPU metering via fuel quanta (a runaway guest is preempted);
4. snapshot hygiene — resetting from a Proto-Faaslet wipes tenant data
   between calls (§5.2).

Run:  python examples/isolation_demo.py
"""

from repro.faaslet import (
    AF_UNIX,
    Faaslet,
    FunctionDefinition,
    NetworkPolicyError,
    ProtoFaaslet,
    SOCK_STREAM,
)
from repro.host import StandaloneEnvironment
from repro.minilang import build
from repro.wasm import OutOfFuel


def check(label: str, ok: bool) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    assert ok


def main() -> None:
    env = StandaloneEnvironment()

    print("1. SFI memory safety")
    oob = Faaslet(
        FunctionDefinition.build(
            "oob",
            build("export int main() { int[] a = new int[4]; return a[123456789]; }"),
        ),
        env,
    )
    code, _ = oob.call()
    check("out-of-bounds access trapped, host unaffected", code != 0)

    print("2. Shared memory regions (zero-copy, zero network)")
    noop = FunctionDefinition.build("noop", build("export int main() { return 0; }"))
    env.state.set_state("region", b"\x00" * 128)
    writer, reader = Faaslet(noop, env), Faaslet(noop, env)
    base_w = writer.map_state_region("region", 128)
    base_r = reader.map_state_region("region", 128)
    writer.instance.memory.write(base_w, b"hello through shared memory")
    seen = bytes(reader.instance.memory.read(base_r, 27))
    check("writer's bytes visible to reader instantly", seen == b"hello through shared memory")
    check("no bytes crossed the network", env.state.tier.client.meter.total_bytes == 0)

    print("3. Resource isolation")
    try:
        writer.netns.socket(AF_UNIX, SOCK_STREAM)
        policy_ok = False
    except NetworkPolicyError:
        policy_ok = True
    check("AF_UNIX socket rejected by network policy", policy_ok)

    spinner = Faaslet(
        FunctionDefinition.build(
            "spin", build("export int main() { while (true) { } return 0; }")
        ),
        env,
        fuel=100_000,
    )
    try:
        spinner.instance.invoke("main")
        preempted = False
    except OutOfFuel:
        preempted = True
    check("runaway guest preempted after its fuel quantum", preempted)

    print("4. Snapshot hygiene across tenants")
    secret_fn = FunctionDefinition.build(
        "echo",
        build(
            """
            extern int input_size();
            extern int read_call_input(int buf, int len);
            extern void write_call_output(int buf, int len);
            export int main() {
                int[] buf = new int[32];
                read_call_input(ptr(buf), 128);
                write_call_output(ptr(buf), 128);
                return 0;
            }
            """
        ),
    )
    proto = ProtoFaaslet.capture(secret_fn, env)
    faaslet = proto.restore(env)
    faaslet.call(b"TENANT-A-SECRET")
    faaslet.reset()  # §5.2: restore the snapshot between tenants
    _, leaked = faaslet.call(b"")
    check("previous tenant's data wiped by reset", b"SECRET" not in leaked)
    print("\nAll isolation properties verified.")


if __name__ == "__main__":
    main()
