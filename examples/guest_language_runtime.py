"""A dynamic-language runtime inside a Faaslet (§3.1/§6.4/§6.5 in miniature).

The paper's headline host-interface feat is running CPython compiled to
WebAssembly inside a Faaslet, snapshotting the initialised interpreter so
cold starts restore in under a millisecond. This example does the same
with a Brainfuck interpreter written in minilang and compiled into the
sandbox: initialise the runtime once, snapshot it, then serve arbitrary
guest *programs* as function calls.

Run:  python examples/guest_language_runtime.py
"""

import time

from repro.apps.guest_interpreter import (
    CAT,
    HELLO_WORLD,
    build_interpreter_definition,
    make_interpreter_proto,
    run_program,
)
from repro.faaslet import Faaslet
from repro.host import StandaloneEnvironment


def main() -> None:
    env = StandaloneEnvironment()
    print("Compiling the guest interpreter (minilang -> wasm -> validate)...")
    definition = build_interpreter_definition()
    print(f"  {len(definition.compiled)} compiled functions in the module")

    print("Initialising the runtime and capturing a Proto-Faaslet...")
    t0 = time.perf_counter()
    proto = make_interpreter_proto(env, definition)
    capture_ms = (time.perf_counter() - t0) * 1e3
    print(f"  snapshot: {proto.size_bytes / 1024:.0f} KiB, captured in {capture_ms:.1f} ms")

    t0 = time.perf_counter()
    interp = proto.restore(env)
    restore_us = (time.perf_counter() - t0) * 1e6
    print(f"  restored a ready interpreter in {restore_us:.0f} us (COW pages)")

    print("\nRunning guest programs on the warm interpreter:")
    out = run_program(interp, HELLO_WORLD)
    print(f"  hello-world  -> {out.decode()!r}")
    out = run_program(interp, CAT, b"stateful serverless\x00")
    print(f"  cat          -> {out.decode()!r}")
    out = run_program(interp, ",>,>,[<<+>>-]<[<+>-]<.", b"AB\x01")
    print(f"  adder        -> {out!r}")

    bad_code, _ = interp.call(b"+[>+]!")
    print(f"  runaway program contained with exit code {bad_code} "
          "(interpreter survives)")
    out = run_program(interp, "+.")
    print(f"  next program sees a clean tape: {out!r}")

    print(f"\nGuest instructions interpreted so far: "
          f"{interp.instance.instructions_executed:,}")


if __name__ == "__main__":
    main()
