"""Distributed SGD training (the paper's §6.2 workload, Listing 1).

Trains a sparse linear classifier with HOGWILD-style lock-free updates:
``sgd_main`` chains ``weight_update`` workers per epoch, workers read
column chunks of the training matrix through ``SparseMatrixReadOnly`` DDOs
and update a shared ``VectorAsync`` weight vector through the two-tier
state architecture.

Run:  python examples/sgd_training.py
"""

import time

import numpy as np

from repro.apps import SGDConfig, generate_rcv1_like, run_sgd, setup_sgd
from repro.runtime import FaasmCluster


def main() -> None:
    print("Generating an RCV1-like synthetic dataset...")
    dataset = generate_rcv1_like(n_examples=2000, n_features=128, density=0.05)
    print(
        f"  {dataset.n_examples} examples x {dataset.n_features} features, "
        f"{dataset.features.nnz} non-zeros ({dataset.nbytes / 1024:.0f} KiB)"
    )

    cluster = FaasmCluster(n_hosts=4)
    setup_sgd(cluster, dataset)

    for n_workers in (1, 4, 8):
        config = SGDConfig(n_workers=n_workers, n_epochs=3, learning_rate=0.05)
        # Reset weights between runs.
        cluster.global_state.set_value(
            "sgd/weights", np.zeros(dataset.n_features).tobytes()
        )
        start = time.perf_counter()
        result = run_sgd(cluster, dataset, config)
        elapsed = time.perf_counter() - start
        print(
            f"  workers={n_workers}: accuracy={result['accuracy']:.3f} "
            f"time={elapsed:.2f}s "
            f"state-traffic={result['network_bytes'] / 1e6:.1f} MB"
        )

    print("\nPer-host local-tier replicas (data stays co-located with compute):")
    for instance in cluster.instances:
        keys = instance.local_tier.keys()
        mb = instance.local_tier.memory_bytes() / 1e6
        print(f"  {instance.host}: {len(keys)} replicas, {mb:.1f} MB shared memory")


if __name__ == "__main__":
    main()
