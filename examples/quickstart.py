"""Quickstart: deploy and invoke functions on a FAASM cluster.

Demonstrates the complete flow of the paper's Fig. 3/§5: write a guest
function in minilang (the C/C++ stand-in), upload it (compile → validate →
codegen → Proto-Faaslet snapshot), and invoke it through the cluster front
door. Also shows a host-native Python function (the CPython path) and
chained calls between them.

Run:  python examples/quickstart.py
"""

from repro.runtime import FaasmCluster

# A guest function in minilang: echoes its input, reversed.
REVERSE_SRC = """
extern int input_size();
extern int read_call_input(int buf, int len);
extern void write_call_output(int buf, int len);

export int main() {
    int n = input_size();
    int[] buf = new int[n];
    int[] out = new int[n];
    read_call_input(ptr(buf), n);
    for (int i = 0; i < n; i = i + 1) {
        storeb(ptr(out) + i, loadb(ptr(buf) + n - 1 - i));
    }
    write_call_output(ptr(out), n);
    return 0;
}
"""

# A guest doing real computation in the sandbox.
FIB_SRC = """
extern int input_size();
extern void write_call_output(int buf, int len);

int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}

export int main() {
    int result = fib(input_size());
    int[] out = new int[4];
    // Render the integer as decimal digits.
    int len = 0;
    int v = result;
    if (v == 0) { storeb(ptr(out), 48); len = 1; }
    int[] digits = new int[12];
    int nd = 0;
    while (v > 0) {
        digits[nd] = v % 10;
        v = v / 10;
        nd = nd + 1;
    }
    while (nd > 0) {
        nd = nd - 1;
        storeb(ptr(out) + len, 48 + digits[nd]);
        len = len + 1;
    }
    write_call_output(ptr(out), len);
    return 0;
}
"""


def shout(ctx):
    """A host-native Python function chaining into the wasm guest."""
    text = ctx.input().decode()
    call_id = ctx.chain("reverse", text.upper().encode())
    if ctx.await_call(call_id) != 0:
        raise RuntimeError("chained call failed")
    ctx.write_output(ctx.call_output(call_id))


def main() -> None:
    # Two "hosts" in one process: separate local state tiers and Faaslet
    # pools sharing one global tier, as in Fig. 5.
    cluster = FaasmCluster(n_hosts=2)

    print("Uploading functions (compile -> validate -> codegen -> snapshot)...")
    cluster.upload("reverse", REVERSE_SRC)
    cluster.upload("fib", FIB_SRC)
    cluster.register_python("shout", shout)

    code, output = cluster.invoke("reverse", b"faasm")
    print(f"reverse('faasm')      -> {output.decode()!r} (exit {code})")

    code, output = cluster.invoke("fib", b"x" * 20)  # fib(len(input))
    print(f"fib(20)               -> {output.decode()} (exit {code})")

    code, output = cluster.invoke("shout", b"stateful serverless")
    print(f"shout(...)            -> {output.decode()!r} (exit {code})")

    print("\nScheduler state (warm hosts per function, held in the global tier):")
    for name in ("reverse", "fib"):
        print(f"  {name}: {sorted(cluster.warm_sets.warm_hosts(name))}")
    print(f"Cold starts across the cluster: {cluster.total_cold_starts()}")
    print(f"State-tier network traffic: {cluster.total_network_bytes()} bytes")


if __name__ == "__main__":
    main()
