"""Inference serving with snapshot-backed cold starts (§6.3, Fig. 7).

Serves an MLP classifier (the MobileNet stand-in) from a FAASM cluster.
The model is published once to the global state tier; the first request on
each host pulls it into the local tier and every subsequent co-located
request reads it through shared memory at zero network cost.

Run:  python examples/inference_serving.py
"""

import time

import numpy as np

from repro.apps import classify, generate_images, setup_inference
from repro.runtime import FaasmCluster


def main() -> None:
    cluster = FaasmCluster(n_hosts=2)
    model = setup_inference(cluster)
    images = generate_images(count=50, size_bytes=256)

    latencies = []
    for i, image in enumerate(images):
        start = time.perf_counter()
        label = classify(cluster, image)
        latencies.append(time.perf_counter() - start)
        if i < 3:
            expected = model.classify(
                np.frombuffer(image, dtype=np.uint8)[: model.in_features].astype(float)
                / 255.0
            )
            assert label == expected

    latencies_ms = sorted(x * 1e3 for x in latencies)
    print(f"Served {len(images)} requests on {len(cluster.instances)} hosts")
    print(f"  median latency: {latencies_ms[len(latencies_ms) // 2]:.2f} ms")
    print(f"  p95 latency:    {latencies_ms[int(len(latencies_ms) * 0.95)]:.2f} ms")
    print(
        "  model traffic:  "
        f"{cluster.total_network_bytes() / 1e3:.1f} KB total "
        "(pulled once per host, then shared via the local tier)"
    )


if __name__ == "__main__":
    main()
