"""Map/reduce word count — the big-data workload class the paper targets.

Publishes a corpus to the state tier in one value, then chains mapper
functions over column chunks (each pulls only its byte range, Fig. 4) and
a reducer that merges partial counts under the global write lock.

Run:  python examples/wordcount_mapreduce.py
"""

import time

from repro.apps import reference_wordcount, run_wordcount, setup_wordcount
from repro.runtime import FaasmCluster

CORPUS = (
    b"serverless computing is an excellent fit for big data processing "
    b"because it can scale quickly and cheaply to thousands of parallel "
    b"functions existing platforms isolate functions in ephemeral "
    b"stateless containers preventing them from sharing memory directly "
) * 50


def main() -> None:
    cluster = FaasmCluster(n_hosts=4, capacity=8)
    setup_wordcount(cluster, CORPUS)
    print(f"Corpus: {len(CORPUS)} bytes in the global state tier")

    start = time.perf_counter()
    counts = run_wordcount(cluster, chunk_size=2048)
    elapsed = time.perf_counter() - start

    assert counts == reference_wordcount(CORPUS)
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    mappers = sum(1 for r in cluster.calls.all_records() if r.function == "wc_map")
    print(f"Counted {sum(counts.values())} words ({len(counts)} distinct) "
          f"in {elapsed:.2f}s with {mappers} mappers + 1 reducer")
    print("Top words:", ", ".join(f"{w}={n}" for w, n in top))
    print(f"State traffic: {cluster.total_network_bytes() / 1e6:.2f} MB "
          f"(corpus read once per host chunk, partials merged once)")


if __name__ == "__main__":
    main()
