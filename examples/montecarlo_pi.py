"""Monte-Carlo π with every function running inside the sandbox.

The driver and all workers are wasm guests (minilang-compiled): chaining,
randomness (``getrandom``), state publication and aggregation all happen
through the Tab. 2 host interface with zero host-side application code.

Run:  python examples/montecarlo_pi.py
"""

import time

from repro.apps import estimate_pi, setup_montecarlo
from repro.runtime import FaasmCluster


def main() -> None:
    cluster = FaasmCluster(n_hosts=2, capacity=16)
    print("Uploading wasm driver + worker (compile -> validate -> snapshot)...")
    setup_montecarlo(cluster)

    for n_workers in (1, 4, 8):
        start = time.perf_counter()
        pi = estimate_pi(cluster, n_workers=n_workers, samples_k=2)
        elapsed = time.perf_counter() - start
        total = n_workers * 2000
        print(f"  workers={n_workers}: pi ~= {pi:.4f} "
              f"({total} samples, {elapsed:.2f}s)")

    workers = [r for r in cluster.calls.all_records() if r.function == "pi_worker"]
    print(f"\n{len(workers)} sandboxed worker invocations; partial results "
          "published under pi/part/* in the global tier:")
    for key in sorted(cluster.global_state.keys())[:5]:
        if key.startswith("pi/part/"):
            print(f"  {key} = {cluster.global_state.get_value(key).decode()}")


if __name__ == "__main__":
    main()
