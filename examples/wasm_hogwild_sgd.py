"""Listing 1 fully inside the sandbox: wasm HOGWILD SGD on shared memory.

Every ``weight_update`` worker is compiled minilang running in the VM.
Co-located workers map the *same* weights replica into their linear
memories (§3.3) and update it concurrently without locks — genuine
HOGWILD through Faaslet shared regions, with the dataset pulled once per
host through the two-tier state architecture.

Run:  python examples/wasm_hogwild_sgd.py
"""

import time

import numpy as np

from repro.apps.wasm_sgd import (
    X_KEY,
    make_linear_dataset,
    run_wasm_sgd,
    setup_wasm_sgd,
)
from repro.runtime import FaasmCluster


def main() -> None:
    n, d = 400, 8
    X, y, true_w = make_linear_dataset(n=n, d=d)
    cluster = FaasmCluster(n_hosts=1, capacity=8)
    setup_wasm_sgd(cluster, X, y)
    print(f"Dataset: {n} examples x {d} features; workers are wasm guests")

    for n_workers in (1, 2, 4):
        cluster.global_state.set_value("wsgd/w", np.zeros(d).tobytes())
        cluster.instances[0].local_tier.drop("wsgd/w")
        start = time.perf_counter()
        w = run_wasm_sgd(cluster, n, d, n_workers=n_workers, epochs=4, lr=0.05)
        elapsed = time.perf_counter() - start
        mse = float(np.mean((X @ w - y) ** 2))
        err = float(np.linalg.norm(w - true_w))
        print(f"  workers={n_workers}: mse={mse:.5f} |w-w*|={err:.3f} "
              f"time={elapsed:.2f}s")

    replica = cluster.instances[0].local_tier.replica(X_KEY)
    meter = cluster.instances[0].state_client.meter
    print(f"\nTraining matrix mapped into {replica.region.mapping_count} "
          f"Faaslets; bytes pulled from the global tier: "
          f"{meter.received_bytes} (dataset is {n * d * 8})")


if __name__ == "__main__":
    main()
