"""Distributed divide-and-conquer matrix multiplication (§6.4, Fig. 8).

Multiplies two matrices with the paper's exact call structure — 64 leaf
multiplication functions and 9 merge functions chained recursively — with
operands and intermediates in the two-tier state.

Run:  python examples/matmul_distributed.py
"""

import time

import numpy as np

from repro.apps import run_matmul, setup_matmul
from repro.runtime import FaasmCluster


def main() -> None:
    rng = np.random.default_rng(7)
    n = 64
    a = rng.normal(size=(n, n))
    b = rng.normal(size=(n, n))

    cluster = FaasmCluster(n_hosts=4, capacity=32)
    setup_matmul(cluster, a, b)

    start = time.perf_counter()
    result = run_matmul(cluster, a, b)
    elapsed = time.perf_counter() - start

    error = float(np.max(np.abs(result - a @ b)))
    records = cluster.calls.all_records()
    mults = sum(1 for r in records if r.function == "mm_mult")
    merges = sum(1 for r in records if r.function == "mm_merge")

    print(f"{n}x{n} multiply in {elapsed:.2f}s across {len(cluster.instances)} hosts")
    print(f"  max abs error vs numpy: {error:.2e}")
    print(f"  multiplication calls: {mults} (1 root + 8 inner + 64 leaves)")
    print(f"  merge calls: {merges}")
    print(f"  state-tier traffic: {cluster.total_network_bytes() / 1e6:.1f} MB")
    by_host = {}
    for record in records:
        by_host[record.host] = by_host.get(record.host, 0) + 1
    print(f"  calls per host: {dict(sorted(by_host.items()))}")


if __name__ == "__main__":
    main()
