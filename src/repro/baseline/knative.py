"""The Knative/container baseline platform model (§6.1).

Interprets the same workloads as the FAASM model, with container-world
semantics:

* isolation units are containers: ~8 MB overhead each (§6.2), ~2.8 s cold
  starts (Tab. 3) serialised through a per-host creation bottleneck, one
  in-flight call per container (Knative's default concurrency);
* there is **no local tier**: every state read pulls from the KVS over the
  network and lands in the *container's private memory* — co-located
  containers each hold their own copy (the data-shipping architecture of
  §1); every write ships to the KVS immediately, batching is impossible;
* chained calls go through the Knative HTTP API: connection + routing
  overhead plus the payload over the network;
* container initialisation cannot be snapshotted: language-runtime or
  model-loading init cost (``SimFunction.init_cost_s``) is paid on every
  cold start.

As with the FAASM model, the experiment curves are emergent: nothing here
encodes "Knative is slower" — only the mechanisms above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cluster import SimCluster, SimHost
from repro.sim.engine import Resource
from repro.sim.platform import SimCall, SimPlatform
from repro.sim.workload import Chain, LoadExternal, SimFunction, StateRead, StateWrite

from .container import (
    CONTAINER_INIT_S,
    CONTAINER_SERIAL_SETUP_S,
    KNATIVE_CONTAINER_OVERHEAD,
    WARM_DISPATCH_S,
)

#: HTTP function-chaining overhead (connection + ingress routing, §6.2:
#: "latency and volume of inter-function communication through the Knative
#: HTTP API").
HTTP_CHAIN_LATENCY_S = 0.008


@dataclass
class SimContainer:
    host: SimHost
    function: str
    memory: int
    #: State keys whose values this container holds private copies of.
    held_keys: set = None
    busy: bool = False

    def __post_init__(self):
        if self.held_keys is None:
            self.held_keys = set()


class KnativeSimPlatform(SimPlatform):
    """Simulated Knative deployment over the same cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        cold_start_s: float = CONTAINER_INIT_S,
        container_overhead: int = KNATIVE_CONTAINER_OVERHEAD,
        chain_latency_s: float = HTTP_CHAIN_LATENCY_S,
        copy_factor: float = 1.35,
    ):
        super().__init__(cluster)
        self.cold_start_s = cold_start_s
        self.container_overhead = container_overhead
        self.chain_latency_s = chain_latency_s
        #: Resident bytes per byte of state read: the container holds both
        #: the fetched serialised buffer and its deserialised working copy.
        self.copy_factor = copy_factor
        self._warm: dict[str, list[SimContainer]] = {}
        #: Container creation serialises on the orchestrator's control path
        #: (image pulls, pod scheduling, namespace setup): a cluster-wide
        #: serial section whose ~3 creations/sec ceiling is what Fig. 10
        #: measures for Docker and what collapses Knative in Fig. 7a.
        self._creator = Resource(cluster.env, 1)
        #: The routing layer (activator/ingress) handles a finite number of
        #: in-flight requests. Requests stuck waiting on container creation
        #: hold their slot, so once cold-start demand exceeds the creation
        #: ceiling, the backlog starves *warm* traffic too — the "queuing
        #: and resource contention" of §6.3 that moves the median.
        self._ingress = Resource(cluster.env, 64)

    # ------------------------------------------------------------------
    # Container lifecycle
    # ------------------------------------------------------------------
    def _acquire_unit(self, call: SimCall):
        yield self._ingress.request()
        pool = self._warm.get(call.function.name, [])
        idle = next((c for c in pool if not c.busy), None)
        if idle is not None:
            self.metrics.warm_starts += 1
            idle.busy = True
            call.unit = idle
            call.host = idle.host
            yield self.env.timeout(WARM_DISPATCH_S)
            self.track_peak(call, idle.memory)
            return
        host = self.least_loaded_host()
        memory = self.container_overhead + call.function.working_set
        try:
            host.allocate(memory)
        except Exception:
            self._ingress.release()  # placement failed: free the slot
            raise
        container = SimContainer(host, call.function.name, memory, busy=True)
        self._warm.setdefault(call.function.name, []).append(container)
        call.unit = container
        call.host = host
        self.metrics.cold_starts += 1
        # Creation serialises on the orchestrator's control path.
        yield self._creator.request()
        try:
            yield self.env.timeout(CONTAINER_SERIAL_SETUP_S)
        finally:
            self._creator.release()
        yield self.env.timeout(self.cold_start_s - CONTAINER_SERIAL_SETUP_S)
        if call.function.init_cost_s:
            # No snapshotting: runtime/model init is paid on every cold start.
            yield self.env.timeout(call.function.init_cost_s)
        self.track_peak(call, memory)

    def _release_unit(self, call: SimCall):
        self._ingress.release()
        if call.unit is not None:
            call.unit.busy = False
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Data-shipping state semantics
    # ------------------------------------------------------------------
    def _do_state_read(self, call: SimCall, op: StateRead):
        container: SimContainer = call.unit
        if op.once_per_unit and op.key in container.held_keys:
            # Lifetime-cached read (e.g. the served model): no re-fetch.
            self.track_peak(call, container.memory)
            return
        yield from self.cluster.from_kvs(call.host, op.nbytes, key=op.key)
        if op.key not in container.held_keys:
            # Private duplication: each container holds its own copy (the
            # fetched buffer plus the deserialised working form).
            resident = int(op.nbytes * self.copy_factor)
            call.host.allocate(resident)
            container.memory += resident
            container.held_keys.add(op.key)
        self.track_peak(call, container.memory)

    def _do_state_write(self, call: SimCall, op: StateWrite):
        container: SimContainer = call.unit
        if op.key not in container.held_keys:
            call.host.allocate(op.nbytes)
            container.memory += op.nbytes
            container.held_keys.add(op.key)
        self.track_peak(call, container.memory)
        # No local tier: every write (batched or not) ships to the KVS.
        yield from self.cluster.to_kvs(call.host, op.nbytes, key=op.key)

    def flush_dirty(self):
        """No-op: a container platform has nothing batched to flush."""
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    def _do_load_external(self, call: SimCall, op: LoadExternal):
        yield from self.cluster.network.transfer(None, call.host, op.nbytes)

    def _do_chain(self, call: SimCall, op: Chain):
        # HTTP API: routing overhead + payload over the network.
        yield self.env.timeout(self.chain_latency_s)
        return self.invoke(op.function, op.arg)

    # ------------------------------------------------------------------
    def reclaim_idle(self) -> None:
        for pool in self._warm.values():
            for container in pool:
                if not container.busy:
                    container.host.free(container.memory)
        self._warm = {
            name: [c for c in pool if c.busy] for name, pool in self._warm.items()
        }
