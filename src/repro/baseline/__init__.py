"""``repro.baseline`` — container/Knative baseline models.

The comparison side of every experiment: a calibrated container cost model
(:mod:`repro.baseline.container`) and a Knative-like platform interpreter
(:mod:`repro.baseline.knative`) running the same workloads as the FAASM
model with data-shipping semantics.
"""

from .container import (
    CONTAINER_INIT_CPU_CYCLES,
    CONTAINER_INIT_S,
    CONTAINER_PSS,
    CONTAINER_RSS,
    CONTAINER_SERIAL_SETUP_S,
    ChurnModel,
    ContainerModel,
    KNATIVE_CONTAINER_OVERHEAD,
    PYTHON_CONTAINER_INIT_S,
    docker_churn_model,
    faaslet_churn_model,
    proto_faaslet_churn_model,
)
from .knative import HTTP_CHAIN_LATENCY_S, KnativeSimPlatform, SimContainer

__all__ = [
    "CONTAINER_INIT_CPU_CYCLES",
    "CONTAINER_INIT_S",
    "CONTAINER_PSS",
    "CONTAINER_RSS",
    "CONTAINER_SERIAL_SETUP_S",
    "ChurnModel",
    "ContainerModel",
    "HTTP_CHAIN_LATENCY_S",
    "KNATIVE_CONTAINER_OVERHEAD",
    "KnativeSimPlatform",
    "PYTHON_CONTAINER_INIT_S",
    "SimContainer",
    "docker_churn_model",
    "faaslet_churn_model",
    "proto_faaslet_churn_model",
]
