"""The container isolation model (Docker-like) used by the baselines.

Parameters are calibrated from the paper's own measurements (§6.5, Tab. 3)
of Docker containers running a no-op function on the authors' testbed:

=====================  ===========================
initialisation          ~2.8 s (no-op image)
CPU cycles to start     ~251 M
RSS per container       ~5.0 MB (PSS ~1.3 MB)
capacity per host       ~8 K containers (16 GB RAM)
=====================  ===========================

Beyond the constants, the model captures the *churn* behaviour of Fig. 10:
container creation contends on a host-wide serial section (the Docker
daemon / kernel setup work — layered filesystem, namespaces, cgroups), so
sustained creation throughput saturates around ``1 / serial_setup`` per
second no matter the request rate, and queueing pushes per-start latency up
once the arrival rate exceeds it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Tab. 3 calibration constants.
CONTAINER_INIT_S = 2.8
CONTAINER_INIT_CPU_CYCLES = 251_000_000
CONTAINER_RSS = 5 * 1024 * 1024
CONTAINER_PSS = 1.3 * 1024 * 1024
#: §6.2 measures the per-function-container overhead at 8 MB in deployment.
KNATIVE_CONTAINER_OVERHEAD = 8 * 1024 * 1024
#: Python-runtime container (python:3.7-alpine) boot time (§6.5).
PYTHON_CONTAINER_INIT_S = 3.2
#: Serial fraction of container creation (daemon/kernel work) — Fig. 10
#: shows throughput saturating around 3 creations/sec.
CONTAINER_SERIAL_SETUP_S = 1 / 3.0
#: Warm-container request routing latency.
WARM_DISPATCH_S = 0.002


@dataclass
class ContainerModel:
    """Cost model for one container class (image + function)."""

    init_s: float = CONTAINER_INIT_S
    rss: int = KNATIVE_CONTAINER_OVERHEAD
    serial_setup_s: float = CONTAINER_SERIAL_SETUP_S

    def cold_start_time(self) -> float:
        return self.init_s

    def memory_overhead(self) -> int:
        return self.rss


@dataclass
class ChurnModel:
    """Closed-form start-rate → latency model for isolation mechanisms.

    ``serial_s`` is the serialised per-creation work on a host (the
    bottleneck resource); ``base_s`` is the end-to-end creation latency at
    low rates. As the requested rate approaches ``1/serial_s``, queueing
    delay grows without bound (M/D/1-style); we report the latency at a
    finite observation window, reproducing the knees of Fig. 10.
    """

    base_s: float
    serial_s: float
    name: str = ""

    @property
    def saturation_rate(self) -> float:
        return 1.0 / self.serial_s

    def latency_at_rate(self, rate: float, window_s: float = 10.0) -> float:
        """Mean creation latency when starts arrive at ``rate``/sec."""
        if rate <= 0:
            return self.base_s
        utilisation = rate * self.serial_s
        if utilisation < 1.0:
            # M/D/1 mean wait: rho * s / (2 (1 - rho)).
            wait = utilisation * self.serial_s / (2 * (1 - utilisation))
            return self.base_s + wait
        # Past saturation the queue grows for the whole window: latency is
        # dominated by the backlog accumulated over the observation window.
        backlog = (rate - self.saturation_rate) * window_s
        return self.base_s + backlog * self.serial_s + window_s / 2 * 0

    def achieved_rate(self, requested_rate: float) -> float:
        return min(requested_rate, self.saturation_rate)


def docker_churn_model() -> ChurnModel:
    """Docker: ~2 s base start, ~3 starts/sec ceiling (Fig. 10)."""
    return ChurnModel(base_s=2.0, serial_s=CONTAINER_SERIAL_SETUP_S, name="Docker")


def faaslet_churn_model() -> ChurnModel:
    """Faaslets: ~5 ms base start, ~600 starts/sec ceiling (Fig. 10)."""
    return ChurnModel(base_s=0.005, serial_s=1 / 600.0, name="Faaslet")


def proto_faaslet_churn_model() -> ChurnModel:
    """Proto-Faaslets: ~0.5 ms restores, ~4000/sec ceiling (Fig. 10)."""
    return ChurnModel(base_s=0.0005, serial_s=1 / 4000.0, name="Proto-Faaslet")
