"""Command-line interface: ``python -m repro <command>``.

Commands::

    run <file.ml|file.wat> [--entry NAME] [--input TEXT] [--arg N ...]
        [--tier threaded|interp]
        Compile (minilang) or assemble (WAT), validate, and execute the
        module inside a Faaslet; prints output/result and exit code.

    profile <file.ml|file.wat|file.obj> [--entry NAME] [--arg N ...]
        [--top N] [--export FILE]
        Execute on the reference interpreter with per-opcode dispatch
        counters and print the hottest opcodes and opcode pairs — the
        data that picks the threaded tier's next fusion candidates.
        ``--export`` writes the unified telemetry artifact (spans +
        metrics + dispatch counts) as JSON.

    trace <file.ml|file.wat|file.obj> [--entry NAME] [--arg N ...]
        [--format tree|chrome|jsonl] [--out FILE] [--profile]
        Run the guest with span tracing enabled and export the trace:
        an indented tree + latency table (default), Chrome trace-event
        JSON (load in chrome://tracing / Perfetto), or JSON-lines.

    metrics <file.ml|file.wat|file.obj> [--entry NAME] [--arg N ...]
        [--json]
        Run the guest and dump the metrics registry (span latency
        histograms, code-cache counters) as a table or JSON.

    disasm <file.ml|file.wat|file.obj>
        Print the module's text-format disassembly.

    objdump <file.obj>
        Summarise an object file (sections, functions, metadata).

    kernels [--n SIZE]
        Run the Polybench suite in the sandbox and vs native, printing the
        Fig. 9a-style ratio table.

    snapshots [file.ml] [--init NAME] [--hosts N] [--calls N] [--json]
        Drive a function through a cluster and print the content-addressed
        snapshot plane's view: per-host PageStore residency and dedup
        stats, delta-pull transfer counters, the repository's page pool,
        and the residency advertisements the scheduler places against.
        Without a file, a built-in demo function is used.

    chaos [--seed N] [--calls N] [--hosts N] [--drop-rate R]
        [--crashes N] [--outages N] [--timeout S] [--json] [--log FILE]
        Run a seeded chaos soak: dispatch calls through a cluster under a
        deterministic fault plan (message drops/duplicates/delays/
        reordering, host crashes, state-stripe outages) and report every
        call's fate. Exit code 0 iff no call was left without a terminal
        state. ``--log`` writes the canonical fault log (replays
        byte-identically for the same seed).

    profiles [function] [--hosts N] [--calls N] [--json] [--flame-dir DIR]
        Drive the built-in mixed workload (a chained pipeline over
        byte-ranges of a shared state key plus a snapshotted wasm kernel)
        through a cluster with trace mining on, persist the mined
        per-function access profiles content-addressed in the object
        store, and print them back *from the store*: state keys with hot
        read/write byte-ranges, snapshot pages restored, fuel and latency
        distributions, phase breakdown, chain fan-out. ``--flame-dir``
        also writes collapsed-stack and speedscope flamegraph artifacts
        from the continuous guest profiler.

    top [--hosts N] [--interval S] [--frames N] [--plain]
        Live cluster dashboard: churns the demo workload in the
        background and refreshes a per-function table (calls, streaming
        p50/p95/p99, SLO burn rate, placement spread) every interval.
        ``--plain`` appends frames instead of redrawing (for logs/CI).

    report [--hosts N] [--calls N] [--html] [--out FILE]
        Drive the demo workload and emit a cluster report (markdown, or
        HTML with ``--html``): aggregate counters, SLO compliance table,
        and every persisted access profile.
"""

from __future__ import annotations

import argparse
import sys
import time


def _load_module(path: str):
    from repro.minilang import build as build_minilang
    from repro.wasm import parse_module, validate_module
    from repro.wasm.objectfile import read_object

    if path.endswith(".obj"):
        with open(path, "rb") as f:
            module, compiled, meta = read_object(f.read())
        return module, compiled, meta
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    if path.endswith(".wat"):
        module = parse_module(text)
        validate_module(module)
    else:
        module = build_minilang(text)
    return module, None, {}


def _make_definition(args):
    """Load ``args.file`` and wrap it as a deployable FunctionDefinition."""
    from repro.faaslet import FunctionDefinition
    from repro.wasm.codegen import compile_module

    module, compiled, meta = _load_module(args.file)
    return FunctionDefinition(
        name=args.file,
        module=module,
        compiled=compiled if compiled is not None else compile_module(module),
        entry=args.entry or meta.get("entry", "main"),
    )


def _invoke(faaslet, args) -> int:
    """Run the guest the way the flags ask for; returns the exit code."""
    if args.arg:
        result = faaslet.invoke_export(faaslet.definition.entry, *args.arg)
        print(f"result: {result}", file=sys.stderr)
        return 0
    code, _ = faaslet.call((args.input or "").encode())
    print(f"exit code: {code}", file=sys.stderr)
    return code


def cmd_run(args) -> int:
    """``repro run``: execute a guest in a Faaslet."""
    from repro.faaslet import Faaslet
    from repro.host import StandaloneEnvironment

    definition = _make_definition(args)
    faaslet = Faaslet(definition, StandaloneEnvironment(), tier=args.tier)
    start = time.perf_counter()
    if args.arg:
        result = faaslet.invoke_export(definition.entry, *args.arg)
        elapsed = time.perf_counter() - start
        print(f"result: {result}")
        code = 0
    else:
        code, output = faaslet.call((args.input or "").encode())
        elapsed = time.perf_counter() - start
        if output:
            sys.stdout.buffer.write(output)
            if not output.endswith(b"\n"):
                print()
        print(f"exit code: {code}")
    print(
        f"[{elapsed * 1e3:.2f} ms, "
        f"{faaslet.instance.instructions_executed:,} guest instructions]",
        file=sys.stderr,
    )
    return code


def cmd_profile(args) -> int:
    """``repro profile``: per-opcode dispatch counts for a guest run."""
    import json

    from repro.faaslet import Faaslet
    from repro.host import StandaloneEnvironment
    from repro.telemetry import Telemetry, export

    definition = _make_definition(args)
    # Tracing rides along so --export can emit the unified artifact
    # (spans + dispatch counts); its overhead is noise next to the
    # profiled interpreter's.
    telemetry = Telemetry(enabled=True)
    with telemetry.tracer.trace("cli.run", host="local", file=args.file):
        faaslet = Faaslet(definition, StandaloneEnvironment(), profile=True)
        _invoke(faaslet, args)

    inst = faaslet.instance
    total = inst.instructions_executed or 1
    top = args.top or 20
    print(f"{total:,} instructions dispatched; top {top} opcodes:")
    print(f"{'opcode':<24}{'count':>14}{'share':>9}")
    for op, count in inst.dispatch_report(top):
        print(f"{op:<24}{count:>14,}{count / total:>8.1%}")
    families = inst.dispatch_family_report()
    print("\nby opcode family:")
    print(f"{'family':<24}{'count':>14}{'share':>9}")
    for family, count in families:
        print(f"{family:<24}{count:>14,}{count / total:>8.1%}")
    family_counts = dict(families)
    # Expose the vector/atomic workload as metrics series alongside the
    # guest-thread counters (thread.spawned / atomic.waits).
    telemetry.metrics.counter("simd.ops").inc(family_counts.get("simd", 0))
    telemetry.metrics.counter("atomic.ops").inc(family_counts.get("atomic", 0))
    pairs = inst.pair_counts.most_common(top)
    if pairs:
        print(f"\ntop {top} opcode pairs (fusion candidates):")
        print(f"{'pair':<40}{'count':>14}{'share':>9}")
        for (a, b), count in pairs:
            print(f"{a + ' ; ' + b:<40}{count:>14,}{count / total:>8.1%}")
    if args.export:
        artifact = export.build_artifact(
            telemetry.spans(),
            metrics=telemetry.metrics.snapshot(),
            dispatch=export.dispatch_section(inst),
        )
        with open(args.export, "w") as f:
            json.dump(artifact, f)
        print(f"wrote telemetry artifact to {args.export}", file=sys.stderr)
    return 0


def cmd_trace(args) -> int:
    """``repro trace``: run a guest with tracing on and export the spans."""
    import json

    from repro.faaslet import Faaslet
    from repro.host import StandaloneEnvironment
    from repro.telemetry import Telemetry, export

    definition = _make_definition(args)
    telemetry = Telemetry(enabled=True)
    profile = bool(args.profile)
    with telemetry.tracer.trace("cli.run", host="local", file=args.file):
        faaslet = Faaslet(
            definition,
            StandaloneEnvironment(),
            tier=None if profile else args.tier,
            profile=profile,
        )
        code = _invoke(faaslet, args)
    spans = telemetry.spans()
    metrics = telemetry.metrics.snapshot()
    dispatch = export.dispatch_section(faaslet.instance) if profile else None
    if args.format == "chrome":
        payload = json.dumps(
            export.to_chrome_trace(spans, metrics=metrics, dispatch=dispatch)
        ) + "\n"
    elif args.format == "jsonl":
        payload = export.to_jsonl(spans, metrics=metrics, dispatch=dispatch)
    else:
        payload = (
            export.tree_summary(spans) + "\n\n" + export.text_summary(spans) + "\n"
        )
    if args.out:
        with open(args.out, "w") as f:
            f.write(payload)
        print(
            f"wrote {len(spans)} spans to {args.out} ({args.format})",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(payload)
    return code


def cmd_metrics(args) -> int:
    """``repro metrics``: run a guest and dump the metrics registry."""
    import json

    from repro.faaslet import Faaslet
    from repro.host import StandaloneEnvironment
    from repro.telemetry import Telemetry
    from repro.wasm.codecache import GLOBAL_CODE_CACHE

    definition = _make_definition(args)
    telemetry = Telemetry(enabled=True)
    with telemetry.tracer.trace("cli.run", host="local", file=args.file):
        faaslet = Faaslet(
            definition, StandaloneEnvironment(),
            tier=None if args.profile else args.tier,
            profile=bool(args.profile),
        )
        code = _invoke(faaslet, args)
    if args.profile:
        # Fold the opcode-family rollups into the registry so the dump
        # shows the ISA-level series (simd.ops / atomic.ops) alongside
        # the guest-thread counters.
        families = dict(faaslet.instance.dispatch_family_report())
        telemetry.metrics.counter("simd.ops").inc(families.get("simd", 0))
        telemetry.metrics.counter("atomic.ops").inc(families.get("atomic", 0))
    snapshot = telemetry.metrics.snapshot()
    # The code cache keeps its counters in its own (process-global)
    # registry; fold them in so one dump covers the run.
    for kind, series in GLOBAL_CODE_CACHE.metrics.snapshot().items():
        snapshot[kind].update(series)
    if args.json:
        print(json.dumps(snapshot, indent=2))
        return code
    for kind in ("counters", "gauges"):
        for series, value in snapshot[kind].items():
            print(f"{series:<44}{value:>14}")
    for series, summary in snapshot["histograms"].items():
        print(
            f"{series:<44}{summary['count']:>6} obs"
            f"  mean {summary['mean'] * 1e3:9.3f} ms"
            f"  p50 {summary['p50'] * 1e3:9.3f} ms"
            f"  p99 {summary['p99'] * 1e3:9.3f} ms"
        )
    return code


def cmd_disasm(args) -> int:
    """``repro disasm``: print the module's text form."""
    from repro.wasm.printer import print_module

    module, _, _ = _load_module(args.file)
    print(print_module(module))
    return 0


def cmd_objdump(args) -> int:
    """``repro objdump``: summarise an object file."""
    module, compiled, meta = _load_module(args.file)
    if compiled is None:
        print("not an object file (use disasm for sources)", file=sys.stderr)
        return 1
    print(f"object file: {args.file}")
    print(f"  meta: {meta}")
    print(f"  imports: {len(module.imports)}")
    for imp in module.imports:
        print(f"    {imp.module}.{imp.name} {imp.type}")
    mem = module.memory.limits if module.memory else None
    print(f"  memory: {mem.minimum if mem else 0} pages"
          + (f" (max {mem.maximum})" if mem and mem.maximum else ""))
    print(f"  globals: {len(module.globals_)}, data segments: {len(module.data)}")
    print(f"  functions ({len(compiled)}):")
    for i, fn in enumerate(compiled):
        exported = next(
            (e.name for e in module.exports
             if e.kind == "func" and e.index == len(module.imports) + i),
            None,
        )
        marker = f" [export {exported!r}]" if exported else ""
        print(f"    {fn.name or i}: {fn.type} "
              f"{len(fn.code)} instrs, {fn.n_locals} locals{marker}")
    return 0


def cmd_kernels(args) -> int:
    """``repro kernels``: Polybench suite, sandbox vs native."""
    from repro.apps.kernels import KERNELS, run_kernel_in_faaslet, run_kernel_native

    print(f"{'kernel':<16}{'sandboxed':>12}{'native':>12}{'ratio':>8}")
    for name in sorted(KERNELS):
        kernel = KERNELS[name]
        n = args.n or kernel.default_n
        t0 = time.perf_counter()
        sandboxed = run_kernel_in_faaslet(kernel, n)
        t_sand = time.perf_counter() - t0
        t0 = time.perf_counter()
        native = run_kernel_native(kernel, n)
        t_nat = time.perf_counter() - t0
        status = "" if abs(sandboxed - native) < 1e-9 * max(1, abs(native)) else "  MISMATCH"
        print(f"{name:<16}{t_sand * 1e3:>10.1f}ms{t_nat * 1e3:>10.2f}ms"
              f"{t_sand / t_nat:>8.1f}{status}")
    return 0


#: Demo function for ``repro snapshots`` when no source file is given:
#: the init dirties a spread of pages so the snapshot has a real payload.
_SNAPSHOT_DEMO_SRC = """
global int ready = 0;
export void init() {
    int[] data = new int[65536];
    for (int i = 0; i < 65536; i = i + 2048) { data[i] = i + 1; }
    ready = 1;
}
export int main() { return ready; }
"""


def cmd_snapshots(args) -> int:
    """``repro snapshots``: per-host PageStore residency/dedup stats."""
    import json

    from repro.runtime import FaasmCluster

    if args.file:
        with open(args.file, "r", encoding="utf-8") as f:
            source = f.read()
        name = args.file
        init = args.init
    else:
        source, name, init = _SNAPSHOT_DEMO_SRC, "demo", "init"

    cluster = FaasmCluster(n_hosts=args.hosts)
    try:
        cluster.upload(name, source, init=init)
        for _ in range(args.calls):
            code, _ = cluster.invoke(name)
            if code != 0 and args.file:
                print(f"warning: {name} exited {code}", file=sys.stderr)
        stats = cluster.snapshot_stats()
        residency = {
            fn: cluster.warm_sets.resident_hosts(fn)
            for fn in cluster.warm_sets.resident_functions()
        }
        if args.json:
            print(json.dumps({**stats, "residency": residency}, indent=2))
            return 0

        repo = stats["repository"]
        print(
            f"repository: {repo['functions']} function(s), "
            f"{repo['resident_pages']} pages "
            f"({repo['resident_bytes'] / 2**20:.2f} MiB), "
            f"{repo['dedup_hits']} dedup hits"
        )
        header = (
            f"{'host':<10}{'pages':>7}{'MiB':>8}{'pulled':>8}{'MiB':>8}"
            f"{'trips':>7}{'dedup':>7}{'cached':>8}"
        )
        print(header)
        print("-" * len(header))
        for host, s in sorted(stats["hosts"].items()):
            print(
                f"{host:<10}{s['resident_pages']:>7}"
                f"{s['resident_bytes'] / 2**20:>8.2f}"
                f"{s['pages_shipped']:>8}"
                f"{s['bytes_shipped'] / 2**20:>8.2f}"
                f"{s['round_trips']:>7}{s['pull_dedup_hits']:>7}"
                f"{s['snapshots_cached']:>8}"
            )
        if residency:
            print("residency advertisements (scheduler locality signal):")
            for fn, hosts in sorted(residency.items()):
                ads = ", ".join(
                    f"{h}={c:g}" for h, c in sorted(hosts.items())
                )
                print(f"  {fn}: {ads}")
        return 0
    finally:
        cluster.shutdown()


def cmd_chaos(args) -> int:
    """``repro chaos``: a seeded fault-injection soak against the cluster."""
    import json
    import logging

    from repro.chaos import run_soak

    # The recovery path logs every re-queue at WARNING; that is soak noise
    # unless the user asks for it.
    logging.getLogger("repro").setLevel(logging.ERROR)
    report = run_soak(
        seed=args.seed,
        calls=args.calls,
        hosts=args.hosts,
        drop_rate=args.drop_rate,
        n_crashes=args.crashes,
        n_outages=args.outages,
        timeout=args.timeout,
    )
    if args.log:
        with open(args.log, "wb") as f:
            f.write(b"".join(line.encode() + b"\n" for line in report.log_lines))
        print(f"wrote {len(report.log_lines)} fault-log lines to {args.log}",
              file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        d = report.to_dict()
        for key in ("seed", "calls", "completed", "guest_failed",
                    "call_failed", "retries", "crashes_fired", "duration_s"):
            print(f"{key:<16}{d[key]}")
        print(f"{'digest':<16}{report.digest}")
        if report.stranded:
            print(f"STRANDED calls (no terminal state): {report.stranded}")
        else:
            print("every call reached exactly one terminal state")
    return 0 if report.ok else 1


# ---------------------------------------------------------------------------
# Observability plane: profiles / top / report
# ---------------------------------------------------------------------------

#: The demo workload the observability commands drive when the user does
#: not bring their own cluster: a chained pipeline whose stages touch
#: distinct byte-ranges of one shared state key (so mined profiles show
#: real hot ranges and fan-out), plus a snapshotted wasm kernel with
#: nested calls (so snapshot-page counters, fuel distributions, and the
#: continuous profiler's stacks all have data).
_GRID_KEY = "grid"
_GRID_SIZE = 64 * 1024
_GRID_CHUNK = 4 * 1024

_PROFILES_KERNEL_SRC = """
global int ready = 0;
export void init() {
    int[] warm = new int[65536];
    for (int i = 0; i < 65536; i = i + 2048) { warm[i] = i + 1; }
    ready = 1;
}
int mix(int x) { return (x * 31 + 7) % 1001; }
int work(int i) { return mix(i) + mix(i + 1); }
export int main() {
    int acc = 0;
    for (int i = 0; i < 200; i = i + 1) { acc = acc + work(i); }
    return acc - acc;
}
"""


def _pipeline_fn(ctx):
    import pickle

    stages = pickle.loads(ctx.input()) if ctx.input() else 4
    ctx.state.get_state(_GRID_KEY, _GRID_SIZE)
    ctx.state.push_state(_GRID_KEY)
    cids = [ctx.chain_object("stage", {"slot": i}) for i in range(stages)]
    ctx.await_all(cids)
    total = sum(ctx.call_output_object(cid) for cid in cids)
    ctx.write_output_object(total)


def _stage_fn(ctx):
    slot = ctx.input_object()["slot"]
    offset = (slot * _GRID_CHUNK) % _GRID_SIZE
    view = ctx.state.get_state_offset(_GRID_KEY, offset, _GRID_CHUNK)
    view[0] = (view[0] + 1) % 256
    ctx.state.push_state_offset(_GRID_KEY, offset, _GRID_CHUNK)
    ctx.write_output_object(int(view[0]))


def _observability_cluster(hosts: int, delivery=None):
    """A cluster with the full observability plane on and the demo
    workload registered (``delivery`` forwards a DeliveryPolicy so the
    prefetch demo can replay the workload with speculation on)."""
    from repro.runtime import FaasmCluster
    from repro.telemetry import Telemetry

    telemetry = Telemetry(
        enabled=True, mine_profiles=True, guest_profiler=True,
        slos=True, profiler_interval=16,
    )
    cluster = FaasmCluster(n_hosts=hosts, telemetry=telemetry, delivery=delivery)
    cluster.register_python("pipeline", _pipeline_fn)
    cluster.register_python("stage", _stage_fn)
    cluster.upload("kernel", _PROFILES_KERNEL_SRC, init="init")
    if hosts > 1:
        # Advertise stage as warm on the last host so chained stages are
        # shared across the bus: the mined profiles then show genuinely
        # remote state pulls (byte-range gaps, round-trips), not just
        # same-host replica hits.
        cluster.warm_sets.add("stage", f"host-{hosts - 1}")
    return cluster


def _drive_demo(cluster, rounds: int, stages: int = 4) -> None:
    import pickle

    for _ in range(rounds):
        cluster.invoke("pipeline", pickle.dumps(stages))
        cluster.invoke("kernel")


def _render_profile(fn: str, profile, digest: str | None = None) -> str:
    lines = [f"== {fn} ==" + (f"  [{digest}]" if digest else "")]
    lines.append(
        f"calls {profile.calls}  cold {profile.cold_starts}"
        f"  errors {profile.errors}  retries {profile.retries}"
        + (
            "  faults " + ", ".join(
                f"{cause} x{n}"
                for cause, n in sorted(profile.fault_causes.items())
            )
            if profile.fault_causes else ""
        )
    )
    if profile.latency.count:
        lat = profile.latency
        lines.append(
            f"latency ms  p50 {lat.percentile(50) * 1e3:.2f}"
            f"  p95 {lat.percentile(95) * 1e3:.2f}"
            f"  p99 {lat.percentile(99) * 1e3:.2f}"
        )
    if profile.fuel.count:
        lines.append(
            f"fuel        p50 {profile.fuel.percentile(50):,.0f}"
            f"  p99 {profile.fuel.percentile(99):,.0f} instructions"
        )
    if profile.phases:
        lines.append("phases:")
        for name, (count, total) in sorted(
            profile.phases.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(f"  {name:<16}{count:>6}x{total * 1e3:>10.2f} ms")
    if profile.state:
        lines.append("state keys:")
        for key, kp in sorted(profile.state.items()):
            lines.append(
                f"  {key}: {kp.pulls} pulls / {kp.pushes} pushes, "
                f"{kp.bytes_pulled:,} B in / {kp.bytes_pushed:,} B out, "
                f"{kp.round_trips} round-trips"
            )
            for mode, counter in (("read", kp.reads), ("write", kp.writes)):
                hot = counter.hot(4)
                if hot:
                    ranges = "  ".join(f"[{s},{e})x{n}" for s, e, n in hot)
                    lines.append(f"    hot {mode} ranges: {ranges}")
    snap = profile.snapshot
    if any(snap.values()):
        lines.append(
            f"snapshot: {snap['restores']} restores"
            f" ({snap['cached']} cache hits), {snap['payload_pages']} payload"
            f" / {snap['missing_pages']} missing pages,"
            f" {snap['bytes_shipped']:,} bytes shipped"
        )
    if profile.chains:
        lines.append("chains: " + "  ".join(
            f"{callee} x{n}" for callee, n in sorted(profile.chains.items())
        ))
    if profile.hosts:
        lines.append("hosts:  " + "  ".join(
            f"{host}:{n}" for host, n in sorted(profile.hosts.items())
        ))
    return "\n".join(lines)


def cmd_profiles(args) -> int:
    """``repro profiles``: mine, persist, and print access profiles."""
    import json
    import os
    from urllib.parse import quote

    cluster = _observability_cluster(args.hosts)
    try:
        _drive_demo(cluster, args.calls)
        digests = cluster.persist_profiles()
        functions = [args.function] if args.function else sorted(digests)
        # Print what the object store holds, not what the miner holds:
        # the round-trip through the content-addressed artifact is the
        # path the prefetcher (and any other consumer) will take.
        loaded = {}
        for fn in functions:
            profile = cluster.load_profile(fn)
            if profile is None:
                print(
                    f"no profile for {fn!r}; mined: {sorted(digests)}",
                    file=sys.stderr,
                )
                return 1
            loaded[fn] = profile
        if args.json:
            print(json.dumps(
                {fn: p.to_dict() for fn, p in loaded.items()}, indent=2
            ))
        else:
            miner = cluster.profiles
            print(
                f"{len(digests)} profile(s) persisted content-addressed"
                f" ({miner.spans_mined} spans folded,"
                f" {miner.buffered_spans()} still buffered)"
            )
            for fn, profile in loaded.items():
                print()
                print(_render_profile(fn, profile, digests.get(fn)))
        if args.flame_dir:
            profiler = cluster.telemetry.profiler
            os.makedirs(args.flame_dir, exist_ok=True)
            for fn in profiler.functions():
                base = os.path.join(args.flame_dir, quote(fn, safe=""))
                with open(base + ".collapsed", "w") as f:
                    f.write(profiler.collapsed(fn))
                with open(base + ".speedscope.json", "w") as f:
                    json.dump(profiler.speedscope(fn), f)
            print(
                f"wrote flamegraph artifacts for "
                f"{len(profiler.functions())} function(s) to {args.flame_dir}",
                file=sys.stderr,
            )
        return 0
    finally:
        cluster.shutdown()


def cmd_prefetch(args) -> int:
    """``repro prefetch``: the profiles→prefetch feedback loop end to end.

    Round one drives the demo workload with mining on and persists the
    access profiles. Round two replays the same workload in a *fresh*
    cluster with proactive delivery enabled, fed by those profiles, and
    prints what speculation bought: per-function prefetched vs hit vs
    wasted bytes, push-invalidate savings, and pre-placed pages.
    """
    import json

    from repro.state.prefetch import DeliveryPolicy

    observe = _observability_cluster(args.hosts)
    try:
        _drive_demo(observe, args.calls)
        observe.persist_profiles()
        profiles = [
            observe.load_profile(fn)
            for fn in ("pipeline", "stage", "kernel")
        ]
    finally:
        observe.shutdown()

    # The demo's stage calls spread reads across four grid chunks, so each
    # chunk is touched by ~a quarter of calls: set the confidence floor
    # below that, or the planner would (correctly) call nothing hot.
    # Synchronous so the reported byte counts are run-to-run stable (an
    # overlapped prefetch can lose the race to the guest's own pull).
    policy = DeliveryPolicy.aggressive(confidence=0.2, synchronous=True)
    serve = _observability_cluster(args.hosts, delivery=policy)
    try:
        for profile in profiles:
            if profile is not None:
                serve.profile_store.save(profile)
        _drive_demo(serve, args.calls)
        serve.quiesce_delivery()
        stats = serve.delivery_stats()
        if args.json:
            print(json.dumps(stats, indent=2))
            return 0
        print(f"delivery policy: {stats['policy']}")
        header = (
            f"{'function':<12}{'prefetched':>12}{'hit':>12}"
            f"{'waste':>12}{'hit%':>8}{'aborted':>9}"
        )
        print(header)
        print("-" * len(header))
        for fn, row in sorted(stats["functions"].items()):
            fetched = row["prefetched_bytes"]
            ratio = (100.0 * row["hit_bytes"] / fetched) if fetched else 0.0
            print(
                f"{fn:<12}{fetched:>12,}{row['hit_bytes']:>12,}"
                f"{row['waste_bytes']:>12,}{ratio:>7.1f}%{row['aborted']:>9}"
            )
        inv = stats["invalidate"]
        print(
            f"push-invalidate: {inv['skips']} pulls skipped,"
            f" {inv['delta_pulls']} delta pulls,"
            f" {inv['bytes_saved']:,} bytes saved"
        )
        print(f"pre-placed pages: {stats['preplaced_pages']}")
        return 0
    finally:
        serve.shutdown()


def _render_ingest_row(cluster) -> str:
    """The dashboard's ingestion row: arrival rate, total queue depth
    (admission + bus + executor pools), and p99 sojourn. Clusters without
    an ingestion plane still show their bus queue depth."""
    stats = cluster.ingestion_stats()
    if stats:
        depth = (
            stats["admission_backlog"]
            + stats["bus_pending"]
            + stats["pool_backlog"]
        )
        return (
            f"ingest {stats['arrival_rate']:7.0f}/s"
            f"  queued {depth}"
            f"  p99 sojourn {stats['sojourn_p99_s'] * 1e3:.1f} ms"
        )
    depths = cluster.bus.update_queue_gauges()
    return f"ingest       -/s  queued {sum(depths.values())}  p99 sojourn -"


def _render_top_frame(cluster, frame: int, frames: int, started: float) -> str:
    telemetry = cluster.telemetry
    agg = cluster.metrics_snapshot()["aggregates"]
    uptime = time.perf_counter() - started
    lines = [
        f"repro top — {len(cluster.instances)} hosts, up {uptime:5.1f}s"
        f"   frame {frame}/{frames}",
        f"calls {agg['instance.calls_executed']:.0f}"
        f"  cold {agg['instance.cold_starts']:.0f}"
        f"  warm {agg['instance.warm_hits']:.0f}"
        f"  retries {agg['call.retries']:.0f}"
        f"  failed {agg['call.failed']:.0f}"
        f"  state {(agg['state.bytes_sent'] + agg['state.bytes_received']) / 2**20:.2f} MiB"
        f"  simd {agg['simd.ops']:.0f}"
        f"  threads {agg['thread.spawned']:.0f}",
        _render_ingest_row(cluster),
        "",
        f"{'function':<12}{'calls':>7}{'p50ms':>9}{'p95ms':>9}{'p99ms':>9}"
        f"{'burn':>7}{'slo':>6}  hosts",
    ]
    report = telemetry.slos.report() if telemetry.slos is not None else {}
    miner = telemetry.profiles
    for fn in sorted(report):
        slo = report[fn]
        hist = telemetry.metrics.streaming_histogram(
            "function.latency", function=fn
        )
        profile = miner.profile(fn) if miner is not None else None
        hosts = (
            " ".join(f"{h}:{n}" for h, n in sorted(profile.hosts.items()))
            if profile is not None else ""
        )
        lines.append(
            f"{fn:<12}{slo['good'] + slo['bad']:>7}"
            f"{hist.percentile(50) * 1e3:>9.2f}"
            f"{hist.percentile(95) * 1e3:>9.2f}"
            f"{hist.percentile(99) * 1e3:>9.2f}"
            f"{slo['burn_rate']:>7.2f}"
            f"{'FIRE' if slo['alerting'] else 'ok':>6}  {hosts}"
        )
    return "\n".join(lines)


def cmd_top(args) -> int:
    """``repro top``: live per-function dashboard over a churning cluster."""
    import threading

    cluster = _observability_cluster(args.hosts)
    stop = threading.Event()

    def churn():
        while not stop.is_set():
            _drive_demo(cluster, 1)

    worker = threading.Thread(target=churn, daemon=True, name="top-churn")
    try:
        worker.start()
        started = time.perf_counter()
        for frame in range(1, args.frames + 1):
            time.sleep(args.interval)
            body = _render_top_frame(cluster, frame, args.frames, started)
            if not args.plain:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(body, flush=True)
        return 0
    finally:
        stop.set()
        worker.join(timeout=10.0)
        cluster.shutdown()


def _parse_tenant_weights(spec: str, count: int) -> dict[str, float]:
    """``--tenants`` accepts either a count ("3") handled by the caller or
    explicit "name:weight,name:weight" pairs; this parses the pairs."""
    weights: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            name, _, raw = part.partition(":")
            weights[name.strip()] = float(raw)
        else:
            weights[part] = 1.0
    return weights


def _ingest_echo(ctx):
    ctx.write_output(b"ok:" + ctx.input())
    return 0


def cmd_ingest(args) -> int:
    """``repro ingest``: replay an open-loop arrival trace through the
    ingestion plane and report throughput, latency and fairness."""
    import json

    from repro.runtime import FaasmCluster
    from repro.runtime.ingest import IngestionConfig, TenantSpec
    from repro.sim import workload
    from repro.telemetry import Telemetry

    if ":" in args.tenants or "," in args.tenants:
        weights = _parse_tenant_weights(args.tenants, 0)
    else:
        n = max(1, int(args.tenants))
        # Default tenant mix: distinct weights so the fairness column has
        # something to show (tenant-0 weight 1, tenant-1 weight 2, ...).
        weights = {f"tenant-{i}": float(i + 1) for i in range(n)}
    per_tenant_rate = args.rate / max(1, len(weights))

    if args.trace == "multi":
        events = workload.multi_tenant_trace(
            {name: per_tenant_rate for name in weights},
            args.duration, seed=args.seed, functions=("ingest-echo",),
        )
    elif args.trace == "bursty":
        events = workload.bursty_trace(
            args.rate, args.duration, seed=args.seed,
            functions=("ingest-echo",), tenant=next(iter(sorted(weights))),
        )
    else:
        events = workload.poisson_trace(
            args.rate, args.duration, seed=args.seed,
            functions=("ingest-echo",), tenant=next(iter(sorted(weights))),
        )

    config = IngestionConfig(
        batch_size=args.batch,
        tenants=tuple(
            TenantSpec(name, weight=w, queue_limit=args.queue_limit)
            for name, w in sorted(weights.items())
        ),
        default_queue_limit=args.queue_limit,
    )
    cluster = FaasmCluster(
        n_hosts=args.hosts, telemetry=Telemetry(enabled=True)
    )
    try:
        cluster.register_python("ingest-echo", _ingest_echo)
        plane = cluster.ingestion(config)
        started = time.perf_counter()
        outcomes = workload.replay(
            events, cluster.submit, speed=args.speed
        )
        plane.drain(timeout=args.timeout)
        elapsed = time.perf_counter() - started

        admitted = sum(1 for _, o in outcomes if o == "admitted")
        deferred = sum(1 for _, o in outcomes if o == "deferred")
        shed = sum(1 for _, o in outcomes if o == "shed")
        stats = plane.stats()
        bus_stats = cluster.bus.stats
        total_weight = sum(weights.values()) or 1.0
        total_served = sum(
            t["served"] for t in stats["tenants"].values()
        ) or 1
        result = {
            "trace": args.trace,
            "events": len(events),
            "admitted": admitted,
            "deferred": deferred,
            "shed": shed,
            "duration_s": round(elapsed, 4),
            "throughput_cps": round(admitted / max(elapsed, 1e-9), 1),
            "batches": bus_stats.batches,
            "batched_calls": bus_stats.batched_calls,
            "sojourn_p50_ms": round(stats["sojourn_p50_s"] * 1e3, 3),
            "sojourn_p99_ms": round(stats["sojourn_p99_s"] * 1e3, 3),
            "tenants": {
                name: {
                    "weight": t["weight"],
                    "served": t["served"],
                    "share": round(t["served"] / total_served, 4),
                    "fair_share": round(
                        t["weight"] / total_weight, 4
                    ),
                }
                for name, t in stats["tenants"].items()
            },
        }
        if args.json:
            print(json.dumps(result, indent=2))
        else:
            print(
                f"trace {args.trace}: {len(events)} arrivals, "
                f"{admitted} admitted, {deferred} deferred, {shed} shed"
            )
            print(
                f"throughput {result['throughput_cps']:.0f} calls/s "
                f"in {elapsed:.2f}s  "
                f"({bus_stats.batches} batches, "
                f"{bus_stats.batched_calls} batched calls)"
            )
            print(
                f"sojourn p50 {result['sojourn_p50_ms']:.2f} ms  "
                f"p99 {result['sojourn_p99_ms']:.2f} ms"
            )
            print(f"{'tenant':<12}{'weight':>8}{'served':>8}"
                  f"{'share':>8}{'fair':>8}")
            for name, t in result["tenants"].items():
                print(
                    f"{name:<12}{t['weight']:>8.1f}{t['served']:>8}"
                    f"{t['share']:>8.2%}{t['fair_share']:>8.2%}"
                )
        return 0
    finally:
        cluster.shutdown()


def _report_markdown(cluster, digests: dict, rounds: int) -> str:
    telemetry = cluster.telemetry
    agg = cluster.metrics_snapshot()["aggregates"]
    lines = [
        "# repro cluster report",
        "",
        f"{len(cluster.instances)} host(s), {rounds} demo round(s) driven; "
        f"{len(digests)} access profile(s) persisted content-addressed.",
        "",
        "## Cluster aggregates",
        "",
        "| series | total |",
        "| --- | ---: |",
    ]
    for name, value in agg.items():
        lines.append(f"| `{name}` | {value:g} |")
    lines += [
        "",
        "## Service levels",
        "",
        "| function | objective | compliance | burn rate | alerting |",
        "| --- | ---: | ---: | ---: | :---: |",
    ]
    report = telemetry.slos.report() if telemetry.slos is not None else {}
    for fn, slo in sorted(report.items()):
        lines.append(
            f"| `{fn}` | {slo['objective']:.2%} | {slo['compliance']:.2%} "
            f"| {slo['burn_rate']:.2f} | {'yes' if slo['alerting'] else 'no'} |"
        )
    lines += ["", "## Function profiles"]
    for fn in sorted(digests):
        profile = cluster.load_profile(fn)
        if profile is None:
            continue
        lines += [
            "",
            f"### `{fn}`",
            "",
            f"digest `{digests[fn]}` — {profile.calls} calls, "
            f"{profile.cold_starts} cold starts, {profile.errors} errors, "
            f"{profile.retries} retries.",
        ]
        if profile.latency.count:
            lat = profile.latency
            lines += [
                "",
                f"Latency p50/p95/p99: {lat.percentile(50) * 1e3:.2f} / "
                f"{lat.percentile(95) * 1e3:.2f} / "
                f"{lat.percentile(99) * 1e3:.2f} ms.",
            ]
        if profile.phases:
            lines += ["", "| phase | count | total ms |", "| --- | ---: | ---: |"]
            for name, (count, total) in sorted(
                profile.phases.items(), key=lambda kv: -kv[1][1]
            ):
                lines.append(f"| `{name}` | {count} | {total * 1e3:.2f} |")
        if profile.state:
            lines += [
                "",
                "| state key | pulls | pushes | B in | B out | hot ranges |",
                "| --- | ---: | ---: | ---: | ---: | --- |",
            ]
            for key, kp in sorted(profile.state.items()):
                hot = [
                    f"r[{s},{e})x{n}" for s, e, n in kp.reads.hot(2)
                ] + [
                    f"w[{s},{e})x{n}" for s, e, n in kp.writes.hot(2)
                ]
                lines.append(
                    f"| `{key}` | {kp.pulls} | {kp.pushes} | "
                    f"{kp.bytes_pulled} | {kp.bytes_pushed} | "
                    f"{' '.join(hot)} |"
                )
        snap = profile.snapshot
        if any(snap.values()):
            lines += [
                "",
                f"Snapshots: {snap['restores']} restores "
                f"({snap['cached']} cache hits), {snap['payload_pages']} "
                f"payload pages, {snap['bytes_shipped']} bytes shipped.",
            ]
        if profile.chains:
            chains = ", ".join(
                f"`{callee}` x{n}"
                for callee, n in sorted(profile.chains.items())
            )
            lines += ["", f"Chains into: {chains}."]
    exposition = cluster.scrape_metrics()
    samples = sum(
        1 for line in exposition.splitlines() if not line.startswith("#")
    )
    lines += [
        "",
        "## Metrics exposition",
        "",
        f"The OpenMetrics endpoint served {samples} samples across "
        f"{exposition.count('# TYPE')} series in this scrape.",
        "",
    ]
    return "\n".join(lines)


def _markdown_to_html(markdown: str) -> str:
    """A dependency-free subset renderer for the report: headings, tables,
    paragraphs, inline code."""
    import html as html_mod
    import re

    def inline(text: str) -> str:
        escaped = html_mod.escape(text)
        return re.sub(r"`([^`]+)`", r"<code>\1</code>", escaped)

    out = ["<!DOCTYPE html>", "<html><head><meta charset='utf-8'>",
           "<title>repro cluster report</title>",
           "<style>body{font-family:sans-serif;margin:2em}"
           "table{border-collapse:collapse}"
           "td,th{border:1px solid #999;padding:0.25em 0.6em}"
           "code{background:#eee;padding:0 0.2em}</style>",
           "</head><body>"]
    lines = markdown.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith("#"):
            level = len(line) - len(line.lstrip("#"))
            out.append(
                f"<h{level}>{inline(line.lstrip('#').strip())}</h{level}>"
            )
            i += 1
        elif line.startswith("|"):
            rows = []
            while i < len(lines) and lines[i].startswith("|"):
                cells = [c.strip() for c in lines[i].strip("|").split("|")]
                if not all(re.fullmatch(r":?-+:?", c) for c in cells):
                    rows.append(cells)
                i += 1
            out.append("<table>")
            for r, cells in enumerate(rows):
                tag = "th" if r == 0 else "td"
                out.append(
                    "<tr>" + "".join(
                        f"<{tag}>{inline(c)}</{tag}>" for c in cells
                    ) + "</tr>"
                )
            out.append("</table>")
        elif line.strip():
            out.append(f"<p>{inline(line.strip())}</p>")
            i += 1
        else:
            i += 1
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def cmd_report(args) -> int:
    """``repro report``: one-shot cluster report (markdown or HTML)."""
    cluster = _observability_cluster(args.hosts)
    try:
        _drive_demo(cluster, args.calls)
        digests = cluster.persist_profiles()
        payload = _report_markdown(cluster, digests, args.calls)
        if args.html:
            payload = _markdown_to_html(payload)
        if args.out:
            with open(args.out, "w") as f:
                f.write(payload)
            print(f"wrote report to {args.out}", file=sys.stderr)
        else:
            sys.stdout.write(payload)
        return 0
    finally:
        cluster.shutdown()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Faasm-reproduction toolchain"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and execute in a Faaslet")
    p_run.add_argument("file")
    p_run.add_argument("--entry", help="exported function (default: main)")
    p_run.add_argument("--input", help="call input passed to the guest")
    p_run.add_argument("--arg", type=int, action="append",
                       help="invoke entry with integer args instead of call I/O")
    from repro.wasm import TIERS

    p_run.add_argument("--tier", choices=TIERS,
                       help="execution tier (default: threaded, or "
                            "$REPRO_WASM_TIER)")
    p_run.set_defaults(fn=cmd_run)

    p_prof = sub.add_parser(
        "profile", help="run with per-opcode dispatch counters"
    )
    p_prof.add_argument("file")
    p_prof.add_argument("--entry", help="exported function (default: main)")
    p_prof.add_argument("--input", help="call input passed to the guest")
    p_prof.add_argument("--arg", type=int, action="append",
                        help="invoke entry with integer args instead of call I/O")
    p_prof.add_argument("--top", type=int, default=20,
                        help="number of opcodes/pairs to print (default 20)")
    p_prof.add_argument("--export",
                        help="write the unified telemetry artifact "
                             "(spans + metrics + dispatch counts) to FILE")
    p_prof.set_defaults(fn=cmd_profile)

    p_tr = sub.add_parser(
        "trace", help="run with span tracing and export the trace"
    )
    p_tr.add_argument("file")
    p_tr.add_argument("--entry", help="exported function (default: main)")
    p_tr.add_argument("--input", help="call input passed to the guest")
    p_tr.add_argument("--arg", type=int, action="append",
                      help="invoke entry with integer args instead of call I/O")
    p_tr.add_argument("--tier", choices=TIERS,
                      help="execution tier (default: threaded)")
    p_tr.add_argument("--format", choices=("tree", "chrome", "jsonl"),
                      default="tree",
                      help="export format (default: tree + latency table)")
    p_tr.add_argument("--out", help="write the export to FILE instead of stdout")
    p_tr.add_argument("--profile", action="store_true",
                      help="also collect opcode-dispatch counters "
                           "(reference interpreter) and embed them")
    p_tr.set_defaults(fn=cmd_trace)

    p_met = sub.add_parser(
        "metrics", help="run a guest and dump the metrics registry"
    )
    p_met.add_argument("file")
    p_met.add_argument("--entry", help="exported function (default: main)")
    p_met.add_argument("--input", help="call input passed to the guest")
    p_met.add_argument("--arg", type=int, action="append",
                       help="invoke entry with integer args instead of call I/O")
    p_met.add_argument("--tier", choices=TIERS,
                       help="execution tier (default: threaded)")
    p_met.add_argument("--json", action="store_true",
                       help="dump as JSON instead of a table")
    p_met.add_argument("--profile", action="store_true",
                       help="run on the counting interpreter and fold the "
                            "opcode-family rollups (simd.ops / atomic.ops) "
                            "into the dump")
    p_met.set_defaults(fn=cmd_metrics)

    p_dis = sub.add_parser("disasm", help="print text-format disassembly")
    p_dis.add_argument("file")
    p_dis.set_defaults(fn=cmd_disasm)

    p_obj = sub.add_parser("objdump", help="summarise an object file")
    p_obj.add_argument("file")
    p_obj.set_defaults(fn=cmd_objdump)

    p_k = sub.add_parser("kernels", help="run the Polybench suite")
    p_k.add_argument("--n", type=int, help="problem size override")
    p_k.set_defaults(fn=cmd_kernels)

    p_sn = sub.add_parser(
        "snapshots",
        help="print per-host PageStore residency/dedup stats for a function",
    )
    p_sn.add_argument("file", nargs="?",
                      help="guest source to upload (default: built-in demo)")
    p_sn.add_argument("--init",
                      help="exported init function to snapshot after")
    p_sn.add_argument("--hosts", type=int, default=2,
                      help="cluster size (default 2)")
    p_sn.add_argument("--calls", type=int, default=8,
                      help="invocations to drive (default 8)")
    p_sn.add_argument("--json", action="store_true",
                      help="dump the stats as JSON")
    p_sn.set_defaults(fn=cmd_snapshots)

    p_ch = sub.add_parser("chaos", help="run a seeded fault-injection soak")
    p_ch.add_argument("--seed", type=int, default=1,
                      help="plan seed (default 1); same seed => same faults")
    p_ch.add_argument("--calls", type=int, default=500,
                      help="number of calls to dispatch (default 500)")
    p_ch.add_argument("--hosts", type=int, default=4,
                      help="cluster size (default 4)")
    p_ch.add_argument("--drop-rate", type=float, default=0.10,
                      help="first-dispatch drop probability (default 0.10)")
    p_ch.add_argument("--crashes", type=int, default=2,
                      help="host crashes to inject (default 2)")
    p_ch.add_argument("--outages", type=int, default=1,
                      help="state-stripe outage windows to arm (default 1)")
    p_ch.add_argument("--timeout", type=float, default=20.0,
                      help="soak deadline in seconds (default 20)")
    p_ch.add_argument("--json", action="store_true",
                      help="print the report as JSON")
    p_ch.add_argument("--log", help="write the canonical fault log to FILE")
    p_ch.set_defaults(fn=cmd_chaos)

    p_ing = sub.add_parser(
        "ingest",
        help="replay an open-loop arrival trace through the ingestion "
             "plane and report throughput/latency/fairness",
    )
    p_ing.add_argument("--trace", choices=("poisson", "bursty", "multi"),
                       default="multi",
                       help="arrival trace kind (default multi)")
    p_ing.add_argument("--tenants", default="2",
                       help="tenant count, or explicit name:weight pairs "
                            "(e.g. 'gold:3,free:1'; default 2)")
    p_ing.add_argument("--rate", type=float, default=2000.0,
                       help="aggregate offered calls/sec (default 2000)")
    p_ing.add_argument("--duration", type=float, default=1.0,
                       help="trace duration in seconds (default 1.0)")
    p_ing.add_argument("--hosts", type=int, default=2,
                       help="cluster size (default 2)")
    p_ing.add_argument("--batch", type=int, default=64,
                       help="dispatch batch size (default 64)")
    p_ing.add_argument("--queue-limit", type=int, default=100_000,
                       help="per-tenant admission queue bound "
                            "(default 100000)")
    p_ing.add_argument("--seed", type=int, default=0,
                       help="trace seed (default 0)")
    p_ing.add_argument("--speed", type=float, default=0.0,
                       help="replay speed multiplier; 0 = as fast as "
                            "possible (default 0)")
    p_ing.add_argument("--timeout", type=float, default=60.0,
                       help="drain deadline in seconds (default 60)")
    p_ing.add_argument("--json", action="store_true",
                       help="print the report as JSON")
    p_ing.set_defaults(fn=cmd_ingest)

    p_pr = sub.add_parser(
        "profiles",
        help="mine, persist, and print per-function access profiles",
    )
    p_pr.add_argument("function", nargs="?",
                      help="show only this function (default: all mined)")
    p_pr.add_argument("--hosts", type=int, default=2,
                      help="cluster size (default 2)")
    p_pr.add_argument("--calls", type=int, default=6,
                      help="demo workload rounds to drive (default 6)")
    p_pr.add_argument("--json", action="store_true",
                      help="dump the persisted profiles as JSON")
    p_pr.add_argument("--flame-dir",
                      help="write collapsed-stack + speedscope flamegraph "
                           "artifacts per function into DIR")
    p_pr.set_defaults(fn=cmd_profiles)

    p_pf = sub.add_parser(
        "prefetch",
        help="mine profiles, replay with proactive delivery on, and "
             "report per-function prefetch hit/waste ratios",
    )
    p_pf.add_argument("--hosts", type=int, default=2,
                      help="cluster size (default 2)")
    p_pf.add_argument("--calls", type=int, default=6,
                      help="demo workload rounds per phase (default 6)")
    p_pf.add_argument("--json", action="store_true",
                      help="dump the delivery ledger as JSON")
    p_pf.set_defaults(fn=cmd_prefetch)

    p_top = sub.add_parser(
        "top", help="live per-function cluster dashboard"
    )
    p_top.add_argument("--hosts", type=int, default=2,
                       help="cluster size (default 2)")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between frames (default 1.0)")
    p_top.add_argument("--frames", type=int, default=10,
                       help="frames to render before exiting (default 10)")
    p_top.add_argument("--plain", action="store_true",
                       help="append frames instead of redrawing the screen")
    p_top.set_defaults(fn=cmd_top)

    p_rep = sub.add_parser(
        "report", help="emit a cluster report (markdown or HTML)"
    )
    p_rep.add_argument("--hosts", type=int, default=2,
                       help="cluster size (default 2)")
    p_rep.add_argument("--calls", type=int, default=6,
                       help="demo workload rounds to drive (default 6)")
    p_rep.add_argument("--html", action="store_true",
                       help="render the report as standalone HTML")
    p_rep.add_argument("--out", help="write the report to FILE")
    p_rep.set_defaults(fn=cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
