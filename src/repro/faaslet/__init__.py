"""``repro.faaslet`` — the Faaslet isolation abstraction (§3).

Exports the Faaslet itself, function definitions (upload-time artifacts),
shared memory regions, Proto-Faaslet snapshots, CPU cgroups and network
namespaces.
"""

from .cgroup import CGroupMember, CpuCgroup, DEFAULT_PERIOD_FUEL
from .faaslet import (
    DEFAULT_MAX_PAGES,
    ENTRY_EXPORT,
    Faaslet,
    FaasletExecutionError,
    FunctionDefinition,
)
from .netns import (
    AF_INET,
    AF_INET6,
    AF_UNIX,
    SOCK_DGRAM,
    SOCK_STREAM,
    NetworkNamespace,
    NetworkPolicyError,
    TokenBucket,
    VirtualInterface,
)
from .pagestore import HostSnapshotCache, PageStore, SnapshotRepository
from .sharing import SharedRegion
from .snapshot import ProtoFaaslet, SnapshotError, SnapshotManifest

__all__ = [
    "AF_INET",
    "AF_INET6",
    "AF_UNIX",
    "CGroupMember",
    "CpuCgroup",
    "DEFAULT_MAX_PAGES",
    "DEFAULT_PERIOD_FUEL",
    "ENTRY_EXPORT",
    "Faaslet",
    "FaasletExecutionError",
    "FunctionDefinition",
    "HostSnapshotCache",
    "NetworkNamespace",
    "NetworkPolicyError",
    "PageStore",
    "ProtoFaaslet",
    "SOCK_DGRAM",
    "SOCK_STREAM",
    "SharedRegion",
    "SnapshotError",
    "SnapshotManifest",
    "SnapshotRepository",
    "TokenBucket",
    "VirtualInterface",
]
