"""Shared memory regions (§3.3, Fig. 2).

A :class:`SharedRegion` is a page-aligned buffer of "common process memory".
Mapping it into a Faaslet extends that Faaslet's linear byte array and remaps
the new pages onto the region's backing buffer, so every mapper sees the same
bytes with zero copies — the Python analogue of ``mmap(MAP_SHARED)`` +
``mremap`` in the paper.

The local state tier (§4.2) stores its replicas exclusively in shared
regions, which is how co-located Faaslets share state values in memory.
"""

from __future__ import annotations

import threading

from repro.wasm.memory import LinearMemory
from repro.wasm.types import PAGE_SIZE


def _round_up_pages(nbytes: int) -> int:
    return max(1, -(-nbytes // PAGE_SIZE))


class SharedRegion:
    """A page-aligned shared buffer mappable into many Faaslets' memories."""

    def __init__(self, name: str, size: int):
        if size <= 0:
            raise ValueError("shared region size must be positive")
        self.name = name
        #: Usable size requested by the creator (backing is page-aligned).
        self.size = size
        self.n_pages = _round_up_pages(size)
        self.backing = bytearray(self.n_pages * PAGE_SIZE)
        self._lock = threading.Lock()
        #: Number of linear memories this region is currently mapped into.
        self.mapping_count = 0
        #: Write listeners (the state tier's dirty tracking, §4.2): each is
        #: called with the [start, end) byte range of a tracked write.
        self._write_listeners: list = []
        #: Pages this region is mapped through while a listener is armed;
        #: kept so pushes can re-protect every mapper (dirty-flush reset).
        self._mapped_pages: list = []

    # ------------------------------------------------------------------
    # Write tracking (delta-sync data plane)
    # ------------------------------------------------------------------
    def add_write_listener(self, fn) -> None:
        """Arm write tracking: ``fn(start, end)`` fires for host writes via
        :meth:`write` and (page-granular) for guest stores into mapped
        pages. The local tier's replicas use this to maintain their dirty
        interval sets."""
        with self._lock:
            self._write_listeners.append(fn)

    def _notify_write(self, start: int, end: int) -> None:
        end = min(end, self.size)
        if end <= start:
            return
        for fn in self._write_listeners:
            fn(start, end)

    def reprotect_mappings(self) -> None:
        """Re-arm page-granular write tracking on every mapping.

        Called after a dirty flush (push): the next guest store to each
        shared page takes one slow-path fault, re-marking the page dirty —
        the reset step of Faasm's dirty-page tracking cycle. Writes racing
        with the reset may go unrecorded until the page faults again; the
        eventually-consistent DDOs this path serves tolerate that
        (HOGWILD-style, §4.1/§6.2).
        """
        with self._lock:
            for page in self._mapped_pages:
                page.writable = False

    # ------------------------------------------------------------------
    def map_into(self, memory: LinearMemory) -> int:
        """Map this region into ``memory``; returns the guest base address.

        The guest sees the region as ordinary linear memory starting at the
        returned offset; loads and stores are bounds-checked as usual.
        While a write listener is armed the new pages start write-protected
        so guest stores are dirty-tracked page-granularly.
        """
        with self._lock:
            on_write = self._notify_write if self._write_listeners else None
            base = memory.map_shared_pages(self.backing, on_write=on_write)
            if on_write is not None:
                first = base // PAGE_SIZE
                self._mapped_pages.extend(
                    memory.pages[first : first + self.n_pages]
                )
            self.mapping_count += 1
            return base

    # ------------------------------------------------------------------
    # Host-side access (used by the state tier).
    # ------------------------------------------------------------------
    def read(self, offset: int = 0, length: int | None = None) -> bytes:
        length = self.size - offset if length is None else length
        self._check(offset, length)
        return bytes(self.backing[offset : offset + length])

    def write(self, data: bytes | bytearray | memoryview, offset: int = 0) -> None:
        self._check(offset, len(data))
        self.backing[offset : offset + len(data)] = data
        self._notify_write(offset, offset + len(data))

    def view(self, offset: int = 0, length: int | None = None) -> memoryview:
        """A zero-copy writable view (host-side fast path for numpy DDOs).

        Writes through a view are *not* write-tracked: the state tier uses
        views for pulls (bytes arriving from the global tier are present,
        not dirty), and callers mutating state through a view must report
        their writes via :class:`~repro.state.local.Replica.mark_dirty`
        (or accept a conservative whole-value dirty mark, as
        ``StateAPI.get_state`` applies).
        """
        length = self.size - offset if length is None else length
        self._check(offset, length)
        return memoryview(self.backing)[offset : offset + length]

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise IndexError(
                f"region {self.name!r}: access [{offset}, {offset + length}) "
                f"outside size {self.size}"
            )

    def resize(self, new_size: int) -> None:
        """Grow the region (e.g. after a state value grows via append).

        Growth beyond the current page allocation reallocates the backing,
        which is only legal while the region is unmapped: remapping mapped
        guests would change their view identity.
        """
        if new_size <= self.size:
            self.size = max(self.size, new_size)
            return
        needed_pages = _round_up_pages(new_size)
        if needed_pages > self.n_pages:
            if self.mapping_count:
                raise RuntimeError(
                    f"cannot reallocate mapped region {self.name!r}"
                )
            fresh = bytearray(needed_pages * PAGE_SIZE)
            fresh[: len(self.backing)] = self.backing
            self.backing = fresh
            self.n_pages = needed_pages
        self.size = new_size
