"""CPU isolation: a cgroup/CFS-like fair-share accounting layer (§3.1).

In the paper every Faaslet's thread joins a Linux cgroup with an equal CPU
share and the kernel's CFS enforces fairness. Our substrate has no kernel,
but the wasm interpreter meters *fuel* (instructions); this module turns
fuel into the same two guarantees:

* **accounting** — each member's consumed CPU (instructions) is tracked, so
  the runtime and the benchmarks can observe per-Faaslet CPU usage;
* **enforcement** — before each invocation a member is granted a fuel
  quantum proportional to its share; a function that exceeds its quantum
  traps with :class:`~repro.wasm.errors.OutOfFuel` and must be rescheduled,
  so a runaway guest cannot monopolise the executor — the CFS-analogue of
  involuntary preemption at quantum granularity.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

#: Default fuel quantum granted per scheduling period to a share-1 member.
DEFAULT_PERIOD_FUEL = 2_000_000


@dataclass
class CGroupMember:
    """Accounting record for one Faaslet inside a cgroup."""

    name: str
    shares: int = 1
    cpu_used: int = 0
    quantum_grants: int = 0
    throttled: int = 0


class CpuCgroup:
    """A CPU cgroup: fair fuel quanta for its members.

    The quantum for a member is ``period_fuel * shares / total_shares`` —
    the same proportional-share arithmetic as ``cpu.shares``.
    """

    def __init__(self, name: str, period_fuel: int = DEFAULT_PERIOD_FUEL):
        self.name = name
        self.period_fuel = period_fuel
        self._members: dict[str, CGroupMember] = {}
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    def add_member(self, name: str, shares: int = 1) -> CGroupMember:
        if shares <= 0:
            raise ValueError("shares must be positive")
        with self._mutex:
            if name in self._members:
                raise ValueError(f"member {name!r} already in cgroup {self.name!r}")
            member = CGroupMember(name, shares)
            self._members[name] = member
            return member

    def remove_member(self, name: str) -> None:
        with self._mutex:
            self._members.pop(name, None)

    def member(self, name: str) -> CGroupMember:
        with self._mutex:
            return self._members[name]

    @property
    def total_shares(self) -> int:
        with self._mutex:
            return sum(m.shares for m in self._members.values())

    # ------------------------------------------------------------------
    def quantum_for(self, name: str) -> int:
        """Fuel quantum for one scheduling period of ``name``."""
        with self._mutex:
            member = self._members[name]
            total = sum(m.shares for m in self._members.values())
            member.quantum_grants += 1
            return max(1, self.period_fuel * member.shares // total)

    def charge(self, name: str, fuel_used: int) -> None:
        """Record CPU consumed by a member (after an invocation)."""
        with self._mutex:
            self._members[name].cpu_used += fuel_used

    def record_throttle(self, name: str) -> None:
        with self._mutex:
            self._members[name].throttled += 1

    # ------------------------------------------------------------------
    def usage(self) -> dict[str, int]:
        with self._mutex:
            return {n: m.cpu_used for n, m in self._members.items()}

    def fairness_ratio(self) -> float:
        """max/min of share-normalised CPU usage across members (1.0 is
        perfectly fair); members with no usage are ignored."""
        with self._mutex:
            rates = [
                m.cpu_used / m.shares for m in self._members.values() if m.cpu_used
            ]
        if len(rates) < 2:
            return 1.0
        return max(rates) / min(rates)
