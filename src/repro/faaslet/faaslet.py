"""The Faaslet: the paper's isolation abstraction (§3).

A Faaslet bundles, per Fig. 1:

* a **function** compiled to the wasm-like IR, executing in a private
  linear memory with SFI guarantees;
* optional **shared memory regions** mapped into that linear memory (§3.3),
  which is how the local state tier is exposed;
* a **network namespace** with its own shaped virtual interface;
* membership of a **CPU cgroup** (fuel quanta for fairness);
* a **WASI-capability filesystem** and the message-bus/chaining context,
  reached through the host interface (Tab. 2).

Faaslets are created cold from a :class:`FunctionDefinition` (validated,
pre-code-generated at upload time) or warm from a Proto-Faaslet snapshot
(:mod:`repro.faaslet.snapshot`).
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field

from repro.telemetry import span
from repro.wasm import Trap
from repro.wasm.codecache import GLOBAL_CODE_CACHE
from repro.wasm.codegen import CompiledFunction
from repro.wasm.instance import Instance
from repro.wasm.memory import LinearMemory
from repro.wasm.module import Module
from repro.wasm.types import PAGE_SIZE, Limits, MemoryType
from repro.wasm.validation import validate_module

from .netns import NetworkNamespace

logger = logging.getLogger(__name__)


def _host_imports(faaslet):
    """Deferred import: repro.host depends on repro.faaslet, so the edge
    back to the host interface is resolved lazily to avoid an import cycle."""
    from repro.host.interface import build_host_imports

    return build_host_imports(faaslet)

_faaslet_ids = itertools.count(1)

#: Default per-function memory cap (§3.2: "each function has its own
#: pre-defined memory limit"). 1024 pages = 64 MiB.
DEFAULT_MAX_PAGES = 1024

#: Default entry point exported by guest functions.
ENTRY_EXPORT = "main"


@dataclass
class FunctionDefinition:
    """A deployed function: the output of the upload service (§5.2).

    Holds the validated module together with its pre-generated "object
    code" (flat-compiled functions), so instantiation never re-runs
    validation or code generation — those happened once, in the trusted
    environment, at upload time (§3.4).
    """

    name: str
    module: Module
    compiled: list[CompiledFunction] = field(default_factory=list)
    entry: str = ENTRY_EXPORT
    max_pages: int = DEFAULT_MAX_PAGES
    user: str = "default"

    @classmethod
    def build(cls, name: str, module: Module, **kwargs) -> "FunctionDefinition":
        """Validate and code-generate ``module`` (the trusted phases).

        Codegen goes through the cluster-wide code cache, so re-uploading
        the same module text (or spawning from a re-parsed copy) reuses
        the existing compiled — and closure-threaded — function list.
        """
        validate_module(module)
        return cls(name, module, GLOBAL_CODE_CACHE.get_or_compile(module), **kwargs)


class FaasletExecutionError(RuntimeError):
    """The guest function trapped or misbehaved; carries the exit code."""


class Faaslet:
    """One isolated execution context for a deployed function."""

    def __init__(
        self,
        definition: FunctionDefinition,
        env,
        *,
        proto=None,
        fuel: int | None = None,
        tier: str | None = None,
        profile: bool = False,
    ):
        self.definition = definition
        self.env = env
        self.id = next(_faaslet_ids)
        self.name = f"faaslet-{definition.name}-{self.id}"
        self.user = definition.user

        # Per-Faaslet network namespace sharing the environment's endpoint
        # registry (the namespace is the isolation boundary; endpoints model
        # the outside world).
        endpoints = env.netns.endpoints if getattr(env, "netns", None) else {}
        self.netns = NetworkNamespace(self.name, endpoints=endpoints)
        # Per-user filesystem view (Tab. 2); environments without user
        # scoping fall back to their single filesystem.
        if hasattr(env, "filesystem_for"):
            self.filesystem = env.filesystem_for(self.user)
        else:
            self.filesystem = env.filesystem

        # Call context (host interface I/O).
        self.input_data: bytes = b""
        self.output_data: bytes = b""

        #: key -> guest base address of the mapped shared region.
        self._state_mappings: dict[str, int] = {}
        #: dlopen handles -> dynamically linked instances.
        self._dl_handles: dict[int, Instance] = {}
        self._next_dl_handle = 1
        #: Guest-thread runtime (created lazily on the first thread_spawn).
        self._thread_runtime: "GuestThreadRuntime | None" = None
        #: Proto-Faaslet this Faaslet restores from on reset() (set when
        #: spawned from a snapshot).
        self.proto = proto
        #: Number of calls served by this (warm) Faaslet.
        self.calls_served = 0
        #: Execution tier pinned at spawn (None = session default); reset()
        #: restores onto the same tier.
        self.tier = tier

        module = definition.module
        imports = _host_imports(self)
        if proto is not None:
            self.instance = proto.make_instance(imports, fuel=fuel, tier=tier)
            if profile:
                raise ValueError("profiling requires a cold (non-proto) spawn")
        else:
            min_pages = module.memory.limits.minimum if module.memory else 1
            memory = LinearMemory(
                MemoryType(Limits(min_pages, definition.max_pages))
            )
            self.instance = Instance(
                module,
                imports,
                memory=memory,
                fuel=fuel,
                validated=True,
                precompiled=definition.compiled,
                tier=tier,
                profile=profile,
            )
        self._brk = self.instance.memory.size_bytes if self.instance.memory else 0

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def call(self, input_data: bytes = b"", entry: str | None = None) -> tuple[int, bytes]:
        """Execute the function; returns ``(exit_code, output_bytes)``.

        A trap inside the guest is contained by the Faaslet boundary and
        reported as a non-zero exit code, never as a host exception.
        """
        self.input_data = bytes(input_data)
        self.output_data = b""
        with span(
            "guest.exec", function=self.definition.name, runtime="wasm"
        ) as sp:
            before = self.instance.instructions_executed
            try:
                result = self.instance.invoke(entry or self.definition.entry)
            except Trap as trap:
                logger.debug("%s trapped: %s", self.name, trap)
                sp.set_attr("trapped", True)
                sp.set_attr(
                    "fuel_consumed", self.instance.instructions_executed - before
                )
                return 1, self.output_data
            sp.set_attr(
                "fuel_consumed", self.instance.instructions_executed - before
            )
        code = int(result) if isinstance(result, int) else 0
        self.calls_served += 1
        return code, self.output_data

    def invoke_export(self, name: str, *args):
        """Call an arbitrary export (used by tests and language runtimes)."""
        with span(
            "guest.exec",
            function=self.definition.name,
            runtime="wasm",
            entry=name,
        ) as sp:
            before = self.instance.instructions_executed
            result = self.instance.invoke(name, *args)
            sp.set_attr(
                "fuel_consumed", self.instance.instructions_executed - before
            )
        return result

    # ------------------------------------------------------------------
    # Guest threads (intra-Faaslet fork-join parallelism)
    # ------------------------------------------------------------------
    @property
    def thread_runtime(self) -> "GuestThreadRuntime":
        """The lazily-created guest-thread scheduler for this Faaslet."""
        if self._thread_runtime is None:
            from .threads import GuestThreadRuntime

            # Environments wired into a cluster expose its metrics
            # registry; the runtime's thread counters then aggregate
            # cluster-wide instead of landing in the standalone registry.
            self._thread_runtime = GuestThreadRuntime(
                self.instance,
                name=self.name,
                metrics=getattr(self.env, "metrics", None),
            )
        return self._thread_runtime

    def thread_spawn(self, elem_index: int, argptr: int) -> int:
        """Spawn a guest thread on table entry ``elem_index`` (host call)."""
        return self.thread_runtime.spawn(elem_index, argptr)

    def thread_join(self, tid: int) -> int:
        """Join a guest thread, scheduling the region to completion."""
        return self.thread_runtime.join(tid)

    # ------------------------------------------------------------------
    # Shared state regions (§3.3 / §4.2)
    # ------------------------------------------------------------------
    def map_state_region(self, key: str, size: int | None, pull: bool = True) -> int:
        """Map the local-tier replica of ``key`` into linear memory and
        return the guest address of the value's first byte."""
        base = self._state_mappings.get(key)
        if base is not None:
            return base
        tier = self.env.state.tier
        if size is not None and not tier.client.exists(key) and not tier.has_replica(key):
            replica = tier.replica(key, size)
            with replica.lock.write_locked():
                replica.present.add(0, size)
        elif pull and not tier.has_replica(key):
            replica = tier.pull(key)
        else:
            replica = tier.replica(key, size)
        base = replica.region.map_into(self.instance.memory)
        self._state_mappings[key] = base
        return base

    @property
    def mapped_state_keys(self) -> list[str]:
        return sorted(self._state_mappings)

    # ------------------------------------------------------------------
    # Memory management (host interface: brk/sbrk/mmap)
    # ------------------------------------------------------------------
    def brk_value(self) -> int:
        return self._brk

    def sbrk(self, delta: int) -> int:
        """Grow the private region; returns the old break or -1 on failure
        (the per-function memory limit, §3.2)."""
        old = self._brk
        if delta <= 0:
            return old
        new_brk = old + delta
        mem = self.instance.memory
        needed_pages = -(-new_brk // PAGE_SIZE)
        if needed_pages > mem.size_pages:
            if mem.grow(needed_pages - mem.size_pages) == -1:
                return -1
        self._brk = new_brk
        return old

    def sbrk_pages(self, nbytes: int) -> int:
        """Page-aligned allocation for ``mmap``; returns the base address."""
        mem = self.instance.memory
        pages = -(-nbytes // PAGE_SIZE)
        old_pages = mem.grow(pages)
        if old_pages == -1:
            return -1
        self._brk = mem.size_bytes
        return old_pages * PAGE_SIZE

    # ------------------------------------------------------------------
    # Dynamic linking (Tab. 2)
    # ------------------------------------------------------------------
    def dlopen(self, path: str) -> int:
        """Load a module from the virtual filesystem into this Faaslet.

        The loaded code shares the Faaslet's linear memory and host
        interface, goes through full validation (``env.load_module``), and
        is therefore "covered by the same safety guarantees as its parent
        function" (§3.2).
        """
        module = self.env.load_module(path, filesystem=self.filesystem)
        imports = _host_imports(self)
        lib = Instance(
            module,
            imports,
            memory=self.instance.memory,
            validated=True,
            apply_data=True,
        )
        handle = self._next_dl_handle
        self._next_dl_handle += 1
        self._dl_handles[handle] = lib
        return handle

    def dlsym(self, handle: int, name: str) -> int:
        """Resolve ``name`` in a loaded library; returns a table index the
        guest can ``call_indirect`` through."""
        lib = self._dl_handles.get(handle)
        if lib is None:
            raise KeyError(f"bad dlopen handle {handle}")
        export = lib.module.find_export(name, "func")
        return self.instance.add_table_entry(("ext", lib, export.index))

    def dlclose(self, handle: int) -> int:
        return 0 if self._dl_handles.pop(handle, None) is not None else -1

    # ------------------------------------------------------------------
    # Reset (multi-tenant reuse, §5.2)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore execution state from this Faaslet's Proto-Faaslet.

        Guarantees that nothing from the previous call survives — memory,
        globals and table come back from the snapshot, so the Faaslet can
        safely serve a different tenant's next call.
        """
        if self.proto is None:
            raise RuntimeError(f"{self.name} has no Proto-Faaslet to reset from")
        imports = _host_imports(self)
        fuel = self.instance.fuel
        self.instance = self.proto.make_instance(imports, fuel=fuel, tier=self.tier)
        self._brk = self.instance.memory.size_bytes
        self._state_mappings.clear()
        self._dl_handles.clear()
        # The old runtime is bound to the discarded instance.
        self._thread_runtime = None
        self.input_data = b""
        self.output_data = b""

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_footprint(self) -> int:
        """Private bytes uniquely owned by this Faaslet (COW pages still
        aliasing a snapshot and shared regions excluded) — the analogue of
        the PSS measurement in Tab. 3."""
        mem = self.instance.memory
        return mem.resident_private_bytes() if mem else 0

    @property
    def cpu_used(self) -> int:
        return self.instance.instructions_executed
