"""Proto-Faaslets: ahead-of-time snapshots with copy-on-write restore (§5.2).

A Proto-Faaslet captures a function's execution state — linear memory
(stack, heap, data), globals and function table — after user-defined
initialisation code has run. Restoring builds a new instance whose memory
*aliases* the snapshot's frozen pages copy-on-write, so the restore cost is
proportional to the page count (pointer copies), not the memory size; pages
are physically copied only when first written. This is what makes restores
take hundreds of microseconds instead of the hundreds of milliseconds a
container boot costs (Tab. 3, Fig. 10).

Snapshots are OS-independent plain bytes: :meth:`ProtoFaaslet.to_bytes` /
:meth:`from_bytes` serialise them for cross-host restore, the property that
distinguishes Proto-Faaslets from single-machine snapshotting systems like
SEUSS or Catalyzer. At cluster scale the monolithic blob is superseded by
the content-addressed plane: a :class:`SnapshotManifest` (ordered page
digests + globals/table blobs) travels instead of the pages, and hosts pull
only the pages their :class:`~repro.faaslet.pagestore.PageStore` is missing.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass

from repro.telemetry import MetricsRegistry, span
from repro.wasm.instance import GlobalInstance, Instance
from repro.wasm.memory import ZERO_DIGEST, ZERO_PAGE, LinearMemory, page_digest
from repro.wasm.types import PAGE_SIZE, Limits, MemoryType

from .faaslet import Faaslet, FunctionDefinition

#: Legacy (v1) monolithic header: page count, globals blob len, table blob len.
_HEADER_V1 = struct.Struct("<III")

#: Zero-eliding (v2) monolithic header: magic, total pages, present (non-zero)
#: pages, globals blob len, table blob len. Followed by the present pages'
#: indices (``<I`` each), the blobs, then the present pages back to back.
_MAGIC_V2 = b"PF02"
_HEADER_V2 = struct.Struct("<4sIIII")

#: Manifest wire header: magic, format version, function-name length,
#: snapshot version, page count, globals blob len, table blob len. Followed
#: by the name (utf-8), the ordered raw digests (16 bytes each), the blobs.
_MANIFEST_MAGIC = b"FMAN"
_MANIFEST_HEADER = struct.Struct("<4sHHIIII")
_DIGEST_RAW_LEN = 16

#: Fallback registry for the ``snapshot.restores`` series of Proto-Faaslets
#: created outside a cluster (benchmarks, standalone tools).
_STANDALONE_METRICS = MetricsRegistry()


class SnapshotError(RuntimeError):
    """The Faaslet cannot be snapshotted in its current state."""


@dataclass(frozen=True)
class SnapshotManifest:
    """The content-addressed description of one Proto-Faaslet version.

    The manifest is what the object store and the wire carry instead of the
    page bytes: an *ordered* digest per 64 KiB page (all-zero pages appear
    as :data:`~repro.wasm.memory.ZERO_DIGEST` and never have a payload),
    plus the pickled globals and table snapshots, which are tiny. Restoring
    a snapshot anywhere requires only the manifest and whichever payload
    pages the restoring host's PageStore lacks.
    """

    function: str
    version: int
    page_digests: tuple[str, ...]
    globals_blob: bytes
    table_blob: bytes

    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        return len(self.page_digests)

    @property
    def memory_bytes(self) -> int:
        return len(self.page_digests) * PAGE_SIZE

    def payload_digests(self) -> list[str]:
        """Unique non-zero digests, in first-appearance order — the pages
        that actually have bytes behind them."""
        seen: set[str] = set()
        out: list[str] = []
        for digest in self.page_digests:
            if digest != ZERO_DIGEST and digest not in seen:
                seen.add(digest)
                out.append(digest)
        return out

    @property
    def zero_pages(self) -> int:
        return sum(1 for d in self.page_digests if d == ZERO_DIGEST)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        name = self.function.encode()
        header = _MANIFEST_HEADER.pack(
            _MANIFEST_MAGIC,
            1,
            len(name),
            self.version,
            len(self.page_digests),
            len(self.globals_blob),
            len(self.table_blob),
        )
        digests = b"".join(bytes.fromhex(d) for d in self.page_digests)
        return header + name + digests + self.globals_blob + self.table_blob

    @classmethod
    def from_bytes(cls, data: "bytes | bytearray | memoryview") -> "SnapshotManifest":
        view = memoryview(data)
        magic, fmt, name_len, version, n_pages, glen, tlen = (
            _MANIFEST_HEADER.unpack_from(view, 0)
        )
        if magic != _MANIFEST_MAGIC or fmt != 1:
            raise ValueError("not a snapshot manifest")
        pos = _MANIFEST_HEADER.size
        name = bytes(view[pos : pos + name_len]).decode()
        pos += name_len
        digests = []
        for _ in range(n_pages):
            digests.append(bytes(view[pos : pos + _DIGEST_RAW_LEN]).hex())
            pos += _DIGEST_RAW_LEN
        globals_blob = bytes(view[pos : pos + glen])
        pos += glen
        table_blob = bytes(view[pos : pos + tlen])
        return cls(name, version, tuple(digests), globals_blob, table_blob)


class ProtoFaaslet:
    """An initialised-execution-state snapshot for one function."""

    def __init__(
        self,
        definition: FunctionDefinition,
        frozen_pages: list[memoryview],
        globals_snapshot: list[tuple],
        table_snapshot: list[int | None] | None,
        page_digests: list[str] | None = None,
        version: int = 0,
        metrics: MetricsRegistry | None = None,
    ):
        self.definition = definition
        self.frozen_pages = frozen_pages
        self.globals_snapshot = globals_snapshot
        self.table_snapshot = table_snapshot
        #: Ordered content digests, one per frozen page (computed lazily
        #: unless capture/restore already knows them).
        self._page_digests = page_digests
        #: Manifest version this proto was materialised from (0 = local).
        self.version = version
        # Restores land in the ``snapshot.restores`` registry series (its
        # Counter is lock-protected: executor threads on one host race to
        # restore the same proto). The per-proto tally stays a bare int —
        # restore is the Tab. 3 hot path, and one synchronised counter per
        # restore is the accuracy/overhead point chosen here.
        self._restores = 0
        self._restore_series = (
            metrics if metrics is not None else _STANDALONE_METRICS
        ).counter("snapshot.restores", function=definition.name)

    @property
    def restore_count(self) -> int:
        """Number of times this snapshot has been restored (telemetry)."""
        return self._restores

    @property
    def page_digests(self) -> list[str]:
        """Ordered per-page content digests (the manifest's page list)."""
        if self._page_digests is None:
            self._page_digests = [page_digest(v) for v in self.frozen_pages]
        return self._page_digests

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        definition: FunctionDefinition,
        env,
        init: "callable | str | None" = None,
    ) -> "ProtoFaaslet":
        """Run user-defined initialisation code in a fresh Faaslet and
        snapshot the result (§5.2).

        ``init`` may be the name of an exported guest function to run, a
        Python callable receiving the Faaslet, or ``None`` to snapshot the
        just-instantiated state.
        """
        faaslet = Faaslet(definition, env)
        if isinstance(init, str):
            faaslet.instance.invoke(init)
        elif callable(init):
            init(faaslet)
        return cls.capture_from(faaslet)

    @classmethod
    def capture_from(cls, faaslet: Faaslet) -> "ProtoFaaslet":
        """Snapshot an existing Faaslet's current execution state."""
        instance = faaslet.instance
        if faaslet.mapped_state_keys:
            raise SnapshotError(
                "cannot snapshot a Faaslet with mapped shared state regions"
            )
        runtime = getattr(instance, "_thread_runtime", None)
        if runtime is not None and runtime.live_threads:
            # A parked guest thread's state lives on a host Python stack,
            # which no byte-level snapshot can capture.
            raise SnapshotError(
                "cannot snapshot a Faaslet with live guest threads"
            )
        if instance.memory is None:
            frozen: list[memoryview] = []
            digests: list[str] = []
        else:
            frozen, digests = instance.memory.freeze_with_digests()
        globals_snapshot = [
            (g.valtype, g.mutable, g.value) for g in instance.globals
        ]
        table_snapshot = None
        if instance.table is not None:
            for entry in instance.table:
                if isinstance(entry, tuple):
                    raise SnapshotError(
                        "cannot snapshot a Faaslet with dynamically linked "
                        "table entries"
                    )
            table_snapshot = list(instance.table)
        return cls(
            faaslet.definition,
            frozen,
            globals_snapshot,
            table_snapshot,
            page_digests=digests,
        )

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def make_instance(
        self,
        imports: dict,
        fuel: int | None = None,
        tier: str | None = None,
    ) -> Instance:
        """Build a wasm instance from the snapshot (the restore fast path:
        no validation, no codegen, no data copies — COW page aliasing).

        The restored instance shares ``definition.compiled`` — and with it
        any closure-threaded code already attached to those functions — so
        restores never re-run codegen or re-threading."""
        with span(
            "snapshot.restore",
            function=self.definition.name,
            pages=len(self.frozen_pages),
        ):
            module = self.definition.module
            funcs: list = []
            for imp in module.imports:
                funcs.append(imports[(imp.module, imp.name)])
            funcs.extend(self.definition.compiled)
            memory = None
            if self.frozen_pages or module.memory is not None:
                memtype = MemoryType(
                    Limits(len(self.frozen_pages), self.definition.max_pages)
                )
                memory = LinearMemory.from_frozen_pages(self.frozen_pages, memtype)
            globals_ = [
                GlobalInstance(vt, mut, val) for vt, mut, val in self.globals_snapshot
            ]
            table = list(self.table_snapshot) if self.table_snapshot is not None else None
            self._restores += 1
            self._restore_series.inc()
            return Instance.from_parts(
                module, funcs, memory, globals_, table, fuel=fuel, tier=tier
            )

    def restore(
        self, env, fuel: int | None = None, tier: str | None = None
    ) -> Faaslet:
        """Spawn a fresh Faaslet from this snapshot."""
        return Faaslet(self.definition, env, proto=self, fuel=fuel, tier=tier)

    # ------------------------------------------------------------------
    # Manifest bridge (the content-addressed data plane)
    # ------------------------------------------------------------------
    def manifest(self, version: int = 1) -> SnapshotManifest:
        """This snapshot's content-addressed description (no page bytes)."""
        return SnapshotManifest(
            self.definition.name,
            version,
            tuple(self.page_digests),
            pickle.dumps(self.globals_snapshot),
            pickle.dumps(self.table_snapshot),
        )

    @classmethod
    def from_manifest(
        cls,
        definition: FunctionDefinition,
        manifest: SnapshotManifest,
        pages: list[memoryview],
        metrics: MetricsRegistry | None = None,
    ) -> "ProtoFaaslet":
        """Rebuild a proto whose frozen pages alias ``pages`` (typically
        PageStore-resident views, shared with every other snapshot on the
        host that contains the same content)."""
        if len(pages) != manifest.n_pages:
            raise ValueError(
                f"manifest describes {manifest.n_pages} pages, got {len(pages)}"
            )
        return cls(
            definition,
            pages,
            pickle.loads(manifest.globals_blob),
            pickle.loads(manifest.table_blob),
            page_digests=list(manifest.page_digests),
            version=manifest.version,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    # Cross-host serialisation (monolithic wire format)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise to OS-independent bytes for cross-host restores.

        The v2 format elides all-zero pages (they are reconstructed from
        the shared zero page on restore) and is assembled by streaming
        straight into one exactly-sized preallocated buffer — no per-page
        intermediate ``bytes`` and no join copy.
        """
        globals_blob = pickle.dumps(self.globals_snapshot)
        table_blob = pickle.dumps(self.table_snapshot)
        digests = self.page_digests
        present = [i for i, d in enumerate(digests) if d != ZERO_DIGEST]
        index_blob_len = 4 * len(present)
        total = (
            _HEADER_V2.size
            + index_blob_len
            + len(globals_blob)
            + len(table_blob)
            + len(present) * PAGE_SIZE
        )
        buf = bytearray(total)
        _HEADER_V2.pack_into(
            buf,
            0,
            _MAGIC_V2,
            len(self.frozen_pages),
            len(present),
            len(globals_blob),
            len(table_blob),
        )
        pos = _HEADER_V2.size
        struct.pack_into(f"<{len(present)}I", buf, pos, *present)
        pos += index_blob_len
        buf[pos : pos + len(globals_blob)] = globals_blob
        pos += len(globals_blob)
        buf[pos : pos + len(table_blob)] = table_blob
        pos += len(table_blob)
        out = memoryview(buf)
        for i in present:
            out[pos : pos + PAGE_SIZE] = self.frozen_pages[i]
            pos += PAGE_SIZE
        return bytes(buf)

    @classmethod
    def from_bytes(
        cls, definition: FunctionDefinition, data: "bytes | memoryview"
    ) -> "ProtoFaaslet":
        """Deserialise a snapshot whose pages *alias* ``data``.

        Restored pages are memoryview slices over the single received
        buffer (and the shared zero page for elided pages) — no per-page
        copies; copy-on-write materialisation makes a private copy on the
        first write, exactly as for locally frozen pages. The caller must
        therefore treat ``data`` as immutable once passed in.
        """
        view = memoryview(data)
        if bytes(view[:4]) == _MAGIC_V2:
            _, n_pages, n_present, glen, tlen = _HEADER_V2.unpack_from(view, 0)
            pos = _HEADER_V2.size
            present = struct.unpack_from(f"<{n_present}I", view, pos)
            pos += 4 * n_present
        else:  # legacy v1: every page serialised, zero or not
            n_pages, glen, tlen = _HEADER_V1.unpack_from(view, 0)
            pos = _HEADER_V1.size
            present = tuple(range(n_pages))
        globals_snapshot = pickle.loads(view[pos : pos + glen])
        pos += glen
        table_snapshot = pickle.loads(view[pos : pos + tlen])
        pos += tlen
        pages: list[memoryview] = [ZERO_PAGE] * n_pages
        for i in present:
            pages[i] = view[pos : pos + PAGE_SIZE]
            pos += PAGE_SIZE
        return cls(definition, pages, globals_snapshot, table_snapshot)

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return len(self.frozen_pages) * PAGE_SIZE
