"""Proto-Faaslets: ahead-of-time snapshots with copy-on-write restore (§5.2).

A Proto-Faaslet captures a function's execution state — linear memory
(stack, heap, data), globals and function table — after user-defined
initialisation code has run. Restoring builds a new instance whose memory
*aliases* the snapshot's frozen pages copy-on-write, so the restore cost is
proportional to the page count (pointer copies), not the memory size; pages
are physically copied only when first written. This is what makes restores
take hundreds of microseconds instead of the hundreds of milliseconds a
container boot costs (Tab. 3, Fig. 10).

Snapshots are OS-independent plain bytes: :meth:`ProtoFaaslet.to_bytes` /
:meth:`from_bytes` serialise them for cross-host restore, the property that
distinguishes Proto-Faaslets from single-machine snapshotting systems like
SEUSS or Catalyzer.
"""

from __future__ import annotations

import pickle
import struct

from repro.telemetry import span
from repro.wasm.instance import GlobalInstance, Instance
from repro.wasm.memory import LinearMemory
from repro.wasm.types import PAGE_SIZE, Limits, MemoryType

from .faaslet import Faaslet, FunctionDefinition

_HEADER = struct.Struct("<III")  # page count, n globals blob len, table blob len


class SnapshotError(RuntimeError):
    """The Faaslet cannot be snapshotted in its current state."""


class ProtoFaaslet:
    """An initialised-execution-state snapshot for one function."""

    def __init__(
        self,
        definition: FunctionDefinition,
        frozen_pages: list[memoryview],
        globals_snapshot: list[tuple],
        table_snapshot: list[int | None] | None,
    ):
        self.definition = definition
        self.frozen_pages = frozen_pages
        self.globals_snapshot = globals_snapshot
        self.table_snapshot = table_snapshot
        #: Number of times this snapshot has been restored (metrics).
        self.restore_count = 0

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        definition: FunctionDefinition,
        env,
        init: "callable | str | None" = None,
    ) -> "ProtoFaaslet":
        """Run user-defined initialisation code in a fresh Faaslet and
        snapshot the result (§5.2).

        ``init`` may be the name of an exported guest function to run, a
        Python callable receiving the Faaslet, or ``None`` to snapshot the
        just-instantiated state.
        """
        faaslet = Faaslet(definition, env)
        if isinstance(init, str):
            faaslet.instance.invoke(init)
        elif callable(init):
            init(faaslet)
        return cls.capture_from(faaslet)

    @classmethod
    def capture_from(cls, faaslet: Faaslet) -> "ProtoFaaslet":
        """Snapshot an existing Faaslet's current execution state."""
        instance = faaslet.instance
        if faaslet.mapped_state_keys:
            raise SnapshotError(
                "cannot snapshot a Faaslet with mapped shared state regions"
            )
        if instance.memory is None:
            frozen: list[memoryview] = []
        else:
            frozen = instance.memory.freeze_pages()
        globals_snapshot = [
            (g.valtype, g.mutable, g.value) for g in instance.globals
        ]
        table_snapshot = None
        if instance.table is not None:
            for entry in instance.table:
                if isinstance(entry, tuple):
                    raise SnapshotError(
                        "cannot snapshot a Faaslet with dynamically linked "
                        "table entries"
                    )
            table_snapshot = list(instance.table)
        return cls(faaslet.definition, frozen, globals_snapshot, table_snapshot)

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def make_instance(
        self,
        imports: dict,
        fuel: int | None = None,
        tier: str | None = None,
    ) -> Instance:
        """Build a wasm instance from the snapshot (the restore fast path:
        no validation, no codegen, no data copies — COW page aliasing).

        The restored instance shares ``definition.compiled`` — and with it
        any closure-threaded code already attached to those functions — so
        restores never re-run codegen or re-threading."""
        with span(
            "snapshot.restore",
            function=self.definition.name,
            pages=len(self.frozen_pages),
        ):
            module = self.definition.module
            funcs: list = []
            for imp in module.imports:
                funcs.append(imports[(imp.module, imp.name)])
            funcs.extend(self.definition.compiled)
            memory = None
            if self.frozen_pages or module.memory is not None:
                memtype = MemoryType(
                    Limits(len(self.frozen_pages), self.definition.max_pages)
                )
                memory = LinearMemory.from_frozen_pages(self.frozen_pages, memtype)
            globals_ = [
                GlobalInstance(vt, mut, val) for vt, mut, val in self.globals_snapshot
            ]
            table = list(self.table_snapshot) if self.table_snapshot is not None else None
            self.restore_count += 1
            return Instance.from_parts(
                module, funcs, memory, globals_, table, fuel=fuel, tier=tier
            )

    def restore(
        self, env, fuel: int | None = None, tier: str | None = None
    ) -> Faaslet:
        """Spawn a fresh Faaslet from this snapshot."""
        return Faaslet(self.definition, env, proto=self, fuel=fuel, tier=tier)

    # ------------------------------------------------------------------
    # Cross-host serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise to OS-independent bytes for cross-host restores."""
        pages = b"".join(bytes(p) for p in self.frozen_pages)
        globals_blob = pickle.dumps(self.globals_snapshot)
        table_blob = pickle.dumps(self.table_snapshot)
        header = _HEADER.pack(
            len(self.frozen_pages), len(globals_blob), len(table_blob)
        )
        return header + globals_blob + table_blob + pages

    @classmethod
    def from_bytes(cls, definition: FunctionDefinition, data: bytes) -> "ProtoFaaslet":
        n_pages, glen, tlen = _HEADER.unpack_from(data, 0)
        pos = _HEADER.size
        globals_snapshot = pickle.loads(data[pos : pos + glen])
        pos += glen
        table_snapshot = pickle.loads(data[pos : pos + tlen])
        pos += tlen
        pages: list[memoryview] = []
        for i in range(n_pages):
            page = bytearray(data[pos : pos + PAGE_SIZE])
            pos += PAGE_SIZE
            pages.append(memoryview(page))
        return cls(definition, pages, globals_snapshot, table_snapshot)

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return len(self.frozen_pages) * PAGE_SIZE
