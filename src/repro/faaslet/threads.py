"""Intra-Faaslet guest threads: cooperative fork-join parallelism.

The threads proposal's execution model — shared linear memory, atomics,
futex wait/notify — needs an actual thread runtime behind it. This module
provides one that fits the reproduction's deterministic substrate:

* **One OS thread per guest thread, strictly one runnable at a time.**
  Each spawned guest thread gets a ``threading.Thread`` (so it owns a real
  Python stack and can be suspended mid-interpretation at arbitrary fuel
  depths), but an Event handshake guarantees exactly one guest thread ever
  executes between scheduler decisions. Execution is therefore fully
  deterministic — same schedule, same interleaving, every run, on both
  execution tiers — which is what the differential and linearizability
  tests rely on.

* **Fuel-fair round-robin via a per-Faaslet CPU cgroup.** The same
  :class:`~repro.faaslet.cgroup.CpuCgroup` arithmetic that arbitrates
  between Faaslets on a host arbitrates between guest threads inside one
  Faaslet: each thread is a share-1 member and runs for one fuel quantum
  per grant. Preemption reuses the fuel machinery — the instance's
  ``_refuel_hook`` fires exactly where ``OutOfFuel`` would have trapped,
  parks the thread and hands the quantum to the next runnable one.

* **Virtual-time accounting.** The host interpreter owns the GIL, so k
  guest threads cannot give a k-fold wall-clock speedup here; what the
  runtime *can* model faithfully is CPU time on k cores. Per round-robin
  rotation the virtual clock advances by the **maximum** fuel consumed by
  any thread in that rotation (they would have run concurrently), while
  ``total_fuel`` sums all of it; ``modeled_speedup`` = total / virtual is
  the quantity the Fig. 8 experiment reports for intra-Faaslet
  ``parallel_for`` regions. The parent's own fuel budget is charged the
  *virtual* cost of the region, consistent with a cgroup granting the
  Faaslet k hardware threads.

Futex semantics (``memory.atomic.wait32`` / ``notify``) live here too: a
waiting thread parks on its address until another thread notifies it, and
a region where every live thread is parked trips a deterministic deadlock
trap rather than hanging the host.
"""

from __future__ import annotations

import itertools
import logging
import threading

from repro.telemetry import MetricsRegistry
from repro.wasm.errors import Trap
from repro.wasm.futex import WAIT_NOT_EQUAL, WAIT_TIMED_OUT, WAIT_WOKEN
from repro.wasm.types import I32
from repro.wasm.values import MASK32

from .cgroup import CpuCgroup

logger = logging.getLogger(__name__)

#: Fuel quantum period for the intra-Faaslet thread cgroup. Much smaller
#: than the inter-Faaslet default: context switches are an Event handshake,
#: not a container migration, and finer quanta tighten the fairness bound.
THREAD_PERIOD_FUEL = 65_536

#: Fallback registry for runtimes created outside a cluster (benchmarks,
#: tests), mirroring the snapshot module's pattern.
_STANDALONE_METRICS = MetricsRegistry()

_thread_ids = itertools.count(1)


class GuestThreadError(Trap):
    """A guest-thread operation was invalid (bad spawn target, nesting...)."""


class GuestThreadDeadlock(Trap):
    """Every live guest thread is parked in ``wait32`` with nobody left to
    notify — the region can never make progress."""


class _GuestThread:
    """Book-keeping for one spawned guest thread."""

    __slots__ = (
        "tid", "name", "func_index", "arg", "state", "os_thread", "resume",
        "granted", "fuel_used", "exit_code", "trap", "poison",
    )

    def __init__(self, tid: int, func_index: int, arg: int):
        self.tid = tid
        self.name = f"guest-{tid}"
        self.func_index = func_index
        self.arg = arg
        #: "runnable" | "waiting" (parked on a futex) | "done"
        self.state = "runnable"
        self.os_thread: threading.Thread | None = None
        #: Set by the scheduler to hand this thread the CPU.
        self.resume = threading.Event()
        self.granted = 0
        self.fuel_used = 0
        self.exit_code = 0
        self.trap: Trap | None = None
        self.poison: Trap | None = None


class GuestThreadRuntime:
    """Scheduler + futex registry for one Faaslet's guest threads.

    Installs itself on the instance as ``_thread_runtime`` (read by the
    futex helpers in both tiers) and supplies the ``_refuel_hook`` that
    turns fuel exhaustion into preemption while a region is scheduled.
    """

    def __init__(
        self,
        instance,
        name: str = "faaslet",
        period_fuel: int = THREAD_PERIOD_FUEL,
        metrics: MetricsRegistry | None = None,
    ):
        self.inst = instance
        self.cgroup = CpuCgroup(f"{name}.threads", period_fuel=period_fuel)
        self.metrics = metrics if metrics is not None else _STANDALONE_METRICS
        self.threads: dict[int, _GuestThread] = {}
        self._order: list[_GuestThread] = []
        #: The guest thread currently holding the CPU (None = the parent).
        self._running: _GuestThread | None = None
        #: Child → scheduler doorbell (park, wait or completion).
        self._sched_event = threading.Event()
        self._futex: dict[int, list[_GuestThread]] = {}
        #: Σ fuel consumed by all guest threads (serial CPU work).
        self.total_fuel = 0
        #: Modeled parallel time: per rotation, max fuel among runners.
        self.virtual_fuel = 0
        self._rotation_max = 0
        self.threads_spawned = 0
        instance._thread_runtime = self

    # ------------------------------------------------------------------
    # Spawn / join (the host-call surface)
    # ------------------------------------------------------------------
    def spawn(self, elem_index: int, arg: int) -> int:
        """Start a guest thread running table entry ``elem_index`` with the
        single i32 argument ``arg``; returns its thread id."""
        if self._running is not None:
            raise GuestThreadError(
                "nested parallel regions are not supported: thread_spawn "
                "called from a guest thread"
            )
        inst = self.inst
        table = inst.table
        if table is None or not 0 <= elem_index < len(table):
            raise GuestThreadError(f"thread_spawn: bad table index {elem_index}")
        entry = table[elem_index]
        if entry is None or isinstance(entry, tuple):
            raise GuestThreadError(
                f"thread_spawn: table entry {elem_index} is not a local function"
            )
        ftype = inst.module.func_type(entry)
        if tuple(ftype.params) != (I32,) or tuple(ftype.results) not in ((), (I32,)):
            raise GuestThreadError(
                "thread_spawn: target must have type (i32) -> () or (i32) -> i32"
            )
        tid = next(_thread_ids)
        thread = _GuestThread(tid, entry, arg & MASK32)
        thread.os_thread = threading.Thread(
            target=self._runner, args=(thread,),
            name=f"{self.cgroup.name}.{thread.name}", daemon=True,
        )
        self.cgroup.add_member(thread.name)
        self.threads[tid] = thread
        self._order.append(thread)
        self.threads_spawned += 1
        self.metrics.counter("thread.spawned").inc()
        thread.os_thread.start()  # parks immediately on thread.resume
        return tid

    def join(self, tid: int) -> int:
        """Run the scheduler until thread ``tid`` completes; returns its
        exit code. A trap inside the thread re-raises here, in the parent."""
        thread = self.threads.get(tid)
        if thread is None:
            raise GuestThreadError(f"thread_join: unknown thread id {tid}")
        if thread.state != "done":
            if self._running is not None:
                raise GuestThreadError(
                    "thread_join called from a guest thread"
                )
            self._schedule(until=thread)
        if thread.trap is not None:
            raise thread.trap
        return thread.exit_code

    @property
    def live_threads(self) -> int:
        """Number of spawned threads that have not finished."""
        return sum(1 for t in self.threads.values() if t.state != "done")

    def stats(self) -> dict:
        """Fork-join accounting: serial vs modeled-parallel fuel."""
        return {
            "threads_spawned": self.threads_spawned,
            "total_fuel": self.total_fuel,
            "virtual_fuel": self.virtual_fuel,
            "modeled_speedup": (
                self.total_fuel / self.virtual_fuel if self.virtual_fuel else 1.0
            ),
        }

    # ------------------------------------------------------------------
    # The scheduler (runs on the parent's stack, inside thread_join)
    # ------------------------------------------------------------------
    def _schedule(self, until: _GuestThread) -> None:
        inst = self.inst
        saved_fuel = inst._fuel
        saved_hook = inst._refuel_hook
        inst._refuel_hook = self._refuel_hook
        virtual_before = self.virtual_fuel
        try:
            while until.state != "done":
                # One rotation: every currently-runnable thread gets one
                # quantum. The rotation's members would run concurrently
                # on real cores, so the virtual clock advances by the
                # rotation's *maximum* consumption, not its sum. A target
                # finishing mid-rotation doesn't cut the rotation short —
                # its peers were "running" alongside it either way.
                rotation = [t for t in self._order if t.state == "runnable"]
                if not rotation:
                    self._trip_deadlock()  # raises
                for thread in rotation:
                    if thread.state == "runnable":
                        self._run_quantum(thread)
                self._flush_rotation()
        finally:
            inst._refuel_hook = saved_hook
            # The region cost the Faaslet its *virtual* (parallel) time.
            virtual_cost = self.virtual_fuel - virtual_before
            if saved_fuel is None:
                inst._fuel = None
            else:
                inst._fuel = max(0, saved_fuel - virtual_cost)

    def _run_quantum(self, thread: _GuestThread) -> None:
        inst = self.inst
        quantum = self.cgroup.quantum_for(thread.name)
        thread.granted = quantum
        inst._fuel = quantum
        self._running = thread
        thread.resume.set()
        self._sched_event.wait()
        self._sched_event.clear()
        remaining = inst._fuel if inst._fuel is not None else 0
        consumed = max(0, thread.granted - remaining)
        thread.fuel_used += consumed
        self.total_fuel += consumed
        self.cgroup.charge(thread.name, consumed)
        if consumed > self._rotation_max:
            self._rotation_max = consumed

    def _flush_rotation(self) -> None:
        self.virtual_fuel += self._rotation_max
        self._rotation_max = 0

    def _park(self, thread: _GuestThread) -> None:
        """Yield the CPU back to the scheduler; returns on the next grant.
        Called on the guest thread's own OS thread."""
        self._running = None
        self._sched_event.set()
        thread.resume.wait()
        thread.resume.clear()
        if thread.poison is not None:
            raise thread.poison

    def _refuel_hook(self, inst) -> bool:
        """Quantum expiry → preemption point (installed while scheduled).

        The fuel machinery has already flushed the meters; parking here
        suspends the guest thread mid-interpretation and the scheduler
        replenishes ``inst._fuel`` before waking it.
        """
        thread = self._running
        if thread is None:
            return False  # the parent's own fuel ran out: a real trap
        self.cgroup.record_throttle(thread.name)
        self._park(thread)
        return True

    def _runner(self, thread: _GuestThread) -> None:
        thread.resume.wait()
        thread.resume.clear()
        try:
            if thread.poison is not None:
                raise thread.poison
            results = self.inst._call(thread.func_index, [thread.arg], 0)
            thread.exit_code = int(results[0]) & MASK32 if results else 0
        except Trap as trap:
            thread.trap = trap
        except BaseException:  # pragma: no cover - host bug containment
            logger.exception("guest thread %s crashed", thread.name)
            thread.trap = Trap(f"guest thread {thread.name} host error")
        finally:
            thread.state = "done"
            self._running = None
            self._sched_event.set()

    # ------------------------------------------------------------------
    # Futex surface (called by repro.wasm.futex from either tier)
    # ------------------------------------------------------------------
    def wait32(self, inst, addr: int, expected: int) -> int:
        self.metrics.counter("atomic.waits").inc()
        if inst.memory.load_int(addr, 4, False) != expected:
            return WAIT_NOT_EQUAL
        thread = self._running
        if thread is None:
            # The parent (or an unscheduled context) cannot block: an
            # immediate timeout keeps semantics deterministic.
            return WAIT_TIMED_OUT
        thread.state = "waiting"
        self._futex.setdefault(addr, []).append(thread)
        self._park(thread)
        return WAIT_WOKEN

    def notify(self, inst, addr: int, count: int) -> int:
        waiters = self._futex.get(addr)
        woken = 0
        while waiters and woken < count:
            thread = waiters.pop(0)
            thread.state = "runnable"
            woken += 1
        return woken

    def _trip_deadlock(self) -> None:
        """No runnable threads, the join target is not done: every path to
        progress is gone. Poison the parked threads so their OS threads
        unwind, then trap in the parent."""
        trap = GuestThreadDeadlock(
            "guest-thread deadlock: all live threads are parked in "
            "memory.atomic.wait32 with no thread left to notify"
        )
        parked = [
            t for t in self.threads.values() if t.state == "waiting"
        ]
        self._futex.clear()
        for thread in parked:
            thread.poison = trap
            thread.resume.set()
        for thread in parked:
            if thread.os_thread is not None:
                thread.os_thread.join()
        # The unwinding threads rang the doorbell; drop the stale signal so
        # a later region's first handshake doesn't return early.
        self._sched_event.clear()
        raise trap
