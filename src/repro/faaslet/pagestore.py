"""Content-addressed snapshot distribution (the Proto-Faaslet data plane).

The paper's scalability story (Tab. 3, Fig. 10) needs Proto-Faaslet
restores to be cheap *anywhere in the cluster*, but shipping the whole
snapshot for every cross-host restore makes migration cost O(snapshot
size). This module makes it O(delta):

* :class:`PageStore` — one per host: a reference-counted,
  content-addressed store of 64 KiB pages. Every snapshot resident on the
  host aliases pages out of this store, so two snapshots (or two versions
  of one function) that share content store it once. All-zero pages are
  never stored: :data:`~repro.wasm.memory.ZERO_DIGEST` is intrinsically
  resident, backed by the shared zero page.

* :class:`SnapshotRepository` — one per cluster (owned by the upload
  service / function registry): the authoritative page store plus the
  per-function :class:`~repro.faaslet.snapshot.SnapshotManifest` chain.
  Publishing a new snapshot version bumps the manifest and refcounts; the
  pages of the previous version that the new one still uses are shared,
  the rest are released.

* :class:`HostSnapshotCache` — the pull client each runtime instance owns.
  A restore is (1) one *metadata* round trip fetching the current
  manifest, then (2) at most one *page* round trip —
  ``pull_missing(digests)`` — returning a single buffer holding only the
  pages this host lacks. The buffer is sliced into the PageStore by
  memoryview (no per-page copies), so restore cost is proportional to the
  number of *missing* pages: a host already holding an earlier version of
  the function ships only the delta, and a fully-resident host ships zero
  pages in exactly the one metadata round trip.

Bytes-shipped, pages-shipped, dedup-hit and round-trip counters land in
the cluster metrics registry (``snapshot.*`` / ``pagestore.*`` series);
pulls are traced as ``snapshot.pull`` spans.
"""

from __future__ import annotations

import threading

from repro.telemetry import MetricsRegistry, span
from repro.wasm.memory import ZERO_DIGEST, ZERO_PAGE
from repro.wasm.types import PAGE_SIZE

from .snapshot import ProtoFaaslet, SnapshotManifest


def _unique_payload(digests) -> list[str]:
    """Unique non-zero digests in first-appearance order."""
    seen: set[str] = set()
    out: list[str] = []
    for digest in digests:
        if digest != ZERO_DIGEST and digest not in seen:
            seen.add(digest)
            out.append(digest)
    return out


class PageStore:
    """A host's content-addressed, reference-counted page store.

    Pages are keyed by digest and held as memoryviews — typically slices
    over pull buffers or aliases of frozen capture pages — never copied on
    the way in or out. Reference counts are per *snapshot retain*: each
    materialised snapshot version retains its unique payload digests once,
    and releasing the last retain evicts the page.
    """

    def __init__(self, host: str = "", metrics: MetricsRegistry | None = None):
        self.host = host
        # `is None`, not truthiness: an empty registry has len() == 0.
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._pages: dict[str, memoryview] = {}
        self._refs: dict[str, int] = {}
        self._lock = threading.Lock()
        self._dedup_hits = metrics.counter("pagestore.dedup_hits", host=host)
        self._stored = metrics.counter("pagestore.pages_stored", host=host)
        self._evicted = metrics.counter("pagestore.pages_evicted", host=host)

    # ------------------------------------------------------------------
    # Residency queries
    # ------------------------------------------------------------------
    def contains(self, digest: str) -> bool:
        if digest == ZERO_DIGEST:
            return True
        with self._lock:
            return digest in self._pages

    def missing(self, digests) -> list[str]:
        """The unique non-zero digests of ``digests`` not resident here —
        exactly what a delta pull must ship."""
        payload = _unique_payload(digests)
        with self._lock:
            return [d for d in payload if d not in self._pages]

    def coverage(self, digests) -> float:
        """Fraction of the unique payload pages already resident (1.0 for
        an all-zero or empty snapshot: nothing needs shipping)."""
        payload = _unique_payload(digests)
        if not payload:
            return 1.0
        with self._lock:
            resident = sum(1 for d in payload if d in self._pages)
        return resident / len(payload)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def insert(self, digest: str, view: memoryview) -> bool:
        """Store one page; returns False (a dedup hit) if already present."""
        if digest == ZERO_DIGEST:
            return False
        with self._lock:
            if digest in self._pages:
                self._dedup_hits.inc()
                return False
            self._pages[digest] = view
        self._stored.inc()
        return True

    def insert_buffer(self, digests: list[str], buffer) -> int:
        """Slice one pull buffer (``len(digests) * PAGE_SIZE`` bytes) into
        the store by memoryview — the single-buffer landing zone of the
        delta-pull protocol. Returns the number of pages newly stored."""
        view = memoryview(buffer)
        if len(view) != len(digests) * PAGE_SIZE:
            raise ValueError(
                f"pull buffer holds {len(view)} bytes, "
                f"expected {len(digests)} pages"
            )
        added = 0
        for i, digest in enumerate(digests):
            if self.insert(digest, view[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]):
                added += 1
        return added

    # ------------------------------------------------------------------
    # Refcount lifecycle
    # ------------------------------------------------------------------
    def retain(self, digests) -> None:
        """One snapshot now references these pages (unique payload only)."""
        with self._lock:
            for digest in _unique_payload(digests):
                self._refs[digest] = self._refs.get(digest, 0) + 1

    def release(self, digests) -> int:
        """Drop one snapshot's reference; evicts pages that hit zero refs.
        Returns the number of pages evicted."""
        evicted = 0
        with self._lock:
            for digest in _unique_payload(digests):
                refs = self._refs.get(digest, 0) - 1
                if refs > 0:
                    self._refs[digest] = refs
                else:
                    self._refs.pop(digest, None)
                    if self._pages.pop(digest, None) is not None:
                        evicted += 1
        if evicted:
            self._evicted.inc(evicted)
        return evicted

    def refcount(self, digest: str) -> int:
        with self._lock:
            return self._refs.get(digest, 0)

    def clear(self) -> None:
        """Drop everything (host restart: page cache dies with the host)."""
        with self._lock:
            self._pages.clear()
            self._refs.clear()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def view(self, digest: str) -> memoryview:
        if digest == ZERO_DIGEST:
            return ZERO_PAGE
        with self._lock:
            page = self._pages.get(digest)
        if page is None:
            raise KeyError(f"page {digest} not resident on {self.host!r}")
        return page

    def pages_for(self, digests) -> list[memoryview]:
        """The ordered page views for a manifest's digest list."""
        return [self.view(d) for d in digests]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident_pages(self) -> int:
        with self._lock:
            return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return self.resident_pages * PAGE_SIZE

    def stats(self) -> dict:
        with self._lock:
            resident = len(self._pages)
        return {
            "resident_pages": resident,
            "resident_bytes": resident * PAGE_SIZE,
            "pages_stored": self._stored.value,
            "pages_evicted": self._evicted.value,
            "dedup_hits": self._dedup_hits.value,
        }


class SnapshotRepository:
    """The cluster-side snapshot home (upload service, §5.2).

    Holds the authoritative :class:`PageStore` and the current manifest of
    every published function. Serves the two-step pull protocol:
    :meth:`manifest` (metadata) and :meth:`pull_missing` (one batched page
    round trip).
    """

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.store = PageStore(host="_repository", metrics=metrics)
        self._manifests: dict[str, SnapshotManifest] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def publish(self, name: str, proto: ProtoFaaslet) -> SnapshotManifest:
        """Publish ``proto`` as the next version of ``name``.

        Pages are ingested content-addressed (shared with every other
        snapshot that has identical content — including the previous
        version of this same function); the previous version's exclusive
        pages are released once the new manifest is in place.
        """
        digests = proto.page_digests
        with self._lock:
            previous = self._manifests.get(name)
            version = previous.version + 1 if previous is not None else 1
            manifest = proto.manifest(version)
        for digest, page in zip(digests, proto.frozen_pages):
            self.store.insert(digest, page)
        self.store.retain(digests)
        with self._lock:
            self._manifests[name] = manifest
        if previous is not None:
            self.store.release(previous.page_digests)
        proto.version = version
        return manifest

    # ------------------------------------------------------------------
    # The pull protocol (each method = one round trip)
    # ------------------------------------------------------------------
    def manifest(self, name: str) -> SnapshotManifest | None:
        """Metadata round trip: the current manifest, or None."""
        with self._lock:
            return self._manifests.get(name)

    def pull_missing(self, digests) -> tuple[list[str], bytearray]:
        """Page round trip: one buffer holding every requested page.

        Returns ``(order, buffer)`` where ``buffer`` is the requested
        pages back to back in ``order``. The caller slices the buffer into
        its PageStore by memoryview and must treat it as immutable."""
        order = [d for d in _unique_payload(digests) if self.store.contains(d)]
        buffer = bytearray(len(order) * PAGE_SIZE)
        view = memoryview(buffer)
        for i, digest in enumerate(order):
            view[i * PAGE_SIZE : (i + 1) * PAGE_SIZE] = self.store.view(digest)
        return order, buffer

    # ------------------------------------------------------------------
    def functions(self) -> list[str]:
        with self._lock:
            return sorted(self._manifests)

    def stats(self) -> dict:
        out = self.store.stats()
        out["functions"] = len(self._manifests)
        return out


class HostSnapshotCache:
    """One host's snapshot client: PageStore + delta-pull + proto cache.

    ``get_proto`` is the cold-start path: it fetches the current manifest
    (one metadata round trip), pulls only the pages the host's PageStore
    is missing (at most one page round trip), and materialises a
    Proto-Faaslet whose frozen pages alias the store. Repeat restores of
    an unchanged version are served from the in-memory proto cache with
    zero round trips; a version bump re-pulls only the delta.
    """

    def __init__(
        self,
        host: str,
        repository: SnapshotRepository,
        metrics: MetricsRegistry | None = None,
        on_residency=None,
    ):
        self.host = host
        self.repository = repository
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics = metrics
        self.store = PageStore(host=host, metrics=metrics)
        self._round_trips = metrics.counter("snapshot.round_trips", host=host)
        self._bytes_shipped = metrics.counter("snapshot.bytes_shipped", host=host)
        self._pages_shipped = metrics.counter("snapshot.pages_shipped", host=host)
        self._dedup_hits = metrics.counter("snapshot.dedup_hits", host=host)
        #: ``on_residency(function, host, coverage)`` — residency
        #: advertisement hook (the scheduler's locality signal).
        self._on_residency = on_residency
        self._protos: dict[str, ProtoFaaslet] = {}
        #: function -> manifest version already pre-placed, so repeated
        #: speculative warms of an unchanged snapshot cost nothing.
        self._warmed: dict[str, int] = {}
        self._preplaced_pages = metrics.counter(
            "prefetch.preplaced_pages", host=host
        )
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def get_proto(self, definition) -> ProtoFaaslet | None:
        """The restore entry point for ``definition`` on this host."""
        name = definition.name
        advertise = False
        with self._lock:
            cached = self._protos.get(name)
            with span("snapshot.pull", function=name, host=self.host) as sp:
                manifest = self.repository.manifest(name)
                self._round_trips.inc()
                if manifest is None:
                    sp.set_attr("outcome", "no-snapshot")
                    return None
                if cached is not None and cached.version == manifest.version:
                    sp.set_attr("outcome", "cached")
                    return cached
                payload = manifest.payload_digests()
                missing = self.store.missing(payload)
                self._dedup_hits.inc(len(payload) - len(missing))
                sp.set_attr("payload_pages", len(payload))
                sp.set_attr("missing_pages", len(missing))
                if missing:
                    order, buffer = self.repository.pull_missing(missing)
                    self._round_trips.inc()
                    self._bytes_shipped.inc(len(buffer))
                    self._pages_shipped.inc(len(order))
                    self.store.insert_buffer(order, buffer)
                    sp.set_attr("bytes_shipped", len(buffer))
                self.store.retain(manifest.page_digests)
                if cached is not None:
                    self.store.release(cached.page_digests)
                proto = ProtoFaaslet.from_manifest(
                    definition,
                    manifest,
                    self.store.pages_for(manifest.page_digests),
                    metrics=self._metrics,
                )
                self._protos[name] = proto
                sp.set_attr("outcome", "pulled")
                advertise = True
        if advertise and self._on_residency is not None:
            self._on_residency(name, self.host, self.store.coverage(
                manifest.page_digests
            ))
        return proto

    # ------------------------------------------------------------------
    def warm_pages(self, name: str) -> int:
        """Speculative page pre-placement (DESIGN.md §10): pull the
        current manifest's missing pages into this host's PageStore
        *without* materialising a proto. Returns pages newly inserted.

        The pages are inserted unpinned — a later real restore retains
        them (and finds nothing missing); until then they are ordinary
        unreferenced cache content. Purely a warm-up: correctness never
        depends on it, so any failure is simply ignored by callers.
        """
        advertise = False
        with self._lock:
            with span("prefetch.preplace", function=name, host=self.host) as sp:
                manifest = self.repository.manifest(name)
                self._round_trips.inc()
                if manifest is None:
                    return 0
                cached = self._protos.get(name)
                already = (
                    cached is not None and cached.version == manifest.version
                ) or self._warmed.get(name) == manifest.version
                if already:
                    sp.set_attr("outcome", "already-resident")
                    return 0
                payload = manifest.payload_digests()
                missing = self.store.missing(payload)
                inserted = 0
                if missing:
                    order, buffer = self.repository.pull_missing(missing)
                    self._round_trips.inc()
                    self._bytes_shipped.inc(len(buffer))
                    self._pages_shipped.inc(len(order))
                    inserted = self.store.insert_buffer(order, buffer)
                self._warmed[name] = manifest.version
                self._preplaced_pages.inc(inserted)
                sp.set_attr("pages", inserted)
                coverage = self.store.coverage(manifest.page_digests)
                advertise = True
        if advertise and self._on_residency is not None:
            self._on_residency(name, self.host, coverage)
        return inserted

    def drop(self, name: str) -> None:
        """Forget one function's materialised snapshot (releases pages)."""
        with self._lock:
            proto = self._protos.pop(name, None)
            if proto is not None:
                self.store.release(proto.page_digests)

    def clear(self) -> None:
        """Host restart: the page cache and proto cache died with it."""
        with self._lock:
            self._protos.clear()
            self._warmed.clear()
            self.store.clear()

    # ------------------------------------------------------------------
    def cached_functions(self) -> list[str]:
        with self._lock:
            return sorted(self._protos)

    def stats(self) -> dict:
        out = self.store.stats()
        with self._lock:
            out["snapshots_cached"] = len(self._protos)
        out["round_trips"] = self._round_trips.value
        out["bytes_shipped"] = self._bytes_shipped.value
        out["pages_shipped"] = self._pages_shipped.value
        out["pull_dedup_hits"] = self._dedup_hits.value
        return out
