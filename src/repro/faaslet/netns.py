"""Network isolation: namespaces, virtual interfaces and traffic shaping.

Each Faaslet gets its own network namespace holding one virtual interface
(§3.1). The interface enforces:

* **policy** — iptables-like rules; by default only client-side IPv4/IPv6
  TCP/UDP egress is allowed (matching the host interface's socket subset,
  Tab. 2 — e.g. ``AF_UNIX`` is rejected);
* **rate limits** — token-bucket shaping on ingress and egress (the paper's
  ``tc`` rules), with an injectable clock so both real executions and the
  discrete-event simulator can use the same shaper.

All traffic is accounted, feeding the network-transfer numbers of the
experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


class NetworkPolicyError(PermissionError):
    """The virtual interface's rules forbid the requested operation."""


#: Address families mirroring the POSIX constants used by guests.
AF_INET = 2
AF_INET6 = 10
AF_UNIX = 1

SOCK_STREAM = 1
SOCK_DGRAM = 2

_ALLOWED_FAMILIES = {AF_INET, AF_INET6}
_ALLOWED_TYPES = {SOCK_STREAM, SOCK_DGRAM}


class TokenBucket:
    """A token-bucket rate limiter with an explicit clock.

    ``consume`` returns the delay (seconds) the caller must wait before the
    transmission conceptually completes; it never blocks by itself, so the
    caller decides whether to sleep (real mode) or advance simulated time.
    """

    def __init__(self, rate_bytes_per_sec: float, burst_bytes: float):
        if rate_bytes_per_sec <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate_bytes_per_sec)
        self.burst = float(burst_bytes)
        self._tokens = float(burst_bytes)
        self._last = 0.0

    def consume(self, nbytes: int, now: float) -> float:
        """Consume ``nbytes``; returns the required delay in seconds."""
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
        self._tokens -= nbytes
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass
class InterfaceStats:
    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    rx_packets: int = 0
    dropped: int = 0


class VirtualInterface:
    """One Faaslet's virtual NIC with shaping and accounting."""

    def __init__(
        self,
        name: str,
        egress_rate: float = 125_000_000.0,  # 1 Gbps in bytes/sec
        ingress_rate: float = 125_000_000.0,
        burst: float = 1 << 20,
        clock=time.monotonic,
    ):
        self.name = name
        self.clock = clock
        self.egress = TokenBucket(egress_rate, burst)
        self.ingress = TokenBucket(ingress_rate, burst)
        self.stats = InterfaceStats()

    def transmit(self, nbytes: int) -> float:
        """Account an egress transmission; returns the shaping delay."""
        delay = self.egress.consume(nbytes, self.clock())
        self.stats.tx_bytes += nbytes
        self.stats.tx_packets += 1
        return delay

    def receive(self, nbytes: int) -> float:
        """Account an ingress transmission; returns the shaping delay."""
        delay = self.ingress.consume(nbytes, self.clock())
        self.stats.rx_bytes += nbytes
        self.stats.rx_packets += 1
        return delay


@dataclass
class _Socket:
    family: int
    type: int
    connected: tuple[str, int] | None = None
    closed: bool = False


class NetworkNamespace:
    """A Faaslet's private network namespace (§3.1).

    Owns the virtual interface and implements the client-side socket model
    of the host interface: ``socket``/``connect``/``bind``/``send``/``recv``
    against an *endpoint registry* — a mapping of ``(host, port)`` to a
    Python callable ``handler(request: bytes) -> bytes`` standing in for
    remote services (the external data stores and HTTP endpoints the paper
    mentions). Server-side listening is not part of the interface.
    """

    def __init__(
        self,
        name: str,
        interface: VirtualInterface | None = None,
        endpoints: dict[tuple[str, int], "callable"] | None = None,
    ):
        self.name = name
        self.interface = interface or VirtualInterface(f"veth-{name}")
        self.endpoints = endpoints if endpoints is not None else {}
        self._sockets: dict[int, _Socket] = {}
        self._responses: dict[int, bytearray] = {}
        self._next_fd = 3

    # ------------------------------------------------------------------
    def socket(self, family: int, sock_type: int) -> int:
        if family not in _ALLOWED_FAMILIES:
            raise NetworkPolicyError(
                f"address family {family} not permitted (client IPv4/IPv6 only)"
            )
        if sock_type not in _ALLOWED_TYPES:
            raise NetworkPolicyError(f"socket type {sock_type} not permitted")
        fd = self._next_fd
        self._next_fd += 1
        self._sockets[fd] = _Socket(family, sock_type)
        self._responses[fd] = bytearray()
        return fd

    def connect(self, fd: int, host: str, port: int) -> None:
        sock = self._get(fd)
        if (host, port) not in self.endpoints:
            raise ConnectionRefusedError(f"no endpoint at {host}:{port}")
        sock.connected = (host, port)

    def bind(self, fd: int, host: str, port: int) -> None:
        # Client-side bind is a no-op beyond validation (Tab. 2: client only).
        self._get(fd)

    def send(self, fd: int, data: bytes) -> tuple[int, float]:
        """Send to the connected endpoint; returns (bytes sent, shape delay).

        The endpoint's response is buffered for subsequent ``recv`` calls.
        """
        sock = self._get(fd)
        if sock.connected is None:
            raise OSError(f"socket {fd} is not connected")
        delay = self.interface.transmit(len(data))
        handler = self.endpoints[sock.connected]
        response = handler(bytes(data))
        if response:
            self._responses[fd].extend(response)
        return len(data), delay

    def recv(self, fd: int, max_bytes: int) -> tuple[bytes, float]:
        """Receive buffered response bytes; returns (data, shape delay)."""
        self._get(fd)
        buffer = self._responses[fd]
        data = bytes(buffer[:max_bytes])
        del buffer[:max_bytes]
        delay = self.interface.receive(len(data)) if data else 0.0
        return data, delay

    def close(self, fd: int) -> None:
        sock = self._sockets.pop(fd, None)
        if sock:
            sock.closed = True
        self._responses.pop(fd, None)

    def close_all(self) -> None:
        for fd in list(self._sockets):
            self.close(fd)

    def _get(self, fd: int) -> _Socket:
        sock = self._sockets.get(fd)
        if sock is None:
            raise OSError(f"bad socket descriptor {fd}")
        return sock
