"""Python reproduction of *Faasm: Lightweight Isolation for Efficient
Stateful Serverless Computing* (Shillaker & Pietzuch, USENIX ATC 2020).

Subpackages
-----------
``repro.wasm``
    From-scratch WebAssembly-like SFI virtual machine (linear memory,
    validator, interpreter, text assembler).
``repro.minilang``
    A small typed language compiled to ``repro.wasm`` modules (stand-in for
    the LLVM toolchain).
``repro.faaslet``
    The Faaslet isolation abstraction: shared memory regions, snapshots
    (Proto-Faaslets), cgroup-style CPU accounting, virtual NICs.
``repro.host``
    The Faaslet host interface of Tab. 2 (calls, state, POSIX/WASI subset).
``repro.state``
    Two-tier state: global KVS + local shared-memory tier, and DDOs.
``repro.runtime``
    The FAASM runtime: scheduler, registry, per-host instances, cluster.
``repro.baseline``
    Container/Knative-like baseline platform for comparison experiments.
``repro.sim``
    Discrete-event cluster simulator used by the paper-scale experiments.
``repro.apps``
    The evaluation applications (SGD, inference serving, matmul, no-op).
"""

__version__ = "0.1.0"
