"""Call records and the cluster-wide call registry.

Every function invocation gets a :class:`CallRecord` with a unique call id —
the value returned by ``chain_call`` and accepted by ``await_call`` /
``get_call_output`` (Tab. 2). The registry is the in-process stand-in for
the coordination the paper does over its message bus and global state.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, field


class CallStatus(enum.Enum):
    """Lifecycle states of a function invocation."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class CallRecord:
    call_id: int
    function: str
    input_data: bytes
    status: CallStatus = CallStatus.PENDING
    return_code: int | None = None
    output_data: bytes = b""
    host: str | None = None
    cold_start: bool = False
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def latency(self) -> float:
        """End-to-end latency in seconds (valid once finished)."""
        return self.finished_at - self.submitted_at


class CallRegistry:
    """Thread-safe registry of all calls in the cluster."""

    def __init__(self) -> None:
        self._calls: dict[int, CallRecord] = {}
        self._ids = itertools.count(1)
        self._mutex = threading.Lock()

    def create(self, function: str, input_data: bytes) -> CallRecord:
        record = CallRecord(
            next(self._ids), function, bytes(input_data), submitted_at=time.monotonic()
        )
        with self._mutex:
            self._calls[record.call_id] = record
        return record

    def get(self, call_id: int) -> CallRecord:
        with self._mutex:
            record = self._calls.get(call_id)
        if record is None:
            raise KeyError(f"unknown call id {call_id}")
        return record

    def mark_running(self, call_id: int, host: str, cold_start: bool) -> None:
        record = self.get(call_id)
        record.status = CallStatus.RUNNING
        record.host = host
        record.cold_start = cold_start
        record.started_at = time.monotonic()

    def complete(self, call_id: int, return_code: int, output: bytes) -> None:
        record = self.get(call_id)
        record.return_code = return_code
        record.output_data = bytes(output)
        record.finished_at = time.monotonic()
        record.status = (
            CallStatus.SUCCEEDED if return_code == 0 else CallStatus.FAILED
        )
        record.done.set()

    def fail(self, call_id: int, message: str = "") -> None:
        self.complete(call_id, 1, message.encode())

    def wait(self, call_id: int, timeout: float | None = None) -> int:
        """Block until the call finishes; returns its exit code."""
        record = self.get(call_id)
        if not record.done.wait(timeout):
            raise TimeoutError(f"call {call_id} did not finish in {timeout}s")
        assert record.return_code is not None
        return record.return_code

    def output(self, call_id: int) -> bytes:
        record = self.get(call_id)
        if not record.done.is_set():
            raise RuntimeError(f"call {call_id} has not finished")
        return record.output_data

    def all_records(self) -> list[CallRecord]:
        with self._mutex:
            return list(self._calls.values())
