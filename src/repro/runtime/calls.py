"""Call records and the cluster-wide invocation registry.

Every function invocation gets a :class:`CallRecord` with a unique call id —
the value returned by ``chain_call`` and accepted by ``await_call`` /
``get_call_output`` (Tab. 2). The registry is the in-process stand-in for
the coordination the paper does over its message bus and global state.

The registry is also the **fault-tolerant invocation plane**'s source of
truth: each delivery of a call to a host is an :class:`AttemptRecord`, and
the registry arbitrates an *attempt-claim protocol* so that duplicate
``ExecuteCall`` deliveries (a lossy/duplicating bus) and stale retries (a
host presumed dead that is merely slow) cannot double-execute a call:

* :meth:`InvocationRegistry.new_attempt` records a dispatch (host + the
  host's liveness epoch at send time);
* :meth:`InvocationRegistry.begin_attempt` is the executor's atomic claim —
  it succeeds at most once per attempt, and never while another attempt
  is running or after the call reached a terminal state;
* :meth:`InvocationRegistry.complete_attempt` applies a completion only if
  that attempt still owns the call (a crashed host's zombie thread cannot
  complete a call that has been re-queued elsewhere);
* :meth:`InvocationRegistry.mark_attempt_lost` /
  :meth:`InvocationRegistry.attempt_failed` park an attempt for the
  monitor's retry loop;
* :meth:`InvocationRegistry.fail_call` is the terminal ``CALL_FAILED``
  state: retries exhausted, with the per-attempt failure chain preserved.

Calls may carry an **idempotency key**: re-dispatching with a key the
registry has already seen returns the original record instead of creating
a second invocation.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, field


class CallStatus(enum.Enum):
    """Lifecycle states of a function invocation."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    #: Terminal infrastructure failure: every attempt was lost (dropped
    #: message, crashed host, unavailable state tier) and the retry budget
    #: is exhausted. Distinct from FAILED, which is the *function* exiting
    #: non-zero on a healthy host.
    CALL_FAILED = "call-failed"


#: Attempt lifecycle: ``sent`` (on the bus) -> ``running`` (claimed by an
#: executor) -> ``done``, or parked as ``lost`` (timeout / host death) or
#: ``failed`` (transient infrastructure error) for the retry loop.
ATTEMPT_SENT = "sent"
ATTEMPT_RUNNING = "running"
ATTEMPT_DONE = "done"
ATTEMPT_LOST = "lost"
ATTEMPT_FAILED = "failed"


#: Shared allocator guard for :class:`CompletionFlag`'s lazy event. Only
#: the *first* waiter on an unfinished call ever takes it, so it cannot
#: become a hot lock the way a per-record ``threading.Event`` is a hot
#: allocation (an Event is a Condition plus a Lock — ~3 µs per record,
#: which at 10⁵ queued calls is a third of a second of pure setup).
_FLAG_ALLOC_LOCK = threading.Lock()


class CompletionFlag:
    """Drop-in for the ``wait``/``set``/``is_set`` subset of
    :class:`threading.Event`, allocating the real event only when a
    thread actually blocks. Most calls in a bulk ingestion run are
    awaited via ``drain`` polling, never via ``done.wait``, so the
    common case is a plain boolean."""

    __slots__ = ("_flag", "_event")

    def __init__(self) -> None:
        self._flag = False
        self._event: threading.Event | None = None

    def is_set(self) -> bool:
        return self._flag

    def set(self) -> None:
        self._flag = True
        event = self._event
        if event is not None:
            event.set()

    def wait(self, timeout: float | None = None) -> bool:
        if self._flag:
            return True
        with _FLAG_ALLOC_LOCK:
            if self._event is None:
                self._event = threading.Event()
            event = self._event
        # Re-check after publishing the event: a setter that missed it
        # has already flipped the flag, and one that sees it will set it.
        if self._flag:
            return True
        return event.wait(timeout)


@dataclass
class AttemptRecord:
    """One dispatch of a call to a host."""

    number: int
    host: str
    #: The target host's liveness epoch at dispatch time; if the host's
    #: epoch has advanced, everything this attempt did died with it.
    epoch: int
    dispatched_at: float
    state: str = ATTEMPT_SENT
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Why the attempt ended up lost/failed (feeds the failure chain).
    reason: str = ""
    #: Monotonic time before which the monitor must not retry (backoff).
    retry_at: float = 0.0


@dataclass
class CallRecord:
    call_id: int
    function: str
    input_data: bytes
    status: CallStatus = CallStatus.PENDING
    return_code: int | None = None
    output_data: bytes = b""
    host: str | None = None
    cold_start: bool = False
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    idempotency_key: str | None = None
    attempts: list[AttemptRecord] = field(default_factory=list)
    #: Per-attempt failure reasons, newest last (set on CALL_FAILED).
    failure_chain: list[str] = field(default_factory=list)
    done: CompletionFlag = field(default_factory=CompletionFlag, repr=False)
    #: Guards this record's attempt list and state transitions. Per-record
    #: so N hosts completing N different calls never serialise on one
    #: registry-wide lock (the ingestion plane's de-locked hot path).
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def latency(self) -> float:
        """End-to-end latency in seconds (valid once finished)."""
        return self.finished_at - self.submitted_at

    @property
    def retries(self) -> int:
        """Dispatches beyond the first."""
        return max(0, len(self.attempts) - 1)

    @property
    def last_attempt(self) -> AttemptRecord | None:
        return self.attempts[-1] if self.attempts else None


class InvocationRegistry:
    """Thread-safe registry of all calls in the cluster."""

    def __init__(self) -> None:
        self._calls: dict[int, CallRecord] = {}
        self._by_key: dict[str, int] = {}
        self._ids = itertools.count(1)
        self._mutex = threading.Lock()

    def create(
        self,
        function: str,
        input_data: bytes,
        idempotency_key: str | None = None,
    ) -> CallRecord:
        record = CallRecord(
            next(self._ids),
            function,
            bytes(input_data),
            submitted_at=time.monotonic(),
            idempotency_key=idempotency_key,
        )
        with self._mutex:
            self._calls[record.call_id] = record
            if idempotency_key is not None:
                self._by_key[idempotency_key] = record.call_id
        return record

    def create_many(
        self, function: str, inputs: list[bytes]
    ) -> list["CallRecord"]:
        """Create one record per input with a single registry lock hold —
        the bulk front door's amortised version of :meth:`create`.

        Records (and their ``done`` events) are built outside the mutex:
        holding it through a thousand Event allocations would serialise
        against every concurrent completion."""
        now = time.monotonic()
        records = [
            CallRecord(
                next(self._ids),
                function,
                data if type(data) is bytes else bytes(data),
                submitted_at=now,
            )
            for data in inputs
        ]
        with self._mutex:
            self._calls.update(
                (record.call_id, record) for record in records
            )
        return records

    def create_or_get(
        self, function: str, input_data: bytes, idempotency_key: str | None
    ) -> tuple[CallRecord, bool]:
        """Create a call, or return the existing one for the idempotency
        key; the flag says whether a new record was created."""
        if idempotency_key is not None:
            with self._mutex:
                existing = self._by_key.get(idempotency_key)
                if existing is not None:
                    return self._calls[existing], False
        return self.create(function, input_data, idempotency_key), True

    def get(self, call_id: int) -> CallRecord:
        # Lock-free: dict reads are atomic under the GIL and records are
        # never removed, so a reader can never observe a broken table.
        record = self._calls.get(call_id)
        if record is None:
            raise KeyError(f"unknown call id {call_id}")
        return record

    def get_many(self, call_ids) -> list[CallRecord]:
        """Fetch several records at once (batch expansion); lock-free
        like :meth:`get`."""
        try:
            return [self._calls[call_id] for call_id in call_ids]
        except KeyError as exc:
            raise KeyError(f"unknown call id {exc.args[0]}") from None

    # ------------------------------------------------------------------
    # Attempt protocol
    # ------------------------------------------------------------------
    def new_attempt(self, call_id: int, host: str, epoch: int) -> AttemptRecord:
        """Record a dispatch of ``call_id`` to ``host``."""
        record = self.get(call_id)
        with record.lock:
            attempt = AttemptRecord(
                number=len(record.attempts),
                host=host,
                epoch=epoch,
                dispatched_at=time.monotonic(),
            )
            record.attempts.append(attempt)
        return attempt

    def new_attempts(
        self, specs: list[tuple["CallRecord", str, int]]
    ) -> list[AttemptRecord]:
        """Record a batch of dispatches under ONE mutex acquisition.

        ``specs`` is ``[(record, host, epoch), ...]`` — the ingestion
        plane's batched form of :meth:`new_attempt`, so a scheduling round
        of N calls pays one registry lock instead of N. Returns the
        attempt records in spec order.
        """
        now = time.monotonic()
        out: list[AttemptRecord] = []
        for record, host, epoch in specs:
            with record.lock:
                attempt = AttemptRecord(
                    number=len(record.attempts),
                    host=host,
                    epoch=epoch,
                    dispatched_at=now,
                )
                record.attempts.append(attempt)
            out.append(attempt)
        return out

    def begin_attempt(self, call_id: int, number: int, host: str) -> bool:
        """Atomically claim the call for execution of attempt ``number``.

        Returns False — and the executor must drop the delivery — when the
        call already finished, the attempt was already begun (a duplicate
        delivery), the attempt was already written off as lost, or another
        attempt currently owns the call.
        """
        record = self.get(call_id)
        with record.lock:
            if record.done.is_set():
                return False
            if number < 0 or number >= len(record.attempts):
                return False
            attempt = record.attempts[number]
            if attempt.state != ATTEMPT_SENT:
                return False
            if any(a.state == ATTEMPT_RUNNING for a in record.attempts):
                return False
            attempt.state = ATTEMPT_RUNNING
            attempt.started_at = time.monotonic()
        return True

    def complete_attempt(
        self, call_id: int, number: int, return_code: int, output: bytes
    ) -> bool:
        """Apply attempt ``number``'s completion if it still owns the call.

        A crashed host's attempts are marked lost before the call is
        re-queued; a zombie executor thread on that host completing late is
        rejected here, which is what makes retried execution safe.
        """
        record = self.get(call_id)
        with record.lock:
            if record.done.is_set():
                return False
            if number < 0 or number >= len(record.attempts):
                return False
            attempt = record.attempts[number]
            if attempt.state not in (ATTEMPT_RUNNING, ATTEMPT_SENT):
                return False
            attempt.state = ATTEMPT_DONE
            attempt.finished_at = time.monotonic()
            self._finish(record, return_code, output)
        return True

    def mark_attempt_lost(self, call_id: int, number: int, reason: str) -> bool:
        """Write an in-flight attempt off (timeout or host death); the call
        returns to PENDING for the monitor to re-queue."""
        record = self.get(call_id)
        with record.lock:
            if record.done.is_set():
                return False
            if number < 0 or number >= len(record.attempts):
                return False
            attempt = record.attempts[number]
            if attempt.state not in (ATTEMPT_SENT, ATTEMPT_RUNNING):
                return False
            attempt.state = ATTEMPT_LOST
            attempt.reason = reason
            attempt.finished_at = time.monotonic()
            record.status = CallStatus.PENDING
        return True

    def attempt_failed(self, call_id: int, number: int, reason: str) -> bool:
        """An executor hit a transient infrastructure error (e.g. the state
        tier was unavailable); park the attempt for a backed-off retry."""
        record = self.get(call_id)
        with record.lock:
            if record.done.is_set():
                return False
            if number < 0 or number >= len(record.attempts):
                return False
            attempt = record.attempts[number]
            if attempt.state not in (ATTEMPT_SENT, ATTEMPT_RUNNING):
                return False
            attempt.state = ATTEMPT_FAILED
            attempt.reason = reason
            attempt.finished_at = time.monotonic()
            record.status = CallStatus.PENDING
        return True

    def fail_call(self, call_id: int, chain: list[str] | None = None) -> bool:
        """Terminal CALL_FAILED: the retry budget is exhausted. The failure
        chain (one reason per attempt) is preserved on the record and in
        the call output."""
        record = self.get(call_id)
        with record.lock:
            if record.done.is_set():
                return False
            chain = list(chain) if chain is not None else [
                a.reason for a in record.attempts if a.reason
            ]
            record.failure_chain = chain
            record.return_code = 1
            record.output_data = ("CallFailed: " + "; ".join(chain)).encode()
            record.finished_at = time.monotonic()
            record.status = CallStatus.CALL_FAILED
            record.done.set()
        return True

    # ------------------------------------------------------------------
    # Legacy (attempt-less) lifecycle — used when the retry plane is off
    # and by direct-execution tests.
    # ------------------------------------------------------------------
    def mark_running(self, call_id: int, host: str, cold_start: bool) -> None:
        record = self.get(call_id)
        record.status = CallStatus.RUNNING
        record.host = host
        record.cold_start = cold_start
        record.started_at = time.monotonic()

    def complete(self, call_id: int, return_code: int, output: bytes) -> bool:
        """Finish a call (first completion wins; duplicates are no-ops)."""
        record = self.get(call_id)
        with record.lock:
            if record.done.is_set():
                return False
            self._finish(record, return_code, output)
        return True

    def _finish(self, record: CallRecord, return_code: int, output: bytes) -> None:
        """Terminal-state write; caller holds the mutex (or owns the record)."""
        record.return_code = return_code
        record.output_data = bytes(output)
        record.finished_at = time.monotonic()
        record.status = (
            CallStatus.SUCCEEDED if return_code == 0 else CallStatus.FAILED
        )
        record.done.set()

    def fail(self, call_id: int, message: str = "") -> None:
        self.complete(call_id, 1, message.encode())

    def wait(self, call_id: int, timeout: float | None = None) -> int:
        """Block until the call finishes; returns its exit code."""
        record = self.get(call_id)
        if not record.done.wait(timeout):
            raise TimeoutError(f"call {call_id} did not finish in {timeout}s")
        assert record.return_code is not None
        return record.return_code

    def output(self, call_id: int) -> bytes:
        record = self.get(call_id)
        if not record.done.is_set():
            raise RuntimeError(f"call {call_id} has not finished")
        return record.output_data

    def all_records(self) -> list[CallRecord]:
        with self._mutex:
            return list(self._calls.values())


#: Historic name, kept for existing imports.
CallRegistry = InvocationRegistry
