"""Reactive autoscaling against queue depth (DESIGN.md §11).

A background loop sizes the cluster to its backlog: when the undispatched
work per live host (bus queues + executor-pool backlogs + the ingestion
plane's admission backlog) exceeds the policy's high-water mark, hosts are
added — dead hosts are revived first, then fresh ones — and when the
cluster has been fully idle for a grace period, the highest-numbered live
host is gracefully retired through PR 4's liveness/eviction plane
(:meth:`FaasmCluster.retire_host`: drain, evict from the warm sets, then
end the liveness epoch so any raced straggler is re-queued, never
stranded).

Scale-up cadence is priced with the Fig. 10 **churn model**: bringing up a
host means cold-starting its Faaslet trees, so after growing by ``k``
hosts the loop holds off further growth for the time the configured
isolation mechanism needs to absorb that churn (`docker` ≈ seconds,
`faaslet` ≈ milliseconds, `proto` ≈ sub-millisecond). A Docker-priced
cluster therefore scales in cautious, widely-spaced steps while a
Proto-Faaslet one tracks bursts nearly instantaneously — Fig. 10's point,
recast as control-loop damping.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from dataclasses import dataclass

from repro.baseline import (
    docker_churn_model,
    faaslet_churn_model,
    proto_faaslet_churn_model,
)

logger = logging.getLogger(__name__)

_CHURN_MODELS = {
    "docker": docker_churn_model,
    "faaslet": faaslet_churn_model,
    "proto": proto_faaslet_churn_model,
}


@dataclass(frozen=True)
class AutoscalePolicy:
    """The reactive sizing contract."""

    min_hosts: int = 1
    max_hosts: int = 8
    #: Backlog per live host above which the cluster grows; the target the
    #: grow step sizes to.
    queue_high: int = 64
    #: How long the cluster must be completely idle (no backlog, nothing
    #: executing) before one host is retired.
    idle_grace_s: float = 0.5
    #: Control-loop tick.
    interval: float = 0.05
    #: Which Fig. 10 churn model prices scale-up cadence:
    #: "docker" | "faaslet" | "proto".
    churn: str = "proto"
    #: Per-retire drain budget.
    retire_timeout_s: float = 5.0


class Autoscaler:
    """Grows/shrinks a cluster's hosts against its queue depth."""

    def __init__(self, cluster, policy: AutoscalePolicy | None = None):
        self.cluster = cluster
        self.policy = policy if policy is not None else AutoscalePolicy()
        try:
            self.churn_model = _CHURN_MODELS[self.policy.churn]()
        except KeyError:
            raise ValueError(
                f"unknown churn model {self.policy.churn!r}; "
                f"expected one of {sorted(_CHURN_MODELS)}"
            ) from None
        #: Scale decisions, for tests and the CLI:
        #: ``{"action", "hosts", "backlog", "live", "churn_cost_s"}``.
        self.events: list[dict] = []
        self._cooldown_until = 0.0
        self._idle_since: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        cluster.autoscaler = self

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="autoscaler"
        )
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.policy.interval):
            try:
                self.tick()
            except Exception:  # pragma: no cover — the loop must survive
                logger.exception("autoscaler tick failed")

    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Undispatched work: bus queues + executor pools + admission."""
        depths = self.cluster.bus.update_queue_gauges()
        total = sum(depths.values())
        total += sum(i.pool_backlog() for i in self.cluster.instances)
        plane = getattr(self.cluster, "_ingest", None)
        if plane is not None:
            total += plane.admission.backlog()
        return total

    def tick(self, now: float | None = None) -> str:
        """One control step (callable directly in tests); returns the
        action taken: "up", "down", or "hold"."""
        now = time.monotonic() if now is None else now
        policy = self.policy
        backlog = self.backlog()
        live = [
            i for i in self.cluster.instances
            if i.alive and not i.draining
        ]
        metrics = self.cluster.telemetry.metrics
        metrics.gauge("cluster.hosts_live").set(len(live))
        metrics.gauge("cluster.backlog").set(backlog)

        if (
            backlog > policy.queue_high * len(live)
            and len(live) < policy.max_hosts
            and now >= self._cooldown_until
        ):
            desired = math.ceil(backlog / policy.queue_high)
            grow = min(desired, policy.max_hosts) - len(live)
            if grow > 0:
                added = self.cluster.add_host(grow)
                # Churn-priced damping: hold off until the isolation
                # mechanism has plausibly absorbed this start burst.
                start_rate = (
                    len(added) * self.cluster._capacity
                ) / max(policy.interval, 1e-3)
                churn_cost = self.churn_model.latency_at_rate(start_rate)
                self._cooldown_until = now + churn_cost
                self._idle_since = None
                self.events.append({
                    "action": "up",
                    "hosts": added,
                    "backlog": backlog,
                    "live": len(live) + len(added),
                    "churn_cost_s": churn_cost,
                })
                return "up"

        if backlog == 0 and all(i.executing() == 0 for i in live):
            if self._idle_since is None:
                self._idle_since = now
            elif (
                now - self._idle_since >= policy.idle_grace_s
                and len(live) > policy.min_hosts
            ):
                victim = max(
                    live, key=lambda i: int(i.host.rsplit("-", 1)[-1])
                )
                if self.cluster.retire_host(
                    victim.host, timeout=policy.retire_timeout_s
                ):
                    self._idle_since = now
                    self.events.append({
                        "action": "down",
                        "hosts": [victim.host],
                        "backlog": backlog,
                        "live": len(live) - 1,
                        "churn_cost_s": 0.0,
                    })
                    return "down"
        else:
            self._idle_since = None
        return "hold"
