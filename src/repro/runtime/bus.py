"""The message bus (Fig. 1/Fig. 5).

Faaslets and runtime instances communicate through per-host queues: the
bus carries function-execution requests (including work shared between
hosts by the scheduler, Fig. 5's "sharing queue") and shutdown signals.
Each runtime instance runs a dispatcher that drains its queue and executes
calls on worker threads.

Telemetry rides the bus two ways: delivery counters live in a
:class:`~repro.telemetry.metrics.MetricsRegistry` (``BusStats`` is a thin
view over them), and every :class:`ExecuteCall` can carry a **trace
context** (:data:`repro.telemetry.trace.Wire`) so the receiving host's
spans attach to the sender's trace — the in-process analogue of trace
headers on a cross-host RPC.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass

from repro.telemetry import MetricsRegistry


@dataclass(frozen=True)
class ExecuteCall:
    """Run the call with this id on the receiving host."""

    call_id: int
    function: str
    #: Host that made the scheduling decision (for metrics/debugging).
    origin: str | None = None
    #: Whether this message crossed hosts (work sharing, Fig. 5).
    shared: bool = False
    #: Propagated trace context: (trace_id, parent span id, sampled,
    #: sender perf_counter timestamp), or None when tracing is off.
    trace: tuple | None = None
    #: Which dispatch of the call this delivery is (the invocation plane's
    #: attempt number); -1 means unmanaged (retry plane disabled).
    attempt: int = -1
    #: Push-invalidate hints piggybacked from the sender's local tier
    #: (DESIGN.md §10): per key, the latest global write version the
    #: sender knows plus its recent push chain, so the receiving host can
    #: skip or delta-pull its forced pulls. None when delivery is off.
    invalidate: tuple | None = None


@dataclass(frozen=True)
class Shutdown:
    """Stop the receiving dispatcher."""


class BusStats:
    """Delivery counters — a view over the bus's metrics registry, kept
    so existing ``bus.stats.sent`` consumers are unaffected."""

    def __init__(self, metrics: MetricsRegistry):
        self._sent = metrics.counter("bus.messages_sent")
        self._shared = metrics.counter("bus.messages_shared")

    @property
    def sent(self) -> int:
        return self._sent.value

    @property
    def shared(self) -> int:
        return self._shared.value

    def record(self, message) -> None:
        self._sent.inc()
        if isinstance(message, ExecuteCall) and message.shared:
            self._shared.inc()

    def __repr__(self) -> str:  # keeps the old dataclass-ish repr
        return f"BusStats(sent={self.sent}, shared={self.shared})"


class MessageBus:
    """Per-host FIFO queues with simple delivery accounting."""

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._queues: dict[str, "queue.Queue"] = {}
        self._mutex = threading.Lock()
        # `is None`, not truthiness: an empty registry has len() == 0.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = BusStats(self.metrics)

    def register(self, host: str) -> None:
        with self._mutex:
            if host in self._queues:
                raise ValueError(f"host {host!r} already registered")
            self._queues[host] = queue.Queue()

    def deregister(self, host: str) -> None:
        """Remove a host's queue (undelivered messages are discarded);
        subsequent sends/receives for the host raise ``KeyError``."""
        with self._mutex:
            if host not in self._queues:
                raise KeyError(f"unknown bus endpoint {host!r}")
            del self._queues[host]

    def _queue_for(self, host: str) -> "queue.Queue":
        # Deliberately *never* auto-creates a queue: a typo'd or
        # deregistered host name must surface as KeyError, not as a
        # silently-buffered message no dispatcher will ever drain.
        with self._mutex:
            q = self._queues.get(host)
        if q is None:
            raise KeyError(f"unknown bus endpoint {host!r}")
        return q

    def send(self, host: str, message) -> None:
        self._queue_for(host).put(message)
        self.stats.record(message)

    def receive(self, host: str, timeout: float | None = None):
        """Blocking receive; returns None on timeout."""
        try:
            return self._queue_for(host).get(timeout=timeout)
        except queue.Empty:
            return None

    def pending(self, host: str) -> int:
        return self._queue_for(host).qsize()

    def hosts(self) -> list[str]:
        with self._mutex:
            return sorted(self._queues)
