"""The message bus (Fig. 1/Fig. 5).

Faaslets and runtime instances communicate through per-host queues: the
bus carries function-execution requests (including work shared between
hosts by the scheduler, Fig. 5's "sharing queue") and shutdown signals.
Each runtime instance runs a dispatcher that drains its queue and executes
calls on worker threads.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class ExecuteCall:
    """Run the call with this id on the receiving host."""

    call_id: int
    function: str
    #: Host that made the scheduling decision (for metrics/debugging).
    origin: str | None = None
    #: Whether this message crossed hosts (work sharing, Fig. 5).
    shared: bool = False


@dataclass(frozen=True)
class Shutdown:
    """Stop the receiving dispatcher."""


@dataclass
class BusStats:
    """Delivery counters; mutated only under the bus's stats lock."""

    sent: int = 0
    shared: int = 0


class MessageBus:
    """Per-host FIFO queues with simple delivery accounting."""

    def __init__(self) -> None:
        self._queues: dict[str, "queue.Queue"] = {}
        self._mutex = threading.Lock()
        self._stats_mutex = threading.Lock()
        self.stats = BusStats()

    def register(self, host: str) -> None:
        with self._mutex:
            if host in self._queues:
                raise ValueError(f"host {host!r} already registered")
            self._queues[host] = queue.Queue()

    def _queue_for(self, host: str) -> "queue.Queue":
        with self._mutex:
            q = self._queues.get(host)
        if q is None:
            raise KeyError(f"unknown bus endpoint {host!r}")
        return q

    def send(self, host: str, message) -> None:
        self._queue_for(host).put(message)
        with self._stats_mutex:
            self.stats.sent += 1
            if isinstance(message, ExecuteCall) and message.shared:
                self.stats.shared += 1

    def receive(self, host: str, timeout: float | None = None):
        """Blocking receive; returns None on timeout."""
        try:
            return self._queue_for(host).get(timeout=timeout)
        except queue.Empty:
            return None

    def pending(self, host: str) -> int:
        return self._queue_for(host).qsize()

    def hosts(self) -> list[str]:
        with self._mutex:
            return sorted(self._queues)
