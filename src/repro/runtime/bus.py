"""The message bus (Fig. 1/Fig. 5).

Faaslets and runtime instances communicate through per-host queues: the
bus carries function-execution requests (including work shared between
hosts by the scheduler, Fig. 5's "sharing queue") and shutdown signals.
Each runtime instance runs a dispatcher that drains its queue and executes
calls on worker threads.

Two message shapes carry work. :class:`ExecuteCall` is the historic
one-call-per-message path; :class:`ExecuteBatch` is the ingestion plane's
batched form — one message carrying many placement-decided calls for one
function, enqueued with :meth:`MessageBus.send_many` under a **single**
lock acquisition per host and executed on the receiving host's bounded
worker pool instead of a thread per call. At high arrival rates the
per-message lock/notify tax is what the dispatch hot path spends most of
its time on, so batching here is a large part of the ingestion speedup.

Telemetry rides the bus two ways: delivery counters live in a
:class:`~repro.telemetry.metrics.MetricsRegistry` (``BusStats`` is a thin
view over them), and every :class:`ExecuteCall` can carry a **trace
context** (:data:`repro.telemetry.trace.Wire`) so the receiving host's
spans attach to the sender's trace — the in-process analogue of trace
headers on a cross-host RPC. Per-host queue depths are exported as
``bus.queue_depth{host=}`` gauges by :meth:`MessageBus.update_queue_gauges`
(refreshed lazily by the autoscaler, ``repro top`` and metric snapshots
rather than on every send, keeping the hot path gauge-free).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.telemetry import MetricsRegistry


@dataclass(frozen=True)
class ExecuteCall:
    """Run the call with this id on the receiving host."""

    call_id: int
    function: str
    #: Host that made the scheduling decision (for metrics/debugging).
    origin: str | None = None
    #: Whether this message crossed hosts (work sharing, Fig. 5).
    shared: bool = False
    #: Propagated trace context: (trace_id, parent span id, sampled,
    #: sender perf_counter timestamp), or None when tracing is off.
    trace: tuple | None = None
    #: Which dispatch of the call this delivery is (the invocation plane's
    #: attempt number); -1 means unmanaged (retry plane disabled).
    attempt: int = -1
    #: Push-invalidate hints piggybacked from the sender's local tier
    #: (DESIGN.md §10): per key, the latest global write version the
    #: sender knows plus its recent push chain, so the receiving host can
    #: skip or delta-pull its forced pulls. None when delivery is off.
    invalidate: tuple | None = None


@dataclass(frozen=True)
class ExecuteBatch:
    """Run a batch of placement-decided calls of one function.

    The ingestion plane's wire format (DESIGN.md §11): ``items`` is a
    tuple of ``(call_id, attempt_number)`` pairs, all for ``function``,
    all placed on the receiving host by one batched scheduling decision.
    The receiver expands the batch into per-call execution on its worker
    pool; every item still runs the full attempt-claim protocol, so
    batching changes *how many lock acquisitions and threads* the calls
    cost, never their exactly-once semantics. Chaos fault decisions are
    taken per item (identity-hashed on the call id), so a batched call
    is dropped/duplicated/delayed exactly when its per-call dispatch
    would have been.
    """

    function: str
    #: ((call_id, attempt_number), ...); attempt -1 means unmanaged.
    items: tuple
    origin: str | None = None
    #: Whether this batch crossed hosts (placement on a peer).
    shared: bool = False

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True)
class Shutdown:
    """Stop the receiving dispatcher."""


class BusStats:
    """Delivery counters — a view over the bus's metrics registry, kept
    so existing ``bus.stats.sent`` consumers are unaffected. Batches
    count once as a message and once per carried call, so ``sent`` stays
    comparable across the per-call and batched dispatch planes."""

    def __init__(self, metrics: MetricsRegistry):
        self._sent = metrics.counter("bus.messages_sent")
        self._shared = metrics.counter("bus.messages_shared")
        self._batches = metrics.counter("bus.batches_sent")
        self._batched_calls = metrics.counter("bus.batched_calls")

    @property
    def sent(self) -> int:
        return self._sent.value

    @property
    def shared(self) -> int:
        return self._shared.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def batched_calls(self) -> int:
        return self._batched_calls.value

    def record(self, message) -> None:
        self._sent.inc()
        if isinstance(message, ExecuteCall):
            if message.shared:
                self._shared.inc()
        elif isinstance(message, ExecuteBatch):
            self._batches.inc()
            self._batched_calls.inc(len(message.items))
            if message.shared:
                self._shared.inc()

    def record_many(self, messages) -> None:
        """Batched accounting for :meth:`MessageBus.send_many`."""
        for message in messages:
            self.record(message)

    def __repr__(self) -> str:  # keeps the old dataclass-ish repr
        return f"BusStats(sent={self.sent}, shared={self.shared})"


class _HostQueue:
    """One host's FIFO: a deque under a condition variable.

    ``queue.Queue`` acquires its mutex once per ``put``; this queue adds
    :meth:`put_many`, which appends a whole batch and wakes the consumer
    under **one** acquisition — the primitive ``MessageBus.send_many``
    needs for the ingestion hot path.
    """

    __slots__ = ("_items", "_cv")

    def __init__(self) -> None:
        self._items: deque = deque()
        self._cv = threading.Condition(threading.Lock())

    def put(self, item) -> None:
        with self._cv:
            self._items.append(item)
            self._cv.notify()

    def put_many(self, items) -> None:
        with self._cv:
            self._items.extend(items)
            self._cv.notify()

    def get(self, timeout: float | None = None):
        """Blocking pop; returns None on timeout."""
        with self._cv:
            while not self._items:
                if not self._cv.wait(timeout):
                    return None
            return self._items.popleft()

    def qsize(self) -> int:
        with self._cv:
            return len(self._items)


class MessageBus:
    """Per-host FIFO queues with simple delivery accounting."""

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._queues: dict[str, _HostQueue] = {}
        self._mutex = threading.Lock()
        # `is None`, not truthiness: an empty registry has len() == 0.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = BusStats(self.metrics)

    def register(self, host: str) -> None:
        with self._mutex:
            if host in self._queues:
                raise ValueError(f"host {host!r} already registered")
            self._queues[host] = _HostQueue()

    def deregister(self, host: str) -> None:
        """Remove a host's queue (undelivered messages are discarded);
        subsequent sends/receives for the host raise ``KeyError``."""
        with self._mutex:
            if host not in self._queues:
                raise KeyError(f"unknown bus endpoint {host!r}")
            del self._queues[host]

    def _queue_for(self, host: str) -> _HostQueue:
        # Deliberately *never* auto-creates a queue: a typo'd or
        # deregistered host name must surface as KeyError, not as a
        # silently-buffered message no dispatcher will ever drain.
        with self._mutex:
            q = self._queues.get(host)
        if q is None:
            raise KeyError(f"unknown bus endpoint {host!r}")
        return q

    def send(self, host: str, message) -> None:
        self._queue_for(host).put(message)
        self.stats.record(message)

    def send_many(self, host: str, messages) -> None:
        """Enqueue a batch for ``host`` under ONE queue-lock acquisition.

        The ingestion dispatcher's path: a scheduling round that produced
        several messages for the same host (e.g. per-function
        :class:`ExecuteBatch` chunks) pays one lock/notify instead of one
        per message.
        """
        messages = list(messages)
        if not messages:
            return
        self._queue_for(host).put_many(messages)
        self.stats.record_many(messages)

    def receive(self, host: str, timeout: float | None = None):
        """Blocking receive; returns None on timeout."""
        return self._queue_for(host).get(timeout=timeout)

    def pending(self, host: str) -> int:
        return self._queue_for(host).qsize()

    def total_pending(self) -> int:
        """Undelivered messages across every host queue (a snapshot)."""
        with self._mutex:
            queues = list(self._queues.values())
        return sum(q.qsize() for q in queues)

    def update_queue_gauges(self) -> dict[str, int]:
        """Refresh the ``bus.queue_depth{host=}`` gauges from the current
        queue sizes and return the depths. Called lazily (autoscaler scan,
        ``repro top`` frames, metric snapshots) so the send path never
        pays for gauge upkeep."""
        with self._mutex:
            queues = dict(self._queues)
        depths = {host: q.qsize() for host, q in queues.items()}
        for host, depth in depths.items():
            self.metrics.gauge("bus.queue_depth", host=host).set(depth)
        return depths

    def hosts(self) -> list[str]:
        with self._mutex:
            return sorted(self._queues)
