"""Host-native Python guests: the CPython-workload execution path.

The paper runs dynamic-language workloads by compiling CPython itself to
WebAssembly and executing it inside a Faaslet (§6.4). Reproducing that here
would mean interpreting CPython bytecode inside a Python-hosted wasm
interpreter — computationally impossible — so Python functions run as host
code, but *every* effect they have on the world flows through the same
surfaces a wasm guest uses: input/output byte arrays, ``chain``/``await``,
and the two-tier state API. That keeps the systems behaviour (state
movement, chaining, scheduling) identical while substituting the compute
substrate; DESIGN.md §1 records the substitution.
"""

from __future__ import annotations

import pickle

from repro.state.api import StateAPI
from repro.state.ddo import (
    DistributedCounter,
    DistributedDict,
    DistributedList,
    ImmutableValue,
    MatrixReadOnly,
    SparseMatrixReadOnly,
    VectorAsync,
)


class PythonCallContext:
    """The capabilities a Python guest sees — mirroring Tab. 2."""

    def __init__(self, env, input_data: bytes):
        self._env = env
        self._input = bytes(input_data)
        self._output = bytearray()

    # -- call I/O -----------------------------------------------------------
    def input(self) -> bytes:
        """Tab. 2 ``read_call_input``."""
        return self._input

    def input_object(self):
        """Convenience: unpickle the input payload."""
        return pickle.loads(self._input) if self._input else None

    def write_output(self, data: bytes) -> None:
        """Tab. 2 ``write_call_output``."""
        self._output += data

    def write_output_object(self, obj) -> None:
        self._output += pickle.dumps(obj)

    @property
    def output(self) -> bytes:
        return bytes(self._output)

    # -- chaining -------------------------------------------------------------
    def chain(self, name: str, payload: bytes = b"") -> int:
        """Tab. 2 ``chain_call``."""
        return self._env.chain_call(name, payload)

    def chain_object(self, name: str, obj) -> int:
        return self.chain(name, pickle.dumps(obj))

    def await_call(self, call_id: int) -> int:
        return self._env.await_call(call_id)

    def await_all(self, call_ids) -> list[int]:
        """The two-loop chain/await pattern of Listing 1, packaged."""
        return [self._env.await_call(cid) for cid in call_ids]

    def call_output(self, call_id: int) -> bytes:
        return self._env.get_call_output(call_id)

    def call_output_object(self, call_id: int):
        data = self._env.get_call_output(call_id)
        return pickle.loads(data) if data else None

    # -- state ------------------------------------------------------------------
    @property
    def state(self) -> StateAPI:
        return self._env.state

    # DDO constructors bound to this host's state API.
    def vector_async(self, key: str, length: int) -> VectorAsync:
        return VectorAsync(self.state, key, length)

    def matrix_read_only(self, key: str) -> MatrixReadOnly:
        return MatrixReadOnly(self.state, key)

    def sparse_matrix_read_only(self, key: str) -> SparseMatrixReadOnly:
        return SparseMatrixReadOnly(self.state, key)

    def distributed_dict(self, key: str) -> DistributedDict:
        return DistributedDict(self.state, key)

    def distributed_counter(self, key: str) -> DistributedCounter:
        return DistributedCounter(self.state, key)

    def distributed_list(self, key: str) -> DistributedList:
        return DistributedList(self.state, key)

    def immutable_value(self, key: str) -> ImmutableValue:
        return ImmutableValue(self.state, key)

    # -- misc ------------------------------------------------------------------
    def time_ns(self) -> int:
        return self._env.current_time_ns()

    @property
    def host(self) -> str:
        return self._env.state.tier.host
