"""The invocation monitor: timeouts, host-death detection, re-dispatch.

The paper's design (Fig. 5) assumes hosts and the message bus fail
independently of the callers that submitted work. This module is the
cluster's recovery loop: a daemon thread that watches every in-flight
call's latest :class:`~repro.runtime.calls.AttemptRecord` and

* writes an attempt off immediately when its target host died (the host's
  liveness epoch advanced past the one recorded at dispatch) — the
  re-queue path for a crashed host's in-flight calls;
* writes an attempt off when it exceeds the per-attempt timeout (a dropped
  or endlessly delayed ``ExecuteCall``);
* re-dispatches written-off attempts with capped exponential backoff and
  jitter, up to :attr:`RetryPolicy.max_attempts`;
* declares the terminal ``CALL_FAILED`` state — with the per-attempt
  failure chain — once the budget is spent.

The monitor never executes anything itself; re-dispatch goes back through
the cluster's normal schedule-and-send path (under a ``call.retry`` span,
counted in the ``call.retries`` metric), so retried calls are placed with
current warm-set and liveness information.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from dataclasses import dataclass

from .calls import ATTEMPT_FAILED, ATTEMPT_LOST, ATTEMPT_RUNNING, ATTEMPT_SENT

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RetryPolicy:
    """How the invocation plane retries lost work."""

    #: Total dispatches per call (first attempt included).
    max_attempts: int = 4
    #: Seconds an attempt may stay *undelivered* (no executor claimed it)
    #: before its message is presumed lost. Claimed attempts are never
    #: timed out — only host death writes those off.
    attempt_timeout: float = 15.0
    #: Exponential backoff: ``min(max_delay, base_delay * 2**n)``.
    base_delay: float = 0.05
    max_delay: float = 1.0
    #: Multiplicative jitter in [0, jitter] added to each delay.
    jitter: float = 0.2
    #: With ``enabled=False`` the cluster runs the legacy fire-and-forget
    #: plane: no attempt records, no monitor (the overhead baseline).
    enabled: bool = True
    #: Extra time a SENT attempt is granted past ``attempt_timeout`` while
    #: its target host is alive but *backlogged* (non-empty bus queue or
    #: executor pool). Under the ingestion plane, deep queues are the
    #: normal open-loop condition, not evidence of loss — without this
    #: grace a 10⁵-call burst would trip a retry storm of calls that are
    #: merely waiting their turn. A genuinely dropped message still times
    #: out once the backlog clears (or after the grace, whichever first).
    backlog_grace: float = 30.0

    @classmethod
    def off(cls) -> "RetryPolicy":
        return cls(enabled=False)

    def backoff(self, attempt_number: int, rng: random.Random) -> float:
        delay = min(self.max_delay, self.base_delay * (2 ** attempt_number))
        return delay * (1.0 + self.jitter * rng.random())


class InvocationMonitor:
    """Background watchdog over a cluster's in-flight calls."""

    def __init__(
        self,
        cluster,
        policy: RetryPolicy,
        interval: float = 0.02,
        rng: random.Random | None = None,
    ):
        self.cluster = cluster
        self.policy = policy
        self.interval = interval
        self.rng = rng or random.Random()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="invocation-monitor"
        )
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scan()
            except Exception:  # pragma: no cover - the watchdog must survive
                logger.exception("invocation monitor scan failed")

    def scan(self, now: float | None = None) -> None:
        """One pass over the in-flight calls (callable directly in tests)."""
        now = time.monotonic() if now is None else now
        for record in self.cluster.inflight_records():
            if record.done.is_set():
                self.cluster.forget_inflight(record.call_id)
                continue
            attempt = record.last_attempt
            if attempt is None:
                continue
            if attempt.state in (ATTEMPT_SENT, ATTEMPT_RUNNING):
                self._check_liveness(record, attempt, now)
            elif attempt.state in (ATTEMPT_LOST, ATTEMPT_FAILED):
                self._maybe_retry(record, attempt, now)

    # ------------------------------------------------------------------
    def _check_liveness(self, record, attempt, now: float) -> None:
        alive, epoch = self.cluster.host_liveness(attempt.host)
        if not alive or epoch != attempt.epoch:
            reason = f"host {attempt.host} died (attempt {attempt.number})"
            if self.cluster.calls.mark_attempt_lost(
                record.call_id, attempt.number, reason
            ):
                # Host death is detected, not suspected: re-queue at once.
                attempt.retry_at = now
                logger.warning("call %s: %s; re-queueing", record.call_id, reason)
        elif (
            attempt.state == ATTEMPT_SENT
            and now - attempt.dispatched_at > self.policy.attempt_timeout
            and not self._backlog_grace_holds(attempt, now)
        ):
            # The timeout detects *lost deliveries* only: an attempt still
            # SENT this long means its message was dropped (or delayed
            # past usefulness). Once an executor claimed it (RUNNING) the
            # host is alive and working — a long-running guest is not a
            # lost call, and retrying it would double-execute; host death
            # is what writes a RUNNING attempt off, via the epoch above.
            reason = (
                f"attempt {attempt.number} on {attempt.host} timed out "
                f"after {self.policy.attempt_timeout}s"
            )
            if self.cluster.calls.mark_attempt_lost(
                record.call_id, attempt.number, reason
            ):
                attempt.retry_at = now + self.policy.backoff(
                    attempt.number, self.rng
                )

    def _backlog_grace_holds(self, attempt, now: float) -> bool:
        """Whether a SENT attempt is excused from the delivery timeout:
        its live target is visibly backlogged (the message is plausibly
        still queued, not lost) and the grace budget is unspent."""
        if now - attempt.dispatched_at > (
            self.policy.attempt_timeout + self.policy.backlog_grace
        ):
            return False
        try:
            if self.cluster.bus.pending(attempt.host) > 0:
                return True
            instance = self.cluster.instance_for(attempt.host)
        except KeyError:
            return False
        return instance.pool_backlog() > 0

    def _maybe_retry(self, record, attempt, now: float) -> None:
        if attempt.retry_at == 0.0:
            # Parked by an executor (attempt_failed); schedule the backoff.
            attempt.retry_at = now + self.policy.backoff(attempt.number, self.rng)
            return
        if now < attempt.retry_at:
            return
        if len(record.attempts) >= self.policy.max_attempts:
            chain = [a.reason for a in record.attempts if a.reason]
            self.cluster.calls.fail_call(record.call_id, chain)
            self.cluster.telemetry.metrics.counter("call.failed").inc()
            self.cluster.forget_inflight(record.call_id)
            logger.error(
                "call %s failed after %d attempts: %s",
                record.call_id,
                len(record.attempts),
                "; ".join(chain),
            )
            return
        self.cluster.redispatch(record, reason=attempt.reason)
