"""``repro.runtime`` — the FAASM serverless runtime (§5).

Compose a cluster, upload functions, invoke them::

    from repro.runtime import FaasmCluster

    cluster = FaasmCluster(n_hosts=2)
    cluster.upload("hello", '''
        extern void write_call_output(int buf, int len);
        export int main() {
            int[] msg = new int[2];
            storeb(ptr(msg), 104); storeb(ptr(msg) + 1, 105);
            write_call_output(ptr(msg), 2);
            return 0;
        }
    ''')
    code, output = cluster.invoke("hello")
"""

from .bus import ExecuteCall, MessageBus, Shutdown
from .calls import (
    AttemptRecord,
    CallRecord,
    CallRegistry,
    CallStatus,
    InvocationRegistry,
)
from .cluster import DrainTimeout, FaasmCluster
from .instance import (
    DEFAULT_CAPACITY,
    FaasmRuntimeInstance,
    HostCrashed,
    RuntimeEnvironment,
)
from .monitor import InvocationMonitor, RetryPolicy
from .pyguest import PythonCallContext
from .registry import FunctionRegistry, PythonFunctionDefinition
from .scheduler import LocalScheduler, SchedulingDecision, WarmSetRegistry

__all__ = [
    "AttemptRecord",
    "CallRecord",
    "CallRegistry",
    "CallStatus",
    "DEFAULT_CAPACITY",
    "DrainTimeout",
    "ExecuteCall",
    "FaasmCluster",
    "HostCrashed",
    "InvocationMonitor",
    "InvocationRegistry",
    "MessageBus",
    "RetryPolicy",
    "Shutdown",
    "FaasmRuntimeInstance",
    "FunctionRegistry",
    "LocalScheduler",
    "PythonCallContext",
    "PythonFunctionDefinition",
    "RuntimeEnvironment",
    "SchedulingDecision",
    "WarmSetRegistry",
]
