"""The FAASM cluster front door (§5, Fig. 5).

A :class:`FaasmCluster` bundles the shared substrate — global state tier,
object store, function registry, invocation registry, warm sets — with a
set of per-host runtime instances. Incoming calls are spread round-robin
over the local schedulers, which place them using the shared-state warm
sets; each accepted call runs on a daemon thread (the stand-in for the
paper's Faaslet-pool threads), and chained calls re-enter through the same
path.

The cluster also owns the **fault-tolerant invocation plane**: every
dispatch is an attempt record, an :class:`~repro.runtime.monitor.
InvocationMonitor` re-queues attempts whose host died (liveness epoch) or
whose ``ExecuteCall`` was lost (timeout) with exponential backoff, dead
hosts are evicted from the warm sets so schedulers stop routing to them,
and a call whose retry budget is spent reaches the terminal ``CALL_FAILED``
state carrying its failure chain. Passing a
:class:`~repro.chaos.plan.ChaosPlan` (or prebuilt engine) as ``chaos=``
wraps the bus and the global state store in the deterministic
fault-injection layer that this plane is tested against.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time

from repro.host.filesystem import GlobalObjectStore
from repro.state.kv import GlobalStateStore
from repro.state.prefetch import DeliveryPolicy
from repro.telemetry import ProfileStore, Telemetry, export as telemetry_export

from .bus import ExecuteBatch, ExecuteCall, MessageBus, Shutdown
from .calls import CallRecord, InvocationRegistry
from .ingest import IngestionConfig, IngestionPlane
from .instance import DEFAULT_CAPACITY, FaasmRuntimeInstance
from .monitor import InvocationMonitor, RetryPolicy
from .registry import FunctionRegistry
from .scheduler import WarmSetRegistry

logger = logging.getLogger(__name__)


class DrainTimeout(TimeoutError):
    """``drain`` gave up with calls still in flight; carries their ids."""

    def __init__(self, message: str, stragglers: list[int]):
        super().__init__(message)
        self.stragglers = stragglers


class FaasmCluster:
    """A multi-host FAASM deployment in one process.

    "Hosts" are separate runtime instances with their own local state tiers
    and Faaslet pools sharing one global tier — the same topology as the
    paper's Kubernetes deployment, minus physical machines.
    """

    def __init__(
        self,
        n_hosts: int = 2,
        capacity: int = DEFAULT_CAPACITY,
        reset_between_calls: bool = False,
        telemetry: Telemetry | None = None,
        retry_policy: RetryPolicy | None = None,
        chaos=None,
        delivery: DeliveryPolicy | None = None,
    ):
        #: Unified telemetry: span tracer + metrics registry. Disabled by
        #: default (the tracing-off path is a no-op fast path); pass
        #: ``Telemetry(enabled=True, sample_rate=...)`` to record traces.
        self.telemetry = telemetry or Telemetry()
        #: Deterministic fault injection: a ChaosPlan/ChaosEngine, or None.
        self.chaos = None
        if chaos is not None:
            from repro.chaos.bus import ChaosMessageBus
            from repro.chaos.engine import ChaosEngine
            from repro.chaos.state import ChaosStateStore

            self.chaos = (
                chaos
                if isinstance(chaos, ChaosEngine)
                else ChaosEngine(chaos, metrics=self.telemetry.metrics)
            )
            self.global_state = ChaosStateStore(self.chaos)
            self.bus = ChaosMessageBus(
                metrics=self.telemetry.metrics, engine=self.chaos
            )
        else:
            self.global_state = GlobalStateStore()
            self.bus = MessageBus(metrics=self.telemetry.metrics)
        self.object_store = GlobalObjectStore()
        #: Content-addressed persistence for mined access profiles
        #: (``profiles/<fn>/<digest>.json`` in the object store).
        self.profile_store = ProfileStore(self.object_store)
        self._metrics_endpoint = None
        self._metrics_endpoint_lock = threading.Lock()
        self.registry = FunctionRegistry(
            self.object_store, metrics=self.telemetry.metrics
        )
        self.calls = InvocationRegistry()
        self.warm_sets = WarmSetRegistry(
            self.global_state, metrics=self.telemetry.metrics
        )
        #: Shared endpoint registry for Faaslet virtual NICs.
        self.endpoints: dict = {}
        #: Retry plane: on by default; ``RetryPolicy.off()`` restores the
        #: legacy fire-and-forget dispatch (the overhead baseline).
        self.retry = retry_policy if retry_policy is not None else RetryPolicy()
        #: Proactive data delivery (prefetch / push-invalidate /
        #: pre-placement, DESIGN.md §10). Off by default: every
        #: speculative mechanism is opt-in.
        self.delivery = delivery if delivery is not None else DeliveryPolicy.off()
        self._delivery_threads: list[threading.Thread] = []
        self._delivery_lock = threading.Lock()
        #: function -> (profile digest, chained callees) for pre-placement.
        self._callee_cache: dict[str, tuple] = {}
        self._capacity = capacity
        self._reset_between_calls = reset_between_calls
        self._host_seq = itertools.count(n_hosts)
        self.instances = [
            FaasmRuntimeInstance(
                f"host-{i}", self, capacity=capacity,
                reset_between_calls=reset_between_calls,
            )
            for i in range(n_hosts)
        ]
        self._by_host = {instance.host: instance for instance in self.instances}
        self._rr = itertools.count()
        #: The ingestion plane (admission control + batched dispatch),
        #: created lazily by :meth:`ingestion` / :meth:`submit`.
        self._ingest: IngestionPlane | None = None
        self._ingest_lock = threading.Lock()
        #: A reactive :class:`~repro.runtime.autoscale.Autoscaler`, when
        #: the caller attached one (``Autoscaler(cluster, ...)``).
        self.autoscaler = None
        self._dispatched: list[CallRecord] = []
        self._dispatched_lock = threading.Lock()
        self._inflight: dict[int, CallRecord] = {}
        self._inflight_lock = threading.Lock()
        for instance in self.instances:
            self.bus.register(instance.host)
            instance.start_dispatcher()
        self.monitor: InvocationMonitor | None = None
        if self.retry.enabled:
            self.monitor = InvocationMonitor(self, self.retry)
            self.monitor.start()

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def upload(self, name: str, source, **kwargs):
        """Upload a wasm guest function (see :meth:`FunctionRegistry.upload`)."""
        return self.registry.upload(name, source, **kwargs)

    def register_python(self, name: str, fn, **kwargs):
        return self.registry.register_python(name, fn, **kwargs)

    def pre_warm(self, function: str, per_host: int = 1) -> int:
        """Provision warm Faaslets for ``function`` on every host (scale-up
        ahead of anticipated traffic); returns the total added."""
        return sum(
            i.pre_warm(function, per_host) for i in self.instances if i.alive
        )

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def dispatch(
        self,
        function: str,
        input_data: bytes = b"",
        origin: str | None = None,
        idempotency_key: str | None = None,
    ) -> int:
        """Asynchronously invoke ``function``; returns the call id.

        External calls (``origin=None``) are assigned round-robin to a local
        scheduler, as Knative's default endpoint spreads requests; chained
        calls enter at their originating host's scheduler. A repeated
        ``idempotency_key`` returns the original call instead of invoking
        again.
        """
        if not self.registry.exists(function):
            raise KeyError(f"unknown function {function!r}")
        record, created = self.calls.create_or_get(
            function, input_data, idempotency_key
        )
        if not created:
            return record.call_id
        instance = self._entry_instance(origin)
        # The dispatch span roots a new trace for external calls; a
        # chained call re-entering on an executor thread continues the
        # caller's trace (its ambient context is still active there).
        with self.telemetry.tracer.trace(
            "call.dispatch",
            host=instance.host,
            function=function,
            call_id=record.call_id,
        ) as sp:
            decision = self._place_and_send(record, instance, sp)
            sp.set_attr("decision", decision.reason)
            sp.set_attr("target", decision.host)
        with self._dispatched_lock:
            self._dispatched.append(record)
        return record.call_id

    def _entry_instance(self, origin: str | None) -> FaasmRuntimeInstance:
        """The (live, non-draining) scheduler a call enters through."""
        if origin is not None:
            instance = self._by_host.get(origin)
            if instance is not None and instance.alive:
                return instance
        live = [i for i in self.instances if i.alive and not i.draining]
        if not live:
            live = [i for i in self.instances if i.alive]
        if not live:
            raise RuntimeError("no live hosts in the cluster")
        return live[next(self._rr) % len(live)]

    def _place_and_send(self, record: CallRecord, instance, sp) -> "SchedulingDecision":
        """Schedule ``record`` from ``instance`` and put it on the bus.

        Deliver over the message bus: locally, or to the warm host the
        scheduler shared the work with (Fig. 5's sharing queue). The wire
        context makes the receiving executor's spans children of the
        dispatch span, across hosts.
        """
        decision = instance.scheduler.schedule(record.function)
        attempt_no = -1
        if self.retry.enabled:
            target = self._by_host[decision.host]
            attempt_no = self.calls.new_attempt(
                record.call_id, decision.host, target.epoch
            ).number
            with self._inflight_lock:
                self._inflight[record.call_id] = record
        invalidate = None
        if self.delivery.push_invalidate and decision.host != instance.host:
            # Piggyback the sender's freshness knowledge so the target
            # host's forced pulls can skip clean keys / delta-pull stale
            # ranges (same-host chains share the tier — nothing to ship).
            invalidate = instance.local_tier.invalidation_payload(
                self.delivery.max_keys
            )
        self.bus.send(
            decision.host,
            ExecuteCall(
                record.call_id,
                record.function,
                origin=instance.host,
                # Work left this host for a peer — via the warm set or a
                # snapshot-locality (page-resident) placement.
                shared=decision.reason in ("shared", "resident")
                and decision.host != instance.host,
                trace=sp.wire(),
                attempt=attempt_no,
                invalidate=invalidate,
            ),
        )
        if self.delivery.pre_place:
            self._pre_place(record.function, instance, decision.host)
        return decision

    # ------------------------------------------------------------------
    # Batched dispatch & the ingestion front door (DESIGN.md §11)
    # ------------------------------------------------------------------
    def dispatch_batch(
        self,
        function: str,
        records: list[CallRecord],
        origin: str | None = None,
        collect: dict | None = None,
    ) -> list[str]:
        """Place and send a batch of already-created call records.

        The ingestion plane's hot path: one batched scheduling decision
        (warm-set snapshot read once, usually from the epoch cache), one
        registry lock for all the attempt records, and one
        :class:`ExecuteBatch` message per target host. With ``collect``
        (a ``host -> [messages]`` dict) the messages are accumulated there
        instead of sent, so a caller processing several function groups
        can flush each host's messages with one :meth:`MessageBus.
        send_many`. Returns the target host per record, in order.
        """
        if not records:
            return []
        instance = self._entry_instance(origin)
        decisions = instance.scheduler.schedule_batch(function, len(records))
        by_host: dict[str, list[CallRecord]] = {}
        shared_hosts: set[str] = set()
        for record, decision in zip(records, decisions):
            by_host.setdefault(decision.host, []).append(record)
            if decision.host != instance.host and decision.reason in (
                "shared", "resident", "cold-spread"
            ):
                shared_hosts.add(decision.host)
        if self.retry.enabled:
            # One registry lock for the whole round's attempt records.
            specs, flat = [], []
            for host, group in by_host.items():
                epoch = self._by_host[host].epoch
                for record in group:
                    specs.append((record, host, epoch))
                    flat.append(record)
            attempts = self.calls.new_attempts(specs)
            numbers = {
                record.call_id: attempt.number
                for record, attempt in zip(flat, attempts)
            }
            with self._inflight_lock:
                for record in records:
                    self._inflight[record.call_id] = record
        else:
            numbers = {record.call_id: -1 for record in records}
        for host, group in by_host.items():
            batch = ExecuteBatch(
                function,
                tuple(
                    (record.call_id, numbers[record.call_id])
                    for record in group
                ),
                origin=instance.host,
                shared=host in shared_hosts,
            )
            if collect is not None:
                collect.setdefault(host, []).append(batch)
            else:
                self.bus.send(host, batch)
        with self._dispatched_lock:
            self._dispatched.extend(records)
        targets = {}
        for host, group in by_host.items():
            for record in group:
                targets[record.call_id] = host
        return [targets[record.call_id] for record in records]

    def ingestion(self, config: IngestionConfig | None = None) -> IngestionPlane:
        """The cluster's ingestion plane (created on first use). Passing a
        config after the plane exists raises — admission limits are not
        hot-swappable."""
        with self._ingest_lock:
            if self._ingest is None:
                self._ingest = IngestionPlane(
                    self, config if config is not None else IngestionConfig()
                )
                self._ingest.start()
            elif config is not None:
                raise RuntimeError("ingestion plane already configured")
            return self._ingest

    def submit(
        self,
        function: str,
        input_data: bytes = b"",
        tenant: str = "default",
    ) -> tuple[int | None, str]:
        """The async front door: admit (or defer/shed) a call without
        blocking on placement. Returns ``(call_id, "admitted")`` on
        admission, ``(None, "deferred"|"shed")`` on backpressure."""
        return self.ingestion().submit(function, input_data, tenant=tenant)

    def submit_many(
        self,
        function: str,
        inputs: list[bytes],
        tenant: str = "default",
    ) -> list[tuple[int | None, str]]:
        """Bulk :meth:`submit`: admit a whole batch under one registry
        lock and one admission lock. One ``(call_id, outcome)`` per
        input."""
        return self.ingestion().submit_many(function, inputs, tenant=tenant)

    def ingestion_stats(self) -> dict:
        plane = self._ingest
        return plane.stats() if plane is not None else {}

    # ------------------------------------------------------------------
    # Speculative page pre-placement (DESIGN.md §10c)
    # ------------------------------------------------------------------
    def _profile_callees(self, function: str) -> tuple:
        """The function's most-chained callees per its HEAD profile
        (cached by profile digest) — the snapshots worth pre-placing."""
        head = self.profile_store.head(function)
        if head is None:
            return ()
        with self._delivery_lock:
            cached = self._callee_cache.get(function)
            if cached is not None and cached[0] == head:
                return cached[1]
        profile = self.profile_store.load(function, head)
        callees: tuple = ()
        if profile is not None and profile.chains:
            callees = tuple(
                sorted(
                    profile.chains, key=lambda fn: (-profile.chains[fn], fn)
                )[:2]
            )
        with self._delivery_lock:
            self._callee_cache[function] = (head, callees)
        return callees

    def _pre_place(self, function: str, entry, target_host: str) -> None:
        """Warm likely-next hosts' PageStores with the snapshot pages of
        ``function``'s chained callees, in the background. Best-effort:
        failures are swallowed — correctness never depends on placement."""
        callees = self._profile_callees(function)
        if not callees:
            return

        def work():
            for callee in callees:
                hosts = entry.scheduler.likely_hosts(
                    callee, default=target_host
                )
                for host in hosts[:2]:
                    target = self._by_host.get(host)
                    if target is None or not target.alive:
                        continue
                    try:
                        target.snapshots.warm_pages(callee)
                    except Exception:
                        logger.debug(
                            "pre-place of %s on %s failed", callee, host,
                            exc_info=True,
                        )

        if self.delivery.synchronous:
            work()
            return
        thread = threading.Thread(
            target=work, name=f"preplace-{function}", daemon=True
        )
        with self._delivery_lock:
            self._delivery_threads = [
                t for t in self._delivery_threads if t.is_alive()
            ]
            self._delivery_threads.append(thread)
        thread.start()

    def quiesce_delivery(self, timeout: float = 5.0) -> None:
        """Wait for in-flight speculative work (prefetches and page
        pre-placements) to settle — tests and the CLI call this before
        reading the delivery ledgers."""
        with self._delivery_lock:
            threads = list(self._delivery_threads)
        for thread in threads:
            thread.join(timeout)
        for instance in self.instances:
            instance.prefetcher.quiesce(timeout)

    def delivery_stats(self) -> dict:
        """Cluster-wide delivery-plane ledger: per-function prefetch
        hit/waste, push-invalidate savings, pre-placed pages."""
        functions: dict[str, dict] = {}
        invalidate = {"skips": 0, "delta_pulls": 0, "bytes_saved": 0}
        for instance in self.instances:
            for fn, row in instance.prefetcher.stats().items():
                agg = functions.setdefault(
                    fn,
                    {
                        "prefetched_bytes": 0,
                        "hit_bytes": 0,
                        "waste_bytes": 0,
                        "aborted": 0,
                    },
                )
                for field in agg:
                    agg[field] += row.get(field, 0)
            tier = instance.local_tier.delivery_stats()
            invalidate["skips"] += tier["invalidate_skips"]
            invalidate["delta_pulls"] += tier["invalidate_delta_pulls"]
            invalidate["bytes_saved"] += tier["invalidate_bytes_saved"]
        return {
            "policy": self.delivery.mode,
            "functions": functions,
            "invalidate": invalidate,
            "preplaced_pages": int(
                self.telemetry.metrics.aggregate("prefetch.preplaced_pages")
            ),
        }

    def redispatch(self, record: CallRecord, reason: str = "") -> None:
        """Re-queue a call whose previous attempt was lost (the invocation
        monitor's retry path); places with current warm-set/liveness data."""
        try:
            instance = self._entry_instance(None)
        except RuntimeError:
            chain = [a.reason for a in record.attempts if a.reason]
            chain.append("no live hosts to retry on")
            self.calls.fail_call(record.call_id, chain)
            self.telemetry.metrics.counter("call.failed").inc()
            self.forget_inflight(record.call_id)
            return
        with self.telemetry.tracer.trace(
            "call.retry",
            host=instance.host,
            function=record.function,
            call_id=record.call_id,
        ) as sp:
            sp.set_attr("attempt", len(record.attempts))
            if reason:
                sp.set_attr("reason", reason)
            if self.chaos is not None:
                # Attribute the retry to the injected fault(s) that cost
                # the previous attempt, so traces explain *why*.
                faults = self.chaos.faults_for(record.call_id)
                if faults:
                    sp.set_attr("fault", ",".join(faults))
            self._place_and_send(record, instance, sp)
        self.telemetry.metrics.counter("call.retries").inc()

    def invoke(self, function: str, input_data: bytes = b"", timeout: float = 60.0) -> tuple[int, bytes]:
        """Synchronously invoke ``function``; returns (exit code, output)."""
        call_id = self.dispatch(function, input_data)
        code = self.calls.wait(call_id, timeout)
        return code, self.calls.output(call_id)

    # ------------------------------------------------------------------
    # Host lookup / capacity / liveness
    # ------------------------------------------------------------------
    def instance_for(self, host: str) -> FaasmRuntimeInstance:
        instance = self._by_host.get(host)
        if instance is None:
            raise KeyError(f"unknown host {host!r}")
        return instance

    def peer_capacity(self, host: str) -> int:
        instance = self.instance_for(host)
        return instance.free_capacity() if instance.alive else 0

    def host_alive(self, host: str) -> bool:
        instance = self._by_host.get(host)
        return instance is not None and instance.alive

    def placement_ok(self, host: str) -> bool:
        """Whether schedulers may place *new* work on ``host`` — alive and
        not draining. (Liveness for the monitor is :meth:`host_alive`: a
        draining host still finishes its in-flight attempts.)"""
        instance = self._by_host.get(host)
        return instance is not None and instance.alive and not instance.draining

    def live_hosts(self) -> list[str]:
        """Hosts new work may be placed on (the batch scheduler's spread
        universe)."""
        return [
            i.host for i in self.instances if i.alive and not i.draining
        ]

    # ------------------------------------------------------------------
    # Elasticity (the autoscaler's grow/shrink primitives)
    # ------------------------------------------------------------------
    def add_host(self, count: int = 1) -> list[str]:
        """Grow the cluster by ``count`` hosts. Dead hosts are revived
        first (their bus endpoint and identity already exist); genuinely
        new hosts get fresh names. Returns the hosts brought up."""
        added: list[str] = []
        for _ in range(count):
            dead = next(
                (i for i in self.instances if not i.alive), None
            )
            if dead is not None:
                dead.draining = False
                dead.restart()
                added.append(dead.host)
                continue
            host = f"host-{next(self._host_seq)}"
            instance = FaasmRuntimeInstance(
                host, self, capacity=self._capacity,
                reset_between_calls=self._reset_between_calls,
            )
            self.bus.register(host)
            instance.start_dispatcher()
            # Copy-then-rebind so lock-free readers of the instance list
            # never see a half-built membership.
            self.instances = self.instances + [instance]
            self._by_host = {**self._by_host, host: instance}
            added.append(host)
        if added:
            self.telemetry.metrics.counter("host.scaled_up").inc(len(added))
        return added

    def retire_host(self, host: str, timeout: float = 10.0) -> bool:
        """Shrink: gracefully retire ``host``. The host stops receiving
        new placements (``draining``), is evicted from the warm sets, and
        once its queue and executors are idle it is taken down through the
        PR 4 death path — so any straggler the drain raced is re-queued by
        the invocation monitor, never stranded. Returns False when the
        host is not retirable (unknown, already down, or the last live
        host)."""
        instance = self._by_host.get(host)
        if instance is None or not instance.alive:
            return False
        live = [
            i for i in self.instances if i.alive and not i.draining
        ]
        if len(live) <= 1 or instance not in live:
            return False
        instance.draining = True
        self.warm_sets.evict_host(host)
        instance.reclaim_idle(0)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                pending = self.bus.pending(host)
            except KeyError:
                pending = 0
            if (
                pending == 0
                and instance.pool_backlog() == 0
                and instance.executing() == 0
            ):
                break
            time.sleep(0.005)
        # kill() ends the liveness epoch: anything the drain wait raced
        # is written off by the monitor and re-queued elsewhere.
        instance.kill()
        self.telemetry.metrics.counter("host.scaled_down").inc()
        return True

    def host_liveness(self, host: str) -> tuple[bool, int]:
        """(alive, epoch) for the invocation monitor's death detection."""
        instance = self._by_host.get(host)
        if instance is None:
            return False, -1
        return instance.alive, instance.epoch

    def on_host_death(self, instance: FaasmRuntimeInstance) -> None:
        """A host died: evict it from every warm set so schedulers stop
        routing there; its in-flight calls are re-queued by the monitor."""
        evicted = self.warm_sets.evict_host(instance.host)
        self.telemetry.metrics.counter("host.evicted").inc()
        logger.warning(
            "host %s declared dead; evicted from %d warm sets",
            instance.host,
            evicted,
        )

    # ------------------------------------------------------------------
    # In-flight tracking (for the invocation monitor)
    # ------------------------------------------------------------------
    def inflight_records(self) -> list[CallRecord]:
        with self._inflight_lock:
            return list(self._inflight.values())

    def forget_inflight(self, call_id: int) -> None:
        with self._inflight_lock:
            self._inflight.pop(call_id, None)

    # ------------------------------------------------------------------
    # Cluster-wide accounting
    # ------------------------------------------------------------------
    def total_network_bytes(self) -> int:
        """Bytes exchanged with the global tier across all hosts."""
        return sum(i.state_client.meter.total_bytes for i in self.instances)

    def total_memory_footprint(self) -> int:
        return sum(i.memory_footprint() for i in self.instances)

    def total_cold_starts(self) -> int:
        return sum(i.metrics.cold_starts for i in self.instances)

    def snapshot_stats(self) -> dict:
        """The snapshot distribution plane's view of the cluster: per-host
        PageStore residency/dedup/transfer stats plus the repository's."""
        return {
            "repository": self.registry.snapshots.stats(),
            "hosts": {i.host: i.snapshots.stats() for i in self.instances},
        }

    #: Headline series summed across label sets in :meth:`metrics_snapshot`
    #: — includes the ISA-level counters (SIMD / atomics / guest threads)
    #: so the vector-and-threads workload is visible in one place.
    AGGREGATE_SERIES = (
        "instance.calls_executed",
        "instance.cold_starts",
        "instance.warm_hits",
        "state.bytes_sent",
        "state.bytes_received",
        "state.round_trips",
        "simd.ops",
        "atomic.ops",
        "thread.spawned",
        "atomic.waits",
        "call.retries",
        "call.failed",
        "prefetch.bytes",
        "prefetch.hit_bytes",
        "prefetch.aborted",
        "prefetch.preplaced_pages",
        "ingest.admitted",
        "ingest.deferred",
        "ingest.shed",
        "bus.batched_calls",
        "sched.cache_hits",
        "sched.cache_misses",
    )

    def metrics_snapshot(self) -> dict:
        """Cluster-aggregated metrics dump: every per-host series (bus,
        state transfers, instance lifecycle, span latencies) plus
        cluster-wide sums for the headline counters."""
        snapshot = self.telemetry.metrics.snapshot()
        snapshot["aggregates"] = {
            name: self.telemetry.metrics.aggregate(name)
            for name in self.AGGREGATE_SERIES
        }
        return snapshot

    # ------------------------------------------------------------------
    # Access profiles (trace miner) and the OpenMetrics endpoint
    # ------------------------------------------------------------------
    @property
    def profiles(self):
        """The trace miner (``Telemetry(mine_profiles=True)``), or None."""
        return self.telemetry.profiles

    def persist_profiles(self) -> dict[str, str]:
        """Write every mined access profile to the object store; returns
        ``{function: content digest}``."""
        miner = self.telemetry.profiles
        if miner is None:
            return {}
        return {
            function: self.profile_store.save(profile)
            for function, profile in sorted(miner.profiles().items())
        }

    def load_profile(self, function: str, digest: str | None = None):
        """A persisted access profile from the object store (the
        round-trip path ``repro profiles`` and the prefetcher read)."""
        return self.profile_store.load(function, digest)

    def metrics_endpoint(self):
        """The OpenMetrics scrape endpoint on the bus (created on first
        use; shut down with the cluster)."""
        from repro.telemetry.openmetrics import MetricsEndpoint

        with self._metrics_endpoint_lock:
            if self._metrics_endpoint is None:
                self._metrics_endpoint = MetricsEndpoint(
                    self.bus, self.telemetry.metrics
                )
            return self._metrics_endpoint

    def scrape_metrics(self, timeout: float = 5.0) -> str:
        """One OpenMetrics exposition, fetched over the message bus the
        way a Prometheus scrape would arrive."""
        return self.metrics_endpoint().scrape(timeout=timeout)

    def trace_spans(self):
        """All spans recorded by this cluster's tracer."""
        return self.telemetry.spans()

    def export_chrome_trace(self, path: str | None = None) -> dict:
        """The cluster's spans as Chrome trace-event JSON (optionally
        written to ``path``), with the metrics snapshot in ``otherData``."""
        doc = telemetry_export.to_chrome_trace(
            self.trace_spans(), metrics=self.metrics_snapshot()
        )
        if path is not None:
            import json

            with open(path, "w") as f:
                json.dump(doc, f)
        return doc

    def drain(self, timeout: float = 30.0, raise_on_stragglers: bool = True) -> list[int]:
        """Wait for all dispatched calls to finish (tests/benchmarks).

        The timeout is an overall deadline. Calls still unfinished when it
        expires are *stragglers*: their ids are returned, and — unless
        ``raise_on_stragglers=False`` — a :class:`DrainTimeout` naming them
        is raised, so a stuck call can never be mistaken for a clean drain.
        """
        deadline = time.monotonic() + timeout
        with self._dispatched_lock:
            records = list(self._dispatched)
        stragglers = []
        for record in records:
            remaining = deadline - time.monotonic()
            if not record.done.wait(max(0.0, remaining)):
                stragglers.append(record.call_id)
        with self._dispatched_lock:
            self._dispatched = [r for r in self._dispatched if not r.done.is_set()]
        if stragglers and raise_on_stragglers:
            raise DrainTimeout(
                f"drain timed out after {timeout}s with {len(stragglers)} "
                f"calls still running; straggler call ids: {stragglers}",
                stragglers,
            )
        return stragglers

    def shutdown(self) -> None:
        """Stop every host's dispatcher and the monitor (idempotent)."""
        if self.autoscaler is not None:
            self.autoscaler.stop()
        with self._ingest_lock:
            if self._ingest is not None:
                self._ingest.stop()
        if self.monitor is not None:
            self.monitor.stop()
        with self._metrics_endpoint_lock:
            if self._metrics_endpoint is not None:
                self._metrics_endpoint.shutdown()
                self._metrics_endpoint = None
        for instance in self.instances:
            try:
                self.bus.send(instance.host, Shutdown())
            except KeyError:
                pass  # endpoint already deregistered
        for instance in self.instances:
            instance.join_dispatcher()
