"""The FAASM cluster front door (§5, Fig. 5).

A :class:`FaasmCluster` bundles the shared substrate — global state tier,
object store, function registry, call registry, warm sets — with a set of
per-host runtime instances. Incoming calls are spread round-robin over the
local schedulers, which place them using the shared-state warm sets; each
accepted call runs on a daemon thread (the stand-in for the paper's
Faaslet-pool threads), and chained calls re-enter through the same path.
"""

from __future__ import annotations

import itertools
import logging
import threading

from repro.host.filesystem import GlobalObjectStore
from repro.state.kv import GlobalStateStore
from repro.telemetry import Telemetry, export as telemetry_export

from .bus import ExecuteCall, MessageBus, Shutdown
from .calls import CallRecord, CallRegistry
from .instance import DEFAULT_CAPACITY, FaasmRuntimeInstance
from .registry import FunctionRegistry
from .scheduler import WarmSetRegistry

logger = logging.getLogger(__name__)


class FaasmCluster:
    """A multi-host FAASM deployment in one process.

    "Hosts" are separate runtime instances with their own local state tiers
    and Faaslet pools sharing one global tier — the same topology as the
    paper's Kubernetes deployment, minus physical machines.
    """

    def __init__(
        self,
        n_hosts: int = 2,
        capacity: int = DEFAULT_CAPACITY,
        reset_between_calls: bool = False,
        telemetry: Telemetry | None = None,
    ):
        #: Unified telemetry: span tracer + metrics registry. Disabled by
        #: default (the tracing-off path is a no-op fast path); pass
        #: ``Telemetry(enabled=True, sample_rate=...)`` to record traces.
        self.telemetry = telemetry or Telemetry()
        self.global_state = GlobalStateStore()
        self.object_store = GlobalObjectStore()
        self.registry = FunctionRegistry(self.object_store)
        self.calls = CallRegistry()
        self.warm_sets = WarmSetRegistry(self.global_state)
        #: Shared endpoint registry for Faaslet virtual NICs.
        self.endpoints: dict = {}
        self.bus = MessageBus(metrics=self.telemetry.metrics)
        self.instances = [
            FaasmRuntimeInstance(
                f"host-{i}", self, capacity=capacity,
                reset_between_calls=reset_between_calls,
            )
            for i in range(n_hosts)
        ]
        self._rr = itertools.count()
        self._dispatched: list[CallRecord] = []
        self._dispatched_lock = threading.Lock()
        for instance in self.instances:
            self.bus.register(instance.host)
            instance.start_dispatcher()

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def upload(self, name: str, source, **kwargs):
        """Upload a wasm guest function (see :meth:`FunctionRegistry.upload`)."""
        return self.registry.upload(name, source, **kwargs)

    def register_python(self, name: str, fn, **kwargs):
        return self.registry.register_python(name, fn, **kwargs)

    def pre_warm(self, function: str, per_host: int = 1) -> int:
        """Provision warm Faaslets for ``function`` on every host (scale-up
        ahead of anticipated traffic); returns the total added."""
        return sum(i.pre_warm(function, per_host) for i in self.instances)

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def dispatch(self, function: str, input_data: bytes = b"", origin: str | None = None) -> int:
        """Asynchronously invoke ``function``; returns the call id.

        External calls (``origin=None``) are assigned round-robin to a local
        scheduler, as Knative's default endpoint spreads requests; chained
        calls enter at their originating host's scheduler.
        """
        if not self.registry.exists(function):
            raise KeyError(f"unknown function {function!r}")
        record = self.calls.create(function, input_data)
        if origin is None:
            instance = self.instances[next(self._rr) % len(self.instances)]
        else:
            instance = self.instance_for(origin)
        # The dispatch span roots a new trace for external calls; a
        # chained call re-entering on an executor thread continues the
        # caller's trace (its ambient context is still active there).
        with self.telemetry.tracer.trace(
            "call.dispatch",
            host=instance.host,
            function=function,
            call_id=record.call_id,
        ) as sp:
            decision = instance.scheduler.schedule(function)
            sp.set_attr("decision", decision.reason)
            sp.set_attr("target", decision.host)
            # Deliver over the message bus: locally, or to the warm host
            # the scheduler shared the work with (Fig. 5's sharing
            # queue). The wire context makes the receiving executor's
            # spans children of this dispatch span, across hosts.
            self.bus.send(
                decision.host,
                ExecuteCall(
                    record.call_id,
                    function,
                    origin=instance.host,
                    shared=decision.reason == "shared",
                    trace=sp.wire(),
                ),
            )
        with self._dispatched_lock:
            self._dispatched.append(record)
        return record.call_id

    def invoke(self, function: str, input_data: bytes = b"", timeout: float = 60.0) -> tuple[int, bytes]:
        """Synchronously invoke ``function``; returns (exit code, output)."""
        call_id = self.dispatch(function, input_data)
        code = self.calls.wait(call_id, timeout)
        return code, self.calls.output(call_id)

    # ------------------------------------------------------------------
    # Host lookup / capacity
    # ------------------------------------------------------------------
    def instance_for(self, host: str) -> FaasmRuntimeInstance:
        for instance in self.instances:
            if instance.host == host:
                return instance
        raise KeyError(f"unknown host {host!r}")

    def peer_capacity(self, host: str) -> int:
        return self.instance_for(host).free_capacity()

    # ------------------------------------------------------------------
    # Cluster-wide accounting
    # ------------------------------------------------------------------
    def total_network_bytes(self) -> int:
        """Bytes exchanged with the global tier across all hosts."""
        return sum(i.state_client.meter.total_bytes for i in self.instances)

    def total_memory_footprint(self) -> int:
        return sum(i.memory_footprint() for i in self.instances)

    def total_cold_starts(self) -> int:
        return sum(i.metrics.cold_starts for i in self.instances)

    def metrics_snapshot(self) -> dict:
        """Cluster-aggregated metrics dump: every per-host series (bus,
        state transfers, instance lifecycle, span latencies) plus
        cluster-wide sums for the headline counters."""
        snapshot = self.telemetry.metrics.snapshot()
        snapshot["aggregates"] = {
            name: self.telemetry.metrics.aggregate(name)
            for name in (
                "instance.calls_executed",
                "instance.cold_starts",
                "instance.warm_hits",
                "state.bytes_sent",
                "state.bytes_received",
                "state.round_trips",
            )
        }
        return snapshot

    def trace_spans(self):
        """All spans recorded by this cluster's tracer."""
        return self.telemetry.spans()

    def export_chrome_trace(self, path: str | None = None) -> dict:
        """The cluster's spans as Chrome trace-event JSON (optionally
        written to ``path``), with the metrics snapshot in ``otherData``."""
        doc = telemetry_export.to_chrome_trace(
            self.trace_spans(), metrics=self.metrics_snapshot()
        )
        if path is not None:
            import json

            with open(path, "w") as f:
                json.dump(doc, f)
        return doc

    def drain(self, timeout: float = 30.0) -> None:
        """Wait for all dispatched calls to finish (tests/benchmarks)."""
        with self._dispatched_lock:
            records = list(self._dispatched)
        for record in records:
            record.done.wait(timeout)
        with self._dispatched_lock:
            self._dispatched = [r for r in self._dispatched if not r.done.is_set()]

    def shutdown(self) -> None:
        """Stop every host's dispatcher (idempotent)."""
        for instance in self.instances:
            self.bus.send(instance.host, Shutdown())
        for instance in self.instances:
            instance.join_dispatcher()
