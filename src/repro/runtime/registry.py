"""The upload service and function registry (§5.2).

Uploading a function runs the trusted pipeline once: compile (for minilang
sources), validate, generate object code, store the artifact in the shared
object store, and — when initialisation code is specified — capture a
Proto-Faaslet so every host can cold-start from the snapshot.

Besides wasm guests, the registry accepts *host-native Python functions*
(:class:`PythonFunctionDefinition`). These stand in for the paper's
dynamic-language workloads (CPython compiled to WebAssembly): the function
body runs as host Python, but all I/O, state and chaining go through the
same interface surface as wasm guests. See DESIGN.md §1 for why this
substitution preserves the measured behaviour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.faaslet import FunctionDefinition, ProtoFaaslet, SnapshotRepository
from repro.host.filesystem import GlobalObjectStore
from repro.minilang import compile_source
from repro.telemetry import MetricsRegistry, span
from repro.wasm import parse_module
from repro.wasm.module import Module


@dataclass
class PythonFunctionDefinition:
    """A host-native function: ``fn(ctx)`` with a Faasm-like context.

    ``ctx`` is a :class:`~repro.runtime.pyguest.PythonCallContext` exposing
    input/output, chaining and the state API — the same capabilities a wasm
    guest reaches through the host interface.
    """

    name: str
    fn: Callable
    user: str = "default"
    #: Approximate initialisation cost the paper attributes to starting a
    #: dynamic-language runtime; used by snapshotting metrics only.
    runtime_init: Callable | None = None


class FunctionRegistry:
    """Cluster-wide function registry backed by the shared object store."""

    def __init__(
        self,
        object_store: GlobalObjectStore | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.object_store = object_store or GlobalObjectStore()
        self._functions: dict[str, FunctionDefinition | PythonFunctionDefinition] = {}
        self._protos: dict[str, ProtoFaaslet] = {}
        #: The content-addressed snapshot home every host delta-pulls from.
        self.snapshots = SnapshotRepository(metrics)
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Upload
    # ------------------------------------------------------------------
    def upload(
        self,
        name: str,
        source: "str | Module",
        *,
        lang: str = "minilang",
        init: str | None = None,
        snapshot: bool = True,
        **definition_kwargs,
    ) -> FunctionDefinition:
        """Upload a wasm guest function.

        ``source`` is minilang source (``lang="minilang"``), text-format
        module source (``lang="wat"``), or an already-built module. The
        untrusted compile step runs first; validation and code generation
        (the trusted steps of §3.4) happen inside
        :meth:`FunctionDefinition.build`. With ``snapshot=True`` a
        Proto-Faaslet is captured immediately — running ``init`` if given —
        and stored for cluster-wide cold starts.
        """
        with span("function.upload", function=name, lang=lang) as sp:
            if isinstance(source, Module):
                module = source
            elif lang == "minilang":
                module = compile_source(source, name)
            elif lang == "wat":
                module = parse_module(source)
            else:
                raise ValueError(f"unknown language {lang!r}")
            definition = FunctionDefinition.build(name, module, **definition_kwargs)
            sp.set_attr("snapshot", snapshot)
        with self._mutex:
            self._functions[name] = definition
        if isinstance(source, str):
            self.object_store.upload(f"functions/{name}.src", source.encode())
        # Store the disassembly alongside: a readable record of exactly what
        # was validated and deployed.
        from repro.wasm import print_module

        self.object_store.upload(
            f"functions/{name}.wat", print_module(module).encode()
        )
        # And the object file — module + generated code — which any host can
        # instantiate from without recompiling (§3.4/§5.2).
        from repro.wasm.objectfile import write_object

        self.object_store.upload(
            f"functions/{name}.obj",
            write_object(
                definition.module,
                definition.compiled,
                meta={
                    "entry": definition.entry,
                    "max_pages": definition.max_pages,
                    "user": definition.user,
                },
            ),
        )
        if snapshot:
            self.generate_proto(name, init=init)
        return definition

    def register_python(
        self, name: str, fn: Callable, user: str = "default"
    ) -> PythonFunctionDefinition:
        """Register a host-native Python function (CPython-workload path)."""
        definition = PythonFunctionDefinition(name, fn, user)
        with self._mutex:
            self._functions[name] = definition
        return definition

    # ------------------------------------------------------------------
    # Proto-Faaslets
    # ------------------------------------------------------------------
    def generate_proto(
        self, name: str, init: "str | Callable | None" = None
    ) -> ProtoFaaslet:
        """Capture and publish the Proto-Faaslet for a wasm function.

        The snapshot enters the content-addressed plane: its pages land in
        the cluster :class:`~repro.faaslet.pagestore.SnapshotRepository`
        (deduplicated against every other published snapshot, previous
        versions of this function included) and the object store gets the
        *manifest* — ordered page digests plus globals/table blobs — not a
        monolithic page blob. Hosts restore by delta-pulling only the
        pages their local PageStore is missing.
        """
        from repro.host.environment import StandaloneEnvironment

        definition = self.get(name)
        if not isinstance(definition, FunctionDefinition):
            raise TypeError(f"{name!r} is not a wasm function")
        scratch_env = StandaloneEnvironment(
            object_store=self.object_store, host="upload-service"
        )
        with span("snapshot.capture", function=name) as sp:
            proto = ProtoFaaslet.capture(definition, scratch_env, init=init)
            sp.set_attr("pages", len(proto.frozen_pages))
            with self._mutex:
                self._protos[name] = proto
            manifest = self.snapshots.publish(name, proto)
            sp.set_attr("version", manifest.version)
        self.object_store.upload(f"protos/{name}.manifest", manifest.to_bytes())
        return proto

    def proto(self, name: str) -> ProtoFaaslet | None:
        with self._mutex:
            return self._protos.get(name)

    # ------------------------------------------------------------------
    def load_from_object_store(self, name: str) -> FunctionDefinition:
        """Reconstruct a deployed function from its stored object file —
        the path a host that never saw the upload uses to cold-start."""
        from repro.wasm.objectfile import read_object

        data = self.object_store.get(f"functions/{name}.obj")
        if data is None:
            raise KeyError(f"no object file for {name!r}")
        module, compiled, meta = read_object(data)
        # Seed the cluster-wide code cache keyed by the object file's own
        # bytes (restored modules carry no bodies, so printed text cannot
        # key them). Repeated loads of the same artifact then share one
        # compiled list — and its lazily-built closure-threaded code —
        # instead of re-running codegen or re-threading.
        import hashlib

        from repro.wasm.codecache import GLOBAL_CODE_CACHE

        obj_key = "obj:" + hashlib.sha256(data).hexdigest()
        compiled = GLOBAL_CODE_CACHE.seed_with_key(module, obj_key, compiled)
        definition = FunctionDefinition(
            name,
            module,
            compiled,
            entry=meta.get("entry", "main"),
            max_pages=meta.get("max_pages", 1024),
            user=meta.get("user", "default"),
        )
        with self._mutex:
            self._functions.setdefault(name, definition)
        return definition

    # ------------------------------------------------------------------
    def get(self, name: str) -> FunctionDefinition | PythonFunctionDefinition:
        # Lock-free: dict reads are atomic under the GIL and definitions
        # are only ever added or replaced, never removed — every executing
        # call resolves its function here, so a mutex would put a single
        # cluster-wide lock on the execution hot path.
        definition = self._functions.get(name)
        if definition is None:
            raise KeyError(f"unknown function {name!r}")
        return definition

    def exists(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        with self._mutex:
            return sorted(self._functions)

    # ------------------------------------------------------------------
    @staticmethod
    def code_cache_stats() -> dict[str, int]:
        """Hit/miss/seed counters of the cluster-wide compiled-module cache
        (the analogue of §3.4's shared object-code measurements)."""
        from repro.wasm.codecache import GLOBAL_CODE_CACHE

        return GLOBAL_CODE_CACHE.stats()
