"""Distributed shared-state scheduling (§5.1) with snapshot locality.

FAASM's local schedulers cooperate through the global state tier, in the
style of Omega: the set of warm hosts for each function lives under a state
key, and every scheduler may read and atomically update it while making a
placement decision. An incoming call is executed locally when the receiving
host is warm and has capacity, shared with another warm host when one
exists, and otherwise cold-started — preferring a *page-resident* host
(one whose PageStore already covers the function's snapshot manifest, so
the restore ships no or few pages) over a genuinely cold one. Placement
quality is therefore warm > mostly-resident > cold, which is what keeps
Fig. 10 churn migration cost at O(delta) instead of O(snapshot size).

Residency advertisements live next to the warm sets in the global tier and
are, like them, advisory: stale or missing entries only cost transfer
bytes, never correctness.

**The dispatch hot path is de-locked** (DESIGN.md §11): parsed warm-set
and residency snapshots are memoised per function behind an epoch + TTL
cache, so back-to-back dispatches of the same function cost zero
global-tier reads — the registry bumps a per-key epoch on every mutation
it performs (every mutation in this in-process deployment goes through the
shared registry), and the TTL bounds staleness against writers the epoch
cannot see. A stale snapshot is at worst a slightly worse *advisory*
placement, never a correctness issue. :meth:`LocalScheduler.schedule_batch`
amortises one snapshot read and one capacity survey over a whole batch of
calls, which is what the ingestion plane dispatches with.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass

from repro.state.kv import (
    GlobalStateStore,
    StateKeyError,
    StateUnavailableError,
)
from repro.telemetry import MetricsRegistry, span

_WARM_PREFIX = "faasm/sched/warm/"
_RESIDENT_PREFIX = "faasm/sched/resident/"

#: How long a cached warm-set/residency snapshot may serve reads without
#: revalidation. The per-key epoch catches every mutation made through
#: the shared registry instantly; the TTL only bounds staleness against
#: out-of-band writers (tests poking the store, a future multi-process
#: deployment), so it can be generous.
DEFAULT_CACHE_TTL = 0.5


@dataclass
class SchedulingDecision:
    host: str
    #: "warm-local", "shared", "resident", "cold-local", or "cold-spread"
    #: (a batch's cold overflow placed on a live peer).
    reason: str

    @property
    def is_cold(self) -> bool:
        """True when the target must cold-start (restore or boot) — both
        genuinely cold and page-resident placements start a new Faaslet."""
        return self.reason in ("cold-local", "resident", "cold-spread")


class _CacheEntry:
    __slots__ = ("epoch", "expires", "value")

    def __init__(self, epoch: int, expires: float, value):
        self.epoch = epoch
        self.expires = expires
        self.value = value


class WarmSetRegistry:
    """The per-function warm-host sets, held in the global state tier.

    Warm sets are *advisory* routing data: when the global tier is
    transiently unavailable (a chaos stripe outage), reads degrade to "no
    warm hosts" (the scheduler cold-starts locally) and writes are dropped
    — the set self-heals on the next cold start — instead of taking the
    dispatch path down with the state tier.

    Reads are served from a per-key **epoch/TTL cache** of the parsed
    snapshot: a mutation through this registry bumps the key's epoch
    (invalidating the cached parse), and entries also expire after
    ``cache_ttl`` seconds as a backstop against writers the epoch cannot
    observe. The cache is what takes the global-tier round trip and the
    JSON parse off the per-dispatch hot path; hits/misses are counted in
    ``sched.cache_hits`` / ``sched.cache_misses``.
    """

    def __init__(
        self,
        store: GlobalStateStore,
        cache_ttl: float = DEFAULT_CACHE_TTL,
        metrics: MetricsRegistry | None = None,
    ):
        self.store = store
        self.cache_ttl = cache_ttl
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._cache_hits = metrics.counter("sched.cache_hits")
        self._cache_misses = metrics.counter("sched.cache_misses")
        self._cache: dict[str, _CacheEntry] = {}
        self._epochs: dict[str, int] = {}
        self._cache_lock = threading.Lock()

    def _key(self, function: str) -> str:
        return _WARM_PREFIX + function

    # ------------------------------------------------------------------
    # Epoch/TTL snapshot cache
    # ------------------------------------------------------------------
    def _invalidate(self, key: str) -> None:
        """A mutation went through this registry: bump the key's epoch so
        every cached parse of it is dead."""
        with self._cache_lock:
            self._epochs[key] = self._epochs.get(key, 0) + 1

    def _cached_read(self, key: str, parse, default):
        """The memoised read-through: parsed snapshot of ``key``, from
        cache when its epoch still matches and the TTL has not lapsed."""
        now = time.monotonic()
        with self._cache_lock:
            entry = self._cache.get(key)
            epoch = self._epochs.get(key, 0)
        if entry is not None and entry.epoch == epoch and now < entry.expires:
            self._cache_hits.inc()
            return entry.value
        self._cache_misses.inc()
        try:
            raw, _version = self.store.get_value_versioned(key)
            value = parse(raw)
        except StateKeyError:
            value = default
        except StateUnavailableError:
            # Degrade without caching: the tier is dark, answer "empty"
            # now but re-probe as soon as it is back.
            return default
        with self._cache_lock:
            # Tagged with the epoch read *before* the store round trip: a
            # concurrent mutation at worst wastes this entry, never lets
            # a stale parse outlive its epoch.
            self._cache[key] = _CacheEntry(epoch, now + self.cache_ttl, value)
        return value

    def cache_info(self) -> dict:
        """Hit/miss counters and entry count (tests, ``repro ingest``)."""
        with self._cache_lock:
            entries = len(self._cache)
        return {
            "hits": int(self._cache_hits.value),
            "misses": int(self._cache_misses.value),
            "entries": entries,
        }

    # ------------------------------------------------------------------
    # Warm sets
    # ------------------------------------------------------------------
    def warm_hosts(self, function: str) -> set[str]:
        cached = self._cached_read(
            self._key(function),
            lambda raw: frozenset(json.loads(raw.decode())),
            frozenset(),
        )
        return set(cached)

    def add(self, function: str, host: str) -> None:
        def update(old: bytes | None) -> bytes:
            hosts = set(json.loads(old.decode())) if old else set()
            hosts.add(host)
            return json.dumps(sorted(hosts)).encode()

        try:
            self.store.atomic_update(self._key(function), update)
        except StateUnavailableError:
            pass
        finally:
            self._invalidate(self._key(function))

    def remove(self, function: str, host: str) -> None:
        def update(old: bytes | None) -> bytes:
            hosts = set(json.loads(old.decode())) if old else set()
            hosts.discard(host)
            return json.dumps(sorted(hosts)).encode()

        try:
            self.store.atomic_update(self._key(function), update)
        except StateUnavailableError:
            pass
        finally:
            self._invalidate(self._key(function))

    def functions(self) -> list[str]:
        """Every function that currently has a warm set."""
        return [
            key[len(_WARM_PREFIX):]
            for key in self.store.keys()
            if key.startswith(_WARM_PREFIX)
        ]

    # ------------------------------------------------------------------
    # Snapshot residency advertisements (locality-aware placement)
    # ------------------------------------------------------------------
    def _resident_key(self, function: str) -> str:
        return _RESIDENT_PREFIX + function

    def resident_hosts(self, function: str) -> dict[str, float]:
        """Hosts whose PageStore (partially) covers ``function``'s current
        snapshot, mapped to their advertised coverage fraction."""
        cached = self._cached_read(
            self._resident_key(function),
            lambda raw: tuple(
                (h, float(c)) for h, c in json.loads(raw.decode()).items()
            ),
            (),
        )
        return dict(cached)

    def advertise_residency(self, function: str, host: str, coverage: float) -> None:
        """A host just materialised (or refreshed) ``function``'s snapshot:
        record what fraction of the manifest's pages it holds."""

        def update(old: bytes | None) -> bytes:
            entries = json.loads(old.decode()) if old else {}
            entries[host] = round(float(coverage), 4)
            return json.dumps(entries, sort_keys=True).encode()

        try:
            self.store.atomic_update(self._resident_key(function), update)
        except StateUnavailableError:
            pass
        finally:
            self._invalidate(self._resident_key(function))

    def withdraw_residency(self, function: str, host: str) -> None:
        def update(old: bytes | None) -> bytes:
            entries = json.loads(old.decode()) if old else {}
            entries.pop(host, None)
            return json.dumps(entries, sort_keys=True).encode()

        try:
            self.store.atomic_update(self._resident_key(function), update)
        except StateUnavailableError:
            pass
        finally:
            self._invalidate(self._resident_key(function))

    def resident_functions(self) -> list[str]:
        return [
            key[len(_RESIDENT_PREFIX):]
            for key in self.store.keys()
            if key.startswith(_RESIDENT_PREFIX)
        ]

    def evict_host(self, host: str) -> int:
        """Drop ``host`` from every function's warm set and residency map
        (the host died — its pools *and* its page cache are gone); returns
        the number of warm sets it was actually removed from."""
        evicted = 0
        for function in self.functions():
            if host in self.warm_hosts(function):
                self.remove(function, host)
                evicted += 1
        for function in self.resident_functions():
            if host in self.resident_hosts(function):
                self.withdraw_residency(function, host)
        return evicted


class LocalScheduler:
    """One host's scheduler; consults and updates the shared warm sets."""

    def __init__(
        self,
        host: str,
        warm_sets: WarmSetRegistry,
        capacity_fn,
        peer_capacity_fn,
        live_fn=None,
        peers_fn=None,
    ):
        """``capacity_fn() -> int`` reports this host's free slots;
        ``peer_capacity_fn(host) -> int`` reports a peer's;
        ``live_fn(host) -> bool`` (optional) reports host liveness so a
        dead host still listed in a warm set is never chosen;
        ``peers_fn() -> list[str]`` (optional) lists every live host, the
        universe :meth:`schedule_batch` spreads cold overflow over."""
        self.host = host
        self.warm_sets = warm_sets
        self._capacity = capacity_fn
        self._peer_capacity = peer_capacity_fn
        self._live = live_fn if live_fn is not None else (lambda host: True)
        self._peers = peers_fn if peers_fn is not None else (lambda: [host])
        #: Decision counters for tests/benchmarks.
        self.decisions: dict[str, int] = {
            "warm-local": 0,
            "shared": 0,
            "resident": 0,
            "cold-local": 0,
            "cold-spread": 0,
        }

    def _resident_candidate(self, function: str) -> str | None:
        """The best live page-resident host with capacity, or None.

        Candidates rank by advertised PageStore coverage of the function's
        snapshot manifest (then by name, for determinism): restoring where
        the pages already live ships only the missing delta, so a
        mostly-resident host beats a genuinely cold one even though both
        must start a fresh Faaslet.
        """
        resident = self.warm_sets.resident_hosts(function)
        ranked = sorted(resident.items(), key=lambda hc: (-hc[1], hc[0]))
        for host, coverage in ranked:
            if coverage <= 0.0 or not self._live(host):
                continue
            capacity = (
                self._capacity() if host == self.host
                else self._peer_capacity(host)
            )
            if capacity > 0:
                return host
        return None

    def likely_hosts(
        self, function: str, default: str | None = None
    ) -> list[str]:
        """Ranked guess at where ``function``'s next call will land,
        for speculative page pre-placement (DESIGN.md §10): warm hosts
        first (the :meth:`schedule` fast path), then page-resident hosts
        by advertised coverage, then ``default``. Purely advisory — a
        wrong guess wastes some background page shipping, nothing else."""
        out: list[str] = []
        for host in sorted(self.warm_sets.warm_hosts(function)):
            if self._live(host) and host not in out:
                out.append(host)
        resident = self.warm_sets.resident_hosts(function)
        for host, coverage in sorted(
            resident.items(), key=lambda hc: (-hc[1], hc[0])
        ):
            if coverage > 0.0 and self._live(host) and host not in out:
                out.append(host)
        if default is not None and self._live(default) and default not in out:
            out.append(default)
        return out

    def schedule(self, function: str) -> SchedulingDecision:
        with span("schedule", function=function) as sp:
            warm = {
                h for h in self.warm_sets.warm_hosts(function) if self._live(h)
            }
            if self.host in warm and self._capacity() > 0:
                decision = SchedulingDecision(self.host, "warm-local")
            else:
                shared_to = None
                for peer in sorted(warm):
                    if peer != self.host and self._peer_capacity(peer) > 0:
                        shared_to = peer
                        break
                if shared_to is not None:
                    decision = SchedulingDecision(shared_to, "shared")
                else:
                    resident_to = self._resident_candidate(function)
                    if resident_to is not None:
                        # Snapshot-locality placement: the target must
                        # restore (cold for the pool), but its PageStore
                        # already holds the pages. It becomes warm once
                        # the restore lands, so advertise it now — the
                        # same optimistic claim cold-local makes below.
                        self.warm_sets.add(function, resident_to)
                        decision = SchedulingDecision(resident_to, "resident")
                    else:
                        # Cold start locally and advertise this host as warm.
                        self.warm_sets.add(function, self.host)
                        decision = SchedulingDecision(self.host, "cold-local")
            self.decisions[decision.reason] += 1
            sp.set_attr("reason", decision.reason)
            sp.set_attr("warm_hosts", len(warm))
        return decision

    def schedule_batch(self, function: str, count: int) -> list[SchedulingDecision]:
        """Place ``count`` calls of one function in a single pass.

        The batched hot path: the warm-set and residency snapshots are
        read once (usually straight from the epoch cache), every
        candidate's capacity is surveyed once, and placements draw that
        capacity down against a local model instead of re-querying per
        call. Warm capacity fills first (local, then peers), then one
        page-resident host, and any overflow spreads round-robin: over
        the warm hosts when some exist (the calls queue for warm
        Faaslets), otherwise cold across the live hosts so a cold burst
        lands cluster-wide instead of serialising on the entry host.
        """
        if count <= 0:
            return []
        with span("schedule.batch", function=function) as sp:
            warm = sorted(
                h for h in self.warm_sets.warm_hosts(function) if self._live(h)
            )
            capacity = {
                h: (self._capacity() if h == self.host
                    else self._peer_capacity(h))
                for h in warm
            }
            decisions: list[SchedulingDecision] = []

            def place(host: str, reason: str, n: int) -> None:
                for _ in range(n):
                    decisions.append(SchedulingDecision(host, reason))
                self.decisions[reason] += n

            # Tier 1: local warm capacity, then warm peers by name.
            if self.host in capacity:
                take = min(count - len(decisions), max(0, capacity[self.host]))
                if take:
                    place(self.host, "warm-local", take)
                    capacity[self.host] -= take
            for peer in warm:
                if peer == self.host or len(decisions) >= count:
                    continue
                take = min(count - len(decisions), max(0, capacity[peer]))
                if take:
                    place(peer, "shared", take)
                    capacity[peer] -= take

            # Tier 2: one page-resident host soaks up to its capacity.
            if len(decisions) < count and not warm:
                resident_to = self._resident_candidate(function)
                if resident_to is not None:
                    room = max(
                        1,
                        self._capacity() if resident_to == self.host
                        else self._peer_capacity(resident_to),
                    )
                    take = min(count - len(decisions), room)
                    self.warm_sets.add(function, resident_to)
                    place(resident_to, "resident", take)

            # Tier 3: overflow. Queue round-robin on warm hosts when any
            # exist; otherwise spread the cold burst over the live hosts.
            remaining = count - len(decisions)
            if remaining > 0:
                if warm:
                    for i in range(remaining):
                        host = warm[i % len(warm)]
                        place(
                            host,
                            "warm-local" if host == self.host else "shared",
                            1,
                        )
                else:
                    targets = [h for h in self._peers() if self._live(h)]
                    if self.host in targets:  # entry host soaks first
                        targets.remove(self.host)
                    targets.insert(0, self.host)
                    for i in range(remaining):
                        host = targets[i % len(targets)]
                        reason = (
                            "cold-local" if host == self.host else "cold-spread"
                        )
                        place(host, reason, 1)
                    for host in dict.fromkeys(targets[: min(remaining, len(targets))]):
                        self.warm_sets.add(function, host)
            sp.set_attr("count", count)
            sp.set_attr("warm_hosts", len(warm))
        return decisions
