"""Distributed shared-state scheduling (§5.1) with snapshot locality.

FAASM's local schedulers cooperate through the global state tier, in the
style of Omega: the set of warm hosts for each function lives under a state
key, and every scheduler may read and atomically update it while making a
placement decision. An incoming call is executed locally when the receiving
host is warm and has capacity, shared with another warm host when one
exists, and otherwise cold-started — preferring a *page-resident* host
(one whose PageStore already covers the function's snapshot manifest, so
the restore ships no or few pages) over a genuinely cold one. Placement
quality is therefore warm > mostly-resident > cold, which is what keeps
Fig. 10 churn migration cost at O(delta) instead of O(snapshot size).

Residency advertisements live next to the warm sets in the global tier and
are, like them, advisory: stale or missing entries only cost transfer
bytes, never correctness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.state.kv import GlobalStateStore, StateUnavailableError
from repro.telemetry import span

_WARM_PREFIX = "faasm/sched/warm/"
_RESIDENT_PREFIX = "faasm/sched/resident/"


@dataclass
class SchedulingDecision:
    host: str
    reason: str  # "warm-local", "shared", "resident", "cold-local"

    @property
    def is_cold(self) -> bool:
        """True when the target must cold-start (restore or boot) — both
        genuinely cold and page-resident placements start a new Faaslet."""
        return self.reason in ("cold-local", "resident")


class WarmSetRegistry:
    """The per-function warm-host sets, held in the global state tier.

    Warm sets are *advisory* routing data: when the global tier is
    transiently unavailable (a chaos stripe outage), reads degrade to "no
    warm hosts" (the scheduler cold-starts locally) and writes are dropped
    — the set self-heals on the next cold start — instead of taking the
    dispatch path down with the state tier.
    """

    def __init__(self, store: GlobalStateStore):
        self.store = store

    def _key(self, function: str) -> str:
        return _WARM_PREFIX + function

    def warm_hosts(self, function: str) -> set[str]:
        try:
            if not self.store.exists(self._key(function)):
                return set()
            return set(
                json.loads(self.store.get_value(self._key(function)).decode())
            )
        except StateUnavailableError:
            return set()

    def add(self, function: str, host: str) -> None:
        def update(old: bytes | None) -> bytes:
            hosts = set(json.loads(old.decode())) if old else set()
            hosts.add(host)
            return json.dumps(sorted(hosts)).encode()

        try:
            self.store.atomic_update(self._key(function), update)
        except StateUnavailableError:
            pass

    def remove(self, function: str, host: str) -> None:
        def update(old: bytes | None) -> bytes:
            hosts = set(json.loads(old.decode())) if old else set()
            hosts.discard(host)
            return json.dumps(sorted(hosts)).encode()

        try:
            self.store.atomic_update(self._key(function), update)
        except StateUnavailableError:
            pass

    def functions(self) -> list[str]:
        """Every function that currently has a warm set."""
        return [
            key[len(_WARM_PREFIX):]
            for key in self.store.keys()
            if key.startswith(_WARM_PREFIX)
        ]

    # ------------------------------------------------------------------
    # Snapshot residency advertisements (locality-aware placement)
    # ------------------------------------------------------------------
    def _resident_key(self, function: str) -> str:
        return _RESIDENT_PREFIX + function

    def resident_hosts(self, function: str) -> dict[str, float]:
        """Hosts whose PageStore (partially) covers ``function``'s current
        snapshot, mapped to their advertised coverage fraction."""
        try:
            if not self.store.exists(self._resident_key(function)):
                return {}
            raw = self.store.get_value(self._resident_key(function))
            return {h: float(c) for h, c in json.loads(raw.decode()).items()}
        except StateUnavailableError:
            return {}

    def advertise_residency(self, function: str, host: str, coverage: float) -> None:
        """A host just materialised (or refreshed) ``function``'s snapshot:
        record what fraction of the manifest's pages it holds."""

        def update(old: bytes | None) -> bytes:
            entries = json.loads(old.decode()) if old else {}
            entries[host] = round(float(coverage), 4)
            return json.dumps(entries, sort_keys=True).encode()

        try:
            self.store.atomic_update(self._resident_key(function), update)
        except StateUnavailableError:
            pass

    def withdraw_residency(self, function: str, host: str) -> None:
        def update(old: bytes | None) -> bytes:
            entries = json.loads(old.decode()) if old else {}
            entries.pop(host, None)
            return json.dumps(entries, sort_keys=True).encode()

        try:
            self.store.atomic_update(self._resident_key(function), update)
        except StateUnavailableError:
            pass

    def resident_functions(self) -> list[str]:
        return [
            key[len(_RESIDENT_PREFIX):]
            for key in self.store.keys()
            if key.startswith(_RESIDENT_PREFIX)
        ]

    def evict_host(self, host: str) -> int:
        """Drop ``host`` from every function's warm set and residency map
        (the host died — its pools *and* its page cache are gone); returns
        the number of warm sets it was actually removed from."""
        evicted = 0
        for function in self.functions():
            if host in self.warm_hosts(function):
                self.remove(function, host)
                evicted += 1
        for function in self.resident_functions():
            if host in self.resident_hosts(function):
                self.withdraw_residency(function, host)
        return evicted


class LocalScheduler:
    """One host's scheduler; consults and updates the shared warm sets."""

    def __init__(
        self,
        host: str,
        warm_sets: WarmSetRegistry,
        capacity_fn,
        peer_capacity_fn,
        live_fn=None,
    ):
        """``capacity_fn() -> int`` reports this host's free slots;
        ``peer_capacity_fn(host) -> int`` reports a peer's;
        ``live_fn(host) -> bool`` (optional) reports host liveness so a
        dead host still listed in a warm set is never chosen."""
        self.host = host
        self.warm_sets = warm_sets
        self._capacity = capacity_fn
        self._peer_capacity = peer_capacity_fn
        self._live = live_fn if live_fn is not None else (lambda host: True)
        #: Decision counters for tests/benchmarks.
        self.decisions: dict[str, int] = {
            "warm-local": 0,
            "shared": 0,
            "resident": 0,
            "cold-local": 0,
        }

    def _resident_candidate(self, function: str) -> str | None:
        """The best live page-resident host with capacity, or None.

        Candidates rank by advertised PageStore coverage of the function's
        snapshot manifest (then by name, for determinism): restoring where
        the pages already live ships only the missing delta, so a
        mostly-resident host beats a genuinely cold one even though both
        must start a fresh Faaslet.
        """
        resident = self.warm_sets.resident_hosts(function)
        ranked = sorted(resident.items(), key=lambda hc: (-hc[1], hc[0]))
        for host, coverage in ranked:
            if coverage <= 0.0 or not self._live(host):
                continue
            capacity = (
                self._capacity() if host == self.host
                else self._peer_capacity(host)
            )
            if capacity > 0:
                return host
        return None

    def likely_hosts(
        self, function: str, default: str | None = None
    ) -> list[str]:
        """Ranked guess at where ``function``'s next call will land,
        for speculative page pre-placement (DESIGN.md §10): warm hosts
        first (the :meth:`schedule` fast path), then page-resident hosts
        by advertised coverage, then ``default``. Purely advisory — a
        wrong guess wastes some background page shipping, nothing else."""
        out: list[str] = []
        for host in sorted(self.warm_sets.warm_hosts(function)):
            if self._live(host) and host not in out:
                out.append(host)
        resident = self.warm_sets.resident_hosts(function)
        for host, coverage in sorted(
            resident.items(), key=lambda hc: (-hc[1], hc[0])
        ):
            if coverage > 0.0 and self._live(host) and host not in out:
                out.append(host)
        if default is not None and self._live(default) and default not in out:
            out.append(default)
        return out

    def schedule(self, function: str) -> SchedulingDecision:
        with span("schedule", function=function) as sp:
            warm = {
                h for h in self.warm_sets.warm_hosts(function) if self._live(h)
            }
            if self.host in warm and self._capacity() > 0:
                decision = SchedulingDecision(self.host, "warm-local")
            else:
                shared_to = None
                for peer in sorted(warm):
                    if peer != self.host and self._peer_capacity(peer) > 0:
                        shared_to = peer
                        break
                if shared_to is not None:
                    decision = SchedulingDecision(shared_to, "shared")
                else:
                    resident_to = self._resident_candidate(function)
                    if resident_to is not None:
                        # Snapshot-locality placement: the target must
                        # restore (cold for the pool), but its PageStore
                        # already holds the pages. It becomes warm once
                        # the restore lands, so advertise it now — the
                        # same optimistic claim cold-local makes below.
                        self.warm_sets.add(function, resident_to)
                        decision = SchedulingDecision(resident_to, "resident")
                    else:
                        # Cold start locally and advertise this host as warm.
                        self.warm_sets.add(function, self.host)
                        decision = SchedulingDecision(self.host, "cold-local")
            self.decisions[decision.reason] += 1
            sp.set_attr("reason", decision.reason)
            sp.set_attr("warm_hosts", len(warm))
        return decision
