"""A FAASM runtime instance: one per host (§5, Fig. 5).

Each instance owns a pool of Faaslets (warm ones are reused across calls),
a local scheduler, the host's local state tier and a metered connection to
the global tier. Calls arrive from the cluster front door or from other
instances (work sharing); chained calls made by executing functions re-enter
the cluster through the instance's environment.
"""

from __future__ import annotations

import logging
import threading
import time

from repro.faaslet import (
    CpuCgroup,
    Faaslet,
    FunctionDefinition,
    HostSnapshotCache,
    NetworkNamespace,
)
from repro.host.environment import FaasletEnvironment
from repro.host.filesystem import VirtualFilesystem
from repro.state.api import StateAPI
from repro.state.kv import StateClient, StateUnavailableError, TransferMeter
from repro.state.local import LocalTier
from repro.state.prefetch import Prefetcher
from repro.telemetry import MetricsRegistry, context_from_wire, span

from .calls import CallRecord
from .pyguest import PythonCallContext
from .registry import PythonFunctionDefinition
from .scheduler import LocalScheduler

logger = logging.getLogger(__name__)

#: Default number of concurrent calls a host accepts (capacity for the
#: scheduler's shared-state decisions).
DEFAULT_CAPACITY = 8


class HostCrashed(RuntimeError):
    """An injected host failure: the host this code runs on just died.

    Raised by a chaos engine's phase hooks after it has killed the host;
    executor and dispatcher threads let it unwind — whatever they were
    doing is lost with the host, and the invocation monitor re-queues the
    affected calls from their attempt records.
    """


class RuntimeEnvironment(FaasletEnvironment):
    """The environment wiring Faaslets on one host into the cluster."""

    def __init__(self, instance: "FaasmRuntimeInstance"):
        self.instance = instance
        self.state = instance.state_api
        self.filesystem = instance.filesystem
        self.netns = instance.netns_template
        #: Cluster metrics registry, so per-Faaslet layers (guest-thread
        #: runtime) count into the cluster-wide series.
        self.metrics = instance.cluster.telemetry.metrics
        #: Host prefetcher, exposed so the ``prefetch_state`` host call can
        #: issue guest-directed hints (DESIGN.md §10).
        self.prefetcher = instance.prefetcher

    def chain_call(self, name: str, input_data: bytes) -> int:
        return self.instance.cluster.dispatch(name, input_data, origin=self.instance.host)

    def await_call(self, call_id: int) -> int:
        with span("call.await", call_id=call_id):
            return self.instance.cluster.calls.wait(call_id)

    def get_call_output(self, call_id: int) -> bytes:
        return self.instance.cluster.calls.output(call_id)


class InstanceMetrics:
    """Per-host lifecycle counters — a view over the cluster's metrics
    registry (labelled ``host=``), keeping the historic attribute API so
    ``instance.metrics.cold_starts`` consumers are unaffected while the
    same series aggregate cluster-wide through the registry."""

    def __init__(self, metrics: MetricsRegistry | None = None, host: str = ""):
        # `is None`, not truthiness: an empty registry has len() == 0.
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._calls = metrics.counter("instance.calls_executed", host=host)
        self._cold = metrics.counter("instance.cold_starts", host=host)
        self._warm = metrics.counter("instance.warm_hits", host=host)
        self._init = metrics.histogram("instance.init_time", host=host)

    def record_call(self) -> None:
        self._calls.inc()

    def record_cold_start(self, init_time: float) -> None:
        self._cold.inc()
        self._init.observe(init_time)

    def record_warm_hit(self) -> None:
        self._warm.inc()

    @property
    def calls_executed(self) -> int:
        return self._calls.value

    @property
    def cold_starts(self) -> int:
        return self._cold.value

    @property
    def warm_hits(self) -> int:
        return self._warm.value

    @property
    def init_time_total(self) -> float:
        return self._init.sum

    @property
    def cold_ratio(self) -> float:
        if not self.calls_executed:
            return 0.0
        return self.cold_starts / self.calls_executed


class FaasmRuntimeInstance:
    """One host's runtime: Faaslet pool + local scheduler + state tiers."""

    def __init__(
        self,
        host: str,
        cluster,
        capacity: int = DEFAULT_CAPACITY,
        reset_between_calls: bool = False,
    ):
        self.host = host
        self.cluster = cluster
        self.capacity = capacity
        self.reset_between_calls = reset_between_calls

        meter = TransferMeter(cluster.telemetry.metrics, host=host)
        self.state_client = StateClient(cluster.global_state, meter)
        self.local_tier = LocalTier(host, self.state_client)
        self.state_api = StateAPI(self.local_tier)
        #: Profile-guided speculative state delivery (DESIGN.md §10):
        #: consulted on every dispatch; a no-op under the default
        #: ``DeliveryPolicy.off()``.
        self.prefetcher = Prefetcher(
            host,
            self.local_tier,
            cluster.profile_store,
            cluster.delivery,
            metrics=cluster.telemetry.metrics,
        )
        self.filesystem = VirtualFilesystem(cluster.object_store, user=host)
        self.netns_template = NetworkNamespace(f"host-{host}", endpoints=cluster.endpoints)
        self.env = RuntimeEnvironment(self)
        self.cgroup = CpuCgroup(f"cg-{host}")

        self.scheduler = LocalScheduler(
            host,
            cluster.warm_sets,
            capacity_fn=self.free_capacity,
            peer_capacity_fn=cluster.peer_capacity,
            # Placement-eligibility, not raw liveness: a draining host
            # finishes its work but receives no new placements.
            live_fn=getattr(cluster, "placement_ok", None)
            or getattr(cluster, "host_alive", None),
            peers_fn=getattr(cluster, "live_hosts", None),
        )

        #: The content-addressed snapshot client: this host's PageStore
        #: plus the delta-pull protocol against the cluster repository.
        #: Materialised snapshots advertise page residency to the shared
        #: scheduler state (the locality signal for placement).
        self.snapshots = HostSnapshotCache(
            host,
            cluster.registry.snapshots,
            metrics=cluster.telemetry.metrics,
            on_residency=cluster.warm_sets.advertise_residency,
        )

        self._warm: dict[str, list[Faaslet]] = {}
        self._mutex = threading.Lock()
        self._executing = 0
        self.metrics = InstanceMetrics(cluster.telemetry.metrics, host=host)
        self._dispatcher: threading.Thread | None = None
        #: Bounded executor pool for batched dispatch (created lazily on
        #: the first ExecuteBatch): batch items run on these workers
        #: instead of a thread per call, which is most of the per-call
        #: overhead the ingestion plane removes. Chained calls re-enter
        #: through the per-call path (thread per call), so a pool worker
        #: blocked in ``await_call`` can never starve its own callee.
        self._pool_threads: list[threading.Thread] = []
        self._pool_queue = None
        self._pool_lock = threading.Lock()
        #: Graceful retirement: a draining host finishes its in-flight
        #: work but receives no new placements (the autoscaler's shrink
        #: path); distinct from ``alive`` so the invocation monitor does
        #: not write its in-flight attempts off.
        self.draining = False
        #: Calls received over the bus that were shared from another host.
        self.shared_received = 0
        #: Liveness: a dead host executes nothing and completes nothing.
        #: The epoch advances on every death, so attempt records dispatched
        #: to a previous life are detectable as lost (Fig. 5's independent
        #: host-failure assumption).
        self.alive = True
        self.epoch = 0
        #: Fault-injection hooks (a ChaosEngine), or None in production.
        self.chaos = getattr(cluster, "chaos", None)

    # ------------------------------------------------------------------
    # Message-bus dispatcher (Fig. 5)
    # ------------------------------------------------------------------
    def start_dispatcher(self) -> None:
        """Start the thread that drains this host's bus queue."""
        if self._dispatcher is not None:
            return
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, daemon=True, name=f"bus-{self.host}"
        )
        self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        from .bus import ExecuteBatch, ExecuteCall, Shutdown

        while True:
            message = self.cluster.bus.receive(self.host)
            if message is None or isinstance(message, Shutdown):
                self._stop_pool()
                return
            if not self.alive:
                # Dead hosts consume nothing: the drained message is lost
                # with the host and the monitor re-queues it from its
                # attempt record. The loop itself keeps draining (rather
                # than exiting) so a later restart() reuses it without
                # racing the thread-liveness check.
                continue
            if isinstance(message, ExecuteCall):
                try:
                    self._chaos_point("pre-dispatch", message)
                except HostCrashed:
                    continue  # died holding an undispatched message
                if message.shared:
                    self.shared_received += 1
                record = self.cluster.calls.get(message.call_id)
                # One thread per in-flight call: functions may block in
                # await_call, so calls must not share the dispatcher thread.
                threading.Thread(
                    target=self._execute_safely,
                    args=(record, message),
                    daemon=True,
                    name=f"call-{record.call_id}-{record.function}",
                ).start()
            elif isinstance(message, ExecuteBatch):
                self._expand_batch(message)

    # ------------------------------------------------------------------
    # Batched execution (ingestion plane, DESIGN.md §11)
    # ------------------------------------------------------------------
    def _expand_batch(self, batch) -> None:
        """Feed a batch's calls to the bounded worker pool, one chaos
        pre-dispatch point per carried call (same fault surface as the
        per-call path)."""
        from .bus import ExecuteCall

        queue = self._ensure_pool()
        accepted: list = []
        crashed = False
        for call_id, attempt in batch.items:
            message = ExecuteCall(
                call_id,
                batch.function,
                origin=batch.origin,
                shared=batch.shared,
                attempt=attempt,
            )
            try:
                self._chaos_point("pre-dispatch", message)
            except HostCrashed:
                # Died mid-expansion: this item and the rest of the batch
                # are lost with the host; the monitor re-queues them. The
                # already-accepted prefix still ships below, exactly as if
                # each item had been enqueued before the crash point.
                crashed = True
                break
            if batch.shared:
                self.shared_received += 1
            accepted.append(message)
        if accepted:
            # One registry lock for the records, one queue lock for the
            # hand-off — the receive-side half of batch amortisation.
            records = self.cluster.calls.get_many(
                [message.call_id for message in accepted]
            )
            queue.put_many(list(zip(records, accepted)))
        if crashed:
            return

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool_queue is None:
                from .bus import _HostQueue

                self._pool_queue = _HostQueue()
                n = max(2, self.capacity)
                for i in range(n):
                    thread = threading.Thread(
                        target=self._pool_loop,
                        daemon=True,
                        name=f"pool-{self.host}-{i}",
                    )
                    thread.start()
                    self._pool_threads.append(thread)
            return self._pool_queue

    def _pool_loop(self) -> None:
        while True:
            item = self._pool_queue.get()
            if item is None:
                return
            if not self.alive:
                # Lost with the host, exactly like an undrained bus
                # message: the attempt stays SENT under a dead epoch and
                # the monitor re-queues it elsewhere.
                continue
            record, message = item
            self._execute_safely(record, message)

    def _stop_pool(self) -> None:
        with self._pool_lock:
            if self._pool_queue is None:
                return
            for _ in self._pool_threads:
                self._pool_queue.put(None)

    def pool_backlog(self) -> int:
        """Batch items accepted from the bus but not yet executing."""
        with self._pool_lock:
            queue = self._pool_queue
        return queue.qsize() if queue is not None else 0

    def _chaos_point(self, phase: str, message: "ExecuteCall | None") -> None:
        """Give the chaos engine (if any) a chance to kill this host."""
        if self.chaos is not None and message is not None:
            self.chaos.on_phase(self, phase, message.call_id, message.attempt)

    def _execute_safely(self, record, message: "ExecuteCall | None" = None) -> None:
        attempt = message.attempt if message is not None else -1
        if attempt >= 0 and not self.cluster.calls.begin_attempt(
            record.call_id, attempt, self.host
        ):
            # Duplicate delivery, a stale retry, or the call already
            # finished elsewhere — drop it without executing.
            return
        try:
            self._execute_traced(record, message)
        except HostCrashed:
            # Injected host failure: the executor dies with the host; the
            # monitor detects the death and re-queues the call.
            pass
        except StateUnavailableError as exc:
            logger.warning(
                "call %s hit unavailable state tier: %s", record.call_id, exc
            )
            if attempt >= 0:
                self.cluster.calls.attempt_failed(
                    record.call_id, attempt, f"state unavailable: {exc}"
                )
            elif not record.done.is_set():
                self.cluster.calls.fail(record.call_id, str(exc))
        except Exception as exc:  # never kill the host on a bad call
            logger.exception("call %s crashed the executor", record.call_id)
            if not record.done.is_set():
                if attempt >= 0:
                    self.cluster.calls.complete_attempt(
                        record.call_id, attempt, 1, str(exc).encode()
                    )
                else:
                    self.cluster.calls.fail(record.call_id, str(exc))

    def _execute_traced(self, record, message: "ExecuteCall | None") -> None:
        """Execute under the trace context carried by the bus message.

        Executor threads start with an empty ambient context, so the
        sender's context is re-activated here — the receive-side half of
        cross-host propagation. Without a carried context (tracing off,
        or the trace was unsampled at its root) this is a plain execute.
        """
        wire = message.trace if message is not None else None
        if wire is None:
            self.execute(record, message)
            return
        tracer = self.cluster.telemetry.tracer
        with tracer.activate(context_from_wire(wire), host=self.host):
            with span(
                "call.invoke",
                call_id=record.call_id,
                function=record.function,
                shared=bool(message.shared),
            ) as sp:
                sp.set_attr("queue_wait_s", time.perf_counter() - wire[3])
                if message.attempt > 0:
                    sp.set_attr("attempt", message.attempt)
                self.execute(record, message)
                if record.return_code is not None:
                    sp.set_attr("return_code", record.return_code)
                sp.set_attr("cold_start", record.cold_start)

    def join_dispatcher(self, timeout: float = 5.0) -> None:
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
            self._dispatcher = None
        with self._pool_lock:
            threads, self._pool_threads = self._pool_threads, []
        for thread in threads:
            thread.join(timeout)

    # ------------------------------------------------------------------
    # Liveness (host-failure injection and recovery)
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """The host dies: it stops executing, its in-flight completions are
        lost, its liveness epoch ends, and the cluster evicts it from the
        warm sets. Idempotent per life."""
        with self._mutex:
            if not self.alive:
                return
            self.alive = False
            self.epoch += 1
        logger.warning("host %s died (epoch now %d)", self.host, self.epoch)
        self.cluster.on_host_death(self)

    def restart(self) -> None:
        """Bring a dead host back empty (warm pools and in-flight state
        died with the previous life); the already-advanced epoch keeps the
        old life's attempts detectable as lost."""
        with self._mutex:
            if self.alive:
                return
            self._warm.clear()
            self._executing = 0
            self.alive = True
        # The page cache died with the host's memory: restores on this new
        # life re-pull (residency ads were withdrawn by on_host_death).
        self.snapshots.clear()
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = None
            self.start_dispatcher()
        logger.info("host %s restarted (epoch %d)", self.host, self.epoch)

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def free_capacity(self) -> int:
        with self._mutex:
            return max(0, self.capacity - self._executing)

    def executing(self) -> int:
        """Calls currently running on this host."""
        with self._mutex:
            return self._executing

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, record: CallRecord, message=None) -> None:
        """Execute a call on this host (runs on the caller's thread)."""
        definition = self.cluster.registry.get(record.function)
        if message is not None and getattr(message, "invalidate", None):
            # Push-invalidate hints from the caller's host: remembered per
            # key and consumed by the local tier's next forced pull.
            self.local_tier.apply_invalidations(message.invalidate)
        # Kick off the profile-guided prefetch so hot state rides in
        # concurrently with faaslet acquisition / snapshot restore below.
        prefetch = self.prefetcher.begin(record.function)
        if prefetch is not None:
            self._chaos_point("mid-prefetch", message)
        with self._mutex:
            self._executing += 1
        try:
            if isinstance(definition, PythonFunctionDefinition):
                self._execute_python(record, definition, message)
            else:
                self._execute_wasm(record, definition, message)
        finally:
            with self._mutex:
                self._executing -= 1

    def _complete(self, record: CallRecord, message, code: int, output: bytes) -> None:
        """Write the call's completion — unless this host died meanwhile
        (a dead host's completions are lost, like the paper's crashed
        worker never answering the message bus)."""
        if message is not None and message.attempt >= 0:
            if not self.alive:
                return
            self.cluster.calls.complete_attempt(
                record.call_id, message.attempt, code, output
            )
        else:
            self.cluster.calls.complete(record.call_id, code, output)

    def _execute_python(self, record: CallRecord, definition, message=None) -> None:
        self.cluster.calls.mark_running(record.call_id, self.host, cold_start=False)
        self.metrics.record_call()
        self._chaos_point("mid-guest", message)
        ctx = PythonCallContext(self.env, record.input_data)
        try:
            with span("guest.exec", function=record.function, runtime="python"):
                result = definition.fn(ctx)
            code = int(result) if isinstance(result, int) else 0
            self._chaos_point("pre-complete", message)
            self._complete(record, message, code, ctx.output)
        except (HostCrashed, StateUnavailableError):
            raise  # infrastructure failures are the retry plane's business
        except Exception as exc:  # guest failure must not kill the host
            logger.exception("python guest %s failed", record.function)
            self._complete(record, message, 1, str(exc).encode())

    def _execute_wasm(
        self, record: CallRecord, definition: FunctionDefinition, message=None
    ) -> None:
        faaslet, cold = self._acquire_faaslet(definition)
        self.cluster.calls.mark_running(record.call_id, self.host, cold_start=cold)
        self.metrics.record_call()
        try:
            self._chaos_point("mid-guest", message)
            code, output = faaslet.call(record.input_data)
            self._chaos_point("pre-complete", message)
            self._complete(record, message, code, output)
        finally:
            self._release_faaslet(definition.name, faaslet)

    def _tap_profiler(self, faaslet: Faaslet, function: str) -> None:
        """Attach the continuous profiler's tap (when one is enabled) so
        the Faaslet's guest calls feed the per-function flamegraph."""
        profiler = self.cluster.telemetry.profiler
        if profiler is not None:
            profiler.attach(faaslet.instance, function)

    def _acquire_faaslet(self, definition: FunctionDefinition) -> tuple[Faaslet, bool]:
        with self._mutex:
            pool = self._warm.get(definition.name)
            if pool:
                self.metrics.record_warm_hit()
                with span("faaslet.acquire", function=definition.name) as sp:
                    sp.set_attr("mode", "warm")
                faaslet = pool.pop()
                self._tap_profiler(faaslet, definition.name)
                return faaslet, False
        # Cold start: restore from the Proto-Faaslet when one exists. The
        # snapshot client pulls (only) the pages this host is missing and
        # materialises a proto aliasing the host PageStore.
        with span("faaslet.acquire", function=definition.name) as sp:
            start = time.perf_counter()
            proto = self.snapshots.get_proto(definition)
            if proto is not None:
                sp.set_attr("mode", "proto-restore")
                faaslet = proto.restore(self.env)
            else:
                sp.set_attr("mode", "cold-boot")
                faaslet = Faaslet(definition, self.env)
            self.metrics.record_cold_start(time.perf_counter() - start)
        self.cgroup.add_member(faaslet.name)
        self._tap_profiler(faaslet, definition.name)
        return faaslet, True

    def _release_faaslet(self, function: str, faaslet: Faaslet) -> None:
        self.cgroup.charge(faaslet.name, faaslet.instance.instructions_executed)
        if self.reset_between_calls and faaslet.proto is not None:
            faaslet.reset()
        with self._mutex:
            self._warm.setdefault(function, []).append(faaslet)

    # ------------------------------------------------------------------
    # Pre-warming (scale-up ahead of traffic)
    # ------------------------------------------------------------------
    def pre_warm(self, function: str, count: int = 1) -> int:
        """Provision ``count`` warm Faaslets for ``function`` before any
        traffic arrives, registering this host in the shared warm set.
        Returns the number actually added."""
        definition = self.cluster.registry.get(function)
        if isinstance(definition, PythonFunctionDefinition):
            return 0  # Python guests have no per-instance isolation unit
        proto = self.snapshots.get_proto(definition)
        added = 0
        for _ in range(count):
            # Always create fresh instances (acquire would just recycle the
            # pool's existing idle Faaslet).
            if proto is not None:
                faaslet = proto.restore(self.env)
            else:
                faaslet = Faaslet(definition, self.env)
            self.cgroup.add_member(faaslet.name)
            self._tap_profiler(faaslet, function)
            with self._mutex:
                self._warm.setdefault(function, []).append(faaslet)
            added += 1
        if added:
            self.cluster.warm_sets.add(function, self.host)
        return added

    # ------------------------------------------------------------------
    # Pool reclamation (scale-to-zero)
    # ------------------------------------------------------------------
    def reclaim_idle(self, keep_per_function: int = 0) -> int:
        """Tear down idle warm Faaslets beyond ``keep_per_function``.

        The autoscaler's scale-down path: reclaimed Faaslets release their
        memory and cgroup membership, and a function whose local pool drops
        to zero is withdrawn from the shared warm set so other schedulers
        stop sharing work here (§5.1). Returns the number reclaimed.
        """
        reclaimed = 0
        with self._mutex:
            for function, pool in list(self._warm.items()):
                while len(pool) > keep_per_function:
                    faaslet = pool.pop()
                    self.cgroup.remove_member(faaslet.name)
                    reclaimed += 1
                if not pool:
                    del self._warm[function]
                    self.cluster.warm_sets.remove(function, self.host)
        return reclaimed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def warm_functions(self) -> list[str]:
        with self._mutex:
            return sorted(name for name, pool in self._warm.items() if pool)

    def warm_count(self, function: str) -> int:
        with self._mutex:
            return len(self._warm.get(function, []))

    def memory_footprint(self) -> int:
        """Private Faaslet memory + local-tier shared memory on this host."""
        with self._mutex:
            faaslets = [f for pool in self._warm.values() for f in pool]
        return sum(f.memory_footprint() for f in faaslets) + self.local_tier.memory_bytes()
