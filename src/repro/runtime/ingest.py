"""The open-loop ingestion plane (DESIGN.md §11).

The cluster's historic front door, :meth:`FaasmCluster.dispatch`, does a
full placement — warm-set read, attempt record, bus send — on the caller's
thread, per call. That is the right shape for chained calls and tests, but
at "millions of users" arrival rates the submitter must never block on
placement, one hot tenant must not starve the rest, and the per-call
bookkeeping (a global-tier round trip, a registry lock, a bus lock, a
thread spawn) has to amortise over batches. This module is that plane:

* :class:`AdmissionController` — bounded per-tenant FIFO queues under a
  **stride-scheduling weighted-fair queue**: each tenant carries a *pass*
  value that advances by ``served / weight`` whenever it is served, and
  the dispatcher always serves the backlogged tenant with the smallest
  pass, one batch at a time. The classic stride argument bounds unfairness
  at one service quantum: a continuously-backlogged tenant's share never
  exceeds ``weight_i / Σweights`` of total service by more than one batch
  (the property the hypothesis suite checks). A tenant re-entering the
  backlog has its pass caught up to the current virtual time, so idling
  earns no credit. A full queue sheds or defers per the tenant's policy —
  *deferred* is backpressure (resubmit later), *shed* is a drop; neither
  creates a call record, so no admitted call is ever stranded.

* :class:`IngestionPlane` — the async front door plus the batch
  dispatcher thread: admitted calls are grouped per function, placed with
  one :meth:`LocalScheduler.schedule_batch` decision, given attempt
  records under one registry lock (:meth:`InvocationRegistry.
  new_attempts`), and shipped as :class:`~repro.runtime.bus.ExecuteBatch`
  messages flushed with one :meth:`MessageBus.send_many` per host per
  round. Every admitted call still runs PR 4's full attempt-claim
  protocol on the receiving host, so exactly-once semantics and the
  chaos-fault surface are unchanged — only the per-call overhead is gone.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .bus import ExecuteBatch  # noqa: F401  (re-exported for callers)

#: Sliding window over which :meth:`IngestionPlane.stats` reports the
#: arrival rate.
_RATE_WINDOW_S = 5.0


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's admission contract."""

    name: str
    #: Fair-share weight: service is proportional to weight across
    #: backlogged tenants (within one batch, see the stride bound).
    weight: float = 1.0
    #: Bounded backlog: offers beyond this are shed or deferred.
    queue_limit: int = 10_000
    #: "defer" (backpressure — the caller may resubmit) or "shed" (drop).
    on_full: str = "defer"


@dataclass(frozen=True)
class IngestionConfig:
    """Ingestion-plane tuning knobs."""

    #: Service quantum: calls served from one tenant per WFQ pick, and the
    #: unit of the fairness bound.
    batch_size: int = 64
    #: Pre-declared tenants; unknown tenants are auto-created with the
    #: defaults below.
    tenants: tuple[TenantSpec, ...] = ()
    default_weight: float = 1.0
    default_queue_limit: int = 10_000
    default_on_full: str = "defer"
    #: Dispatcher wait granularity when the backlog is empty.
    idle_wait_s: float = 0.02


class _TenantState:
    __slots__ = ("spec", "queue", "pass_value", "served")

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        self.queue: deque = deque()
        self.pass_value = 0.0
        self.served = 0


class AdmissionController:
    """Bounded per-tenant queues under stride-scheduled weighted fairness.

    Thread-safe; the condition variable doubles as the dispatcher's wake
    signal, so an offer on an idle plane wakes the batch dispatcher
    immediately instead of waiting out its idle poll.
    """

    def __init__(self, config: IngestionConfig, metrics=None):
        self.config = config
        self._metrics = metrics
        self._tenants: dict[str, _TenantState] = {}
        self._cv = threading.Condition(threading.Lock())
        #: WFQ virtual time: the pass of the last tenant served, which
        #: re-backlogged tenants catch up to (idling earns no credit).
        self._vtime = 0.0
        for spec in config.tenants:
            self._tenants[spec.name] = _TenantState(spec)

    def _counter(self, name: str, tenant: str):
        if self._metrics is None:
            return None
        return self._metrics.counter(name, tenant=tenant)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(
                TenantSpec(
                    tenant,
                    weight=self.config.default_weight,
                    queue_limit=self.config.default_queue_limit,
                    on_full=self.config.default_on_full,
                )
            )
            self._tenants[tenant] = state
        return state

    def offer(self, tenant: str, make_item) -> tuple[str, object | None]:
        """Admit one submission for ``tenant``.

        ``make_item()`` is called — under the admission lock — only when
        the offer is admitted, so a shed/deferred submission creates no
        call record (nothing to strand). Returns ``(outcome, item)`` with
        outcome one of "admitted", "deferred", "shed".
        """
        with self._cv:
            state = self._state(tenant)
            if len(state.queue) >= state.spec.queue_limit:
                outcome = (
                    "shed" if state.spec.on_full == "shed" else "deferred"
                )
                counter = self._counter("ingest." + outcome, tenant)
                if counter is not None:
                    counter.inc()
                return outcome, None
            item = make_item()
            if not state.queue:
                # Re-entering the backlog: catch the pass up to virtual
                # time so time spent idle earns no service credit.
                state.pass_value = max(state.pass_value, self._vtime)
            state.queue.append(item)
            counter = self._counter("ingest.admitted", tenant)
            if counter is not None:
                counter.inc()
            self._cv.notify()
            return "admitted", item

    def offer_many(
        self, tenant: str, count: int, make_items
    ) -> tuple[list, int, str]:
        """Bulk :meth:`offer`: admit up to ``count`` submissions under one
        lock acquisition. ``make_items(k)`` builds the ``k`` admitted
        items (called under the lock, only for the admitted prefix).
        Returns ``(admitted_items, n_rejected, rejection_outcome)``."""
        with self._cv:
            state = self._state(tenant)
            room = max(0, state.spec.queue_limit - len(state.queue))
            take = min(room, count)
            rejected = count - take
            outcome = (
                "shed" if state.spec.on_full == "shed" else "deferred"
            )
            items = make_items(take) if take else []
            if items and not state.queue:
                state.pass_value = max(state.pass_value, self._vtime)
            state.queue.extend(items)
            if self._metrics is not None:
                if take:
                    self._metrics.counter(
                        "ingest.admitted", tenant=tenant
                    ).inc(take)
                if rejected:
                    self._metrics.counter(
                        "ingest." + outcome, tenant=tenant
                    ).inc(rejected)
            if items:
                self._cv.notify()
            return items, rejected, outcome

    def next_batch(
        self, max_items: int, timeout: float | None = None
    ) -> tuple[str | None, list]:
        """Serve up to ``max_items`` from the minimum-pass backlogged
        tenant (blocking up to ``timeout`` for backlog); the tenant's pass
        advances by ``served / weight``. Returns ``(tenant, items)`` or
        ``(None, [])`` on timeout."""
        with self._cv:
            if timeout is not None:
                deadline = time.monotonic() + timeout
                while not any(s.queue for s in self._tenants.values()):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cv.wait(remaining):
                        if not any(s.queue for s in self._tenants.values()):
                            return None, []
                        break
            backlogged = [
                (state.pass_value, name, state)
                for name, state in self._tenants.items()
                if state.queue
            ]
            if not backlogged:
                return None, []
            _, name, state = min(backlogged)
            self._vtime = state.pass_value
            items = []
            while state.queue and len(items) < max_items:
                items.append(state.queue.popleft())
            state.pass_value += len(items) / max(state.spec.weight, 1e-9)
            state.served += len(items)
        return name, items

    def backlog(self) -> int:
        with self._cv:
            return sum(len(s.queue) for s in self._tenants.values())

    def stats(self) -> dict:
        """Per-tenant queue depth / served counts (counters live in the
        metrics registry under ``ingest.*{tenant=}``)."""
        with self._cv:
            return {
                name: {
                    "queued": len(state.queue),
                    "served": state.served,
                    "weight": state.spec.weight,
                    "queue_limit": state.spec.queue_limit,
                    "on_full": state.spec.on_full,
                }
                for name, state in sorted(self._tenants.items())
            }


@dataclass
class _AdmittedItem:
    function: str
    record: object
    tenant: str = "default"
    enqueued_at: float = field(default=0.0)


class IngestionPlane:
    """The async front door and batch dispatcher for one cluster."""

    def __init__(self, cluster, config: IngestionConfig | None = None):
        self.cluster = cluster
        self.config = config if config is not None else IngestionConfig()
        self.admission = AdmissionController(
            self.config, metrics=cluster.telemetry.metrics
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Recently-admitted records, for sojourn percentiles.
        self._recent: deque = deque(maxlen=65536)
        self._admit_times: deque = deque(maxlen=16384)
        self._recent_lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._dispatch_loop, daemon=True, name="ingest-dispatch"
        )
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        # Wake the dispatcher out of its admission wait.
        with self.admission._cv:
            self.admission._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    # ------------------------------------------------------------------
    def submit(
        self,
        function: str,
        input_data: bytes = b"",
        tenant: str = "default",
    ) -> tuple[int | None, str]:
        """Admit a call without blocking on placement; the batch
        dispatcher places it later. ``(call_id, "admitted")``, or
        ``(None, "deferred"|"shed")`` under backpressure."""
        if not self.cluster.registry.exists(function):
            raise KeyError(f"unknown function {function!r}")

        def make_item():
            record = self.cluster.calls.create(function, input_data)
            return _AdmittedItem(
                function, record, tenant, enqueued_at=time.monotonic()
            )

        outcome, item = self.admission.offer(tenant, make_item)
        if outcome != "admitted":
            return None, outcome
        with self._recent_lock:
            self._recent.append(item.record)
            self._admit_times.append(item.enqueued_at)
        return item.record.call_id, "admitted"

    def submit_many(
        self,
        function: str,
        inputs: list[bytes],
        tenant: str = "default",
    ) -> list[tuple[int | None, str]]:
        """Bulk :meth:`submit`: one registry lock for all the call
        records, one admission lock for the whole batch — the open-loop
        generator's fast path. Returns one ``(call_id, outcome)`` per
        input; on a full queue the tail is rejected (deferred/shed)."""
        if not self.cluster.registry.exists(function):
            raise KeyError(f"unknown function {function!r}")
        inputs = list(inputs)

        def make_items(take: int):
            now = time.monotonic()
            records = self.cluster.calls.create_many(
                function, inputs[:take]
            )
            return [
                _AdmittedItem(function, record, tenant, enqueued_at=now)
                for record in records
            ]

        items, rejected, outcome = self.admission.offer_many(
            tenant, len(inputs), make_items
        )
        if items:
            with self._recent_lock:
                self._recent.extend(item.record for item in items)
                self._admit_times.extend(
                    item.enqueued_at for item in items
                )
        results = [
            (item.record.call_id, "admitted") for item in items
        ]
        results.extend([(None, outcome)] * rejected)
        return results

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            tenant, items = self.admission.next_batch(
                self.config.batch_size, timeout=self.config.idle_wait_s
            )
            if not items:
                continue
            self._dispatch_items(items)
        # Final sweep so a stop() racing late submissions strands nothing.
        while True:
            tenant, items = self.admission.next_batch(
                self.config.batch_size, timeout=None
            )
            if not items:
                break
            self._dispatch_items(items)

    def _dispatch_items(self, items: list) -> None:
        """One dispatch round: group a served batch by function, place
        each group with one batched scheduling decision, flush each target
        host's messages with one ``send_many``."""
        groups: dict[str, list] = {}
        for item in items:
            groups.setdefault(item.function, []).append(item.record)
        pending: dict[str, list] = {}
        for function, records in groups.items():
            self.cluster.dispatch_batch(function, records, collect=pending)
        for host, messages in pending.items():
            try:
                self.cluster.bus.send_many(host, messages)
            except KeyError:
                # Host deregistered between placement and flush (cluster
                # shutdown): the attempts stay SENT and the monitor's
                # liveness path re-queues them.
                pass

    # ------------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> None:
        """Wait for the admission backlog, the bus, and the pools to go
        empty, then for every dispatched call to finish (via
        :meth:`FaasmCluster.drain`, which raises on stragglers)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if (
                self.admission.backlog() == 0
                and self.cluster.bus.total_pending() == 0
                and all(
                    i.pool_backlog() == 0 for i in self.cluster.instances
                )
            ):
                break
            time.sleep(0.005)
        self.cluster.drain(timeout=max(0.1, deadline - time.monotonic()))

    def sojourn_percentiles(self) -> dict:
        """p50/p99 sojourn (submit -> finish) over recently-admitted,
        finished calls, in seconds."""
        with self._recent_lock:
            records = list(self._recent)
        latencies = sorted(
            r.latency for r in records if r.done.is_set() and r.finished_at
        )
        if not latencies:
            return {"p50": 0.0, "p99": 0.0, "n": 0}
        def pct(p):
            idx = min(len(latencies) - 1, int(p * (len(latencies) - 1)))
            return latencies[idx]
        return {"p50": pct(0.50), "p99": pct(0.99), "n": len(latencies)}

    def arrival_rate(self) -> float:
        """Admitted calls/sec over the trailing window."""
        now = time.monotonic()
        with self._recent_lock:
            times = list(self._admit_times)
        recent = [t for t in times if now - t <= _RATE_WINDOW_S]
        if not recent:
            return 0.0
        window = max(now - recent[0], 1e-6)
        return len(recent) / window

    def stats(self) -> dict:
        """The ingestion row: arrival rate, queue depths, sojourn, and
        per-tenant admission accounting."""
        depths = self.cluster.bus.update_queue_gauges()
        pools = sum(i.pool_backlog() for i in self.cluster.instances)
        sojourn = self.sojourn_percentiles()
        return {
            "arrival_rate": self.arrival_rate(),
            "admission_backlog": self.admission.backlog(),
            "bus_pending": sum(depths.values()),
            "pool_backlog": pools,
            "sojourn_p50_s": sojourn["p50"],
            "sojourn_p99_s": sojourn["p99"],
            "tenants": self.admission.stats(),
        }
