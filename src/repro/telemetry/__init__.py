"""Unified telemetry: lifecycle spans, metrics registry, exporters.

The reproduction's evaluation (like the paper's §6) is an exercise in
attributing latency to lifecycle phases — cold vs. warm start,
compile/link, guest execution, state movement. This package is the one
measurement substrate every layer reports into:

* :mod:`repro.telemetry.trace` — low-overhead span tracing with
  cross-host context propagation over the message bus;
* :mod:`repro.telemetry.metrics` — the labelled counter / gauge /
  histogram registry the ad-hoc counters are views over;
* :mod:`repro.telemetry.streaming` — log-bucketed streaming histograms
  (O(1) memory, bounded relative error, no recency bias);
* :mod:`repro.telemetry.profiles` — the online trace miner folding
  finished spans into persisted per-function access profiles;
* :mod:`repro.telemetry.profiler` — the continuous guest profiler and
  its collapsed-stack / speedscope flamegraph exporters;
* :mod:`repro.telemetry.slo` — rolling-window SLO monitors with burn
  rates and baseline regression flags;
* :mod:`repro.telemetry.openmetrics` — OpenMetrics text exposition and
  the message-bus scrape endpoint;
* :mod:`repro.telemetry.export` — JSON-lines, Chrome trace-event, and
  text exporters, plus the unified spans+metrics+dispatch artifact;
* :mod:`repro.telemetry.stats` — the shared percentile implementation.

A :class:`Telemetry` bundles one tracer and one registry — and,
opted in, the trace miner, guest profiler and SLO registry, all fed from
the tracer's span-finish callback; each
:class:`~repro.runtime.cluster.FaasmCluster` owns one (disabled by
default — the off path is a single context-variable read per
instrumentation site).
"""

from __future__ import annotations

from . import export
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import ContinuousProfiler
from .profiles import AccessProfile, ProfileStore, TraceMiner
from .slo import SLO, SLORegistry, check_regression
from .stats import percentile, summarize
from .streaming import StreamingHistogram
from .trace import (
    NOOP_SPAN,
    Span,
    SpanHandle,
    TraceContext,
    Tracer,
    context_from_wire,
    current_context,
    span,
)


class Telemetry:
    """One deployment's telemetry: a tracer plus a metrics registry.

    With ``record_span_metrics`` every finished span also lands in a
    ``span.<name>`` histogram (labelled by host), so phase latency
    distributions are queryable without walking the span list.

    ``mine_profiles=True`` attaches a :class:`TraceMiner` to the same
    span-finish callback — per-function access profiles accumulate
    online. ``guest_profiler=True`` creates a :class:`ContinuousProfiler`
    the runtime taps into every Faaslet it spawns. ``slos=True`` (or an
    :class:`SLORegistry`) tracks every function's ``call.invoke``
    latency against its objective. All three require ``enabled=True`` to
    see anything: they consume sampled spans.
    """

    def __init__(
        self,
        enabled: bool = False,
        sample_rate: float = 1.0,
        record_span_metrics: bool = True,
        max_spans: int = 100_000,
        mine_profiles: bool = False,
        guest_profiler: bool = False,
        profiler_interval: int = 64,
        slos: "SLORegistry | bool" = False,
    ):
        self.metrics = MetricsRegistry()
        self.profiles: TraceMiner | None = (
            TraceMiner() if mine_profiles else None
        )
        self.profiler: ContinuousProfiler | None = (
            ContinuousProfiler(interval=profiler_interval)
            if guest_profiler
            else None
        )
        if slos is True:
            self.slos: SLORegistry | None = SLORegistry()
        else:
            self.slos = slos or None
        self._record_span_metrics = record_span_metrics
        need_callback = (
            record_span_metrics
            or self.profiles is not None
            or self.slos is not None
        )
        self.tracer = Tracer(
            enabled=enabled,
            sample_rate=sample_rate,
            max_spans=max_spans,
            on_finish=self._observe_span if need_callback else None,
        )

    def _observe_span(self, finished: Span) -> None:
        if self._record_span_metrics:
            self.metrics.histogram(
                "span." + finished.name, host=finished.host or ""
            ).observe(finished.duration)
        if finished.name == "call.invoke":
            function = finished.attrs.get("function", "?")
            self.metrics.streaming_histogram(
                "function.latency", function=function
            ).observe(finished.duration)
            if self.slos is not None:
                self.slos.observe(
                    function,
                    finished.duration,
                    error=finished.attrs.get("return_code", 0) not in (0, None),
                )
        elif finished.name == "guest.exec":
            fuel = finished.attrs.get("fuel_consumed")
            if fuel is not None:
                self.metrics.streaming_histogram(
                    "function.fuel",
                    function=finished.attrs.get("function", "?"),
                ).observe(fuel)
        if self.profiles is not None:
            self.profiles.fold(finished)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def spans(self) -> list[Span]:
        return self.tracer.finished_spans()

    def clear_spans(self) -> None:
        self.tracer.clear()


__all__ = [
    "AccessProfile",
    "ContinuousProfiler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ProfileStore",
    "SLO",
    "SLORegistry",
    "Span",
    "SpanHandle",
    "StreamingHistogram",
    "Telemetry",
    "TraceContext",
    "TraceMiner",
    "Tracer",
    "check_regression",
    "context_from_wire",
    "current_context",
    "export",
    "percentile",
    "span",
    "summarize",
]
