"""Unified telemetry: lifecycle spans, metrics registry, exporters.

The reproduction's evaluation (like the paper's §6) is an exercise in
attributing latency to lifecycle phases — cold vs. warm start,
compile/link, guest execution, state movement. This package is the one
measurement substrate every layer reports into:

* :mod:`repro.telemetry.trace` — low-overhead span tracing with
  cross-host context propagation over the message bus;
* :mod:`repro.telemetry.metrics` — the labelled counter / gauge /
  histogram registry the ad-hoc counters are views over;
* :mod:`repro.telemetry.export` — JSON-lines, Chrome trace-event, and
  text exporters, plus the unified spans+metrics+dispatch artifact;
* :mod:`repro.telemetry.stats` — the shared percentile implementation.

A :class:`Telemetry` bundles one tracer and one registry; each
:class:`~repro.runtime.cluster.FaasmCluster` owns one (disabled by
default — the off path is a single context-variable read per
instrumentation site).
"""

from __future__ import annotations

from . import export
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .stats import percentile, summarize
from .trace import (
    NOOP_SPAN,
    Span,
    SpanHandle,
    TraceContext,
    Tracer,
    context_from_wire,
    current_context,
    span,
)


class Telemetry:
    """One deployment's telemetry: a tracer plus a metrics registry.

    With ``record_span_metrics`` every finished span also lands in a
    ``span.<name>`` histogram (labelled by host), so phase latency
    distributions are queryable without walking the span list.
    """

    def __init__(
        self,
        enabled: bool = False,
        sample_rate: float = 1.0,
        record_span_metrics: bool = True,
        max_spans: int = 100_000,
    ):
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            enabled=enabled,
            sample_rate=sample_rate,
            max_spans=max_spans,
            on_finish=self._observe_span if record_span_metrics else None,
        )

    def _observe_span(self, finished: Span) -> None:
        self.metrics.histogram(
            "span." + finished.name, host=finished.host or ""
        ).observe(finished.duration)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def spans(self) -> list[Span]:
        return self.tracer.finished_spans()

    def clear_spans(self) -> None:
        self.tracer.clear()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "SpanHandle",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "context_from_wire",
    "current_context",
    "export",
    "percentile",
    "span",
    "summarize",
]
