"""Shared descriptive-statistics helpers for all measurement layers.

One percentile implementation serves the whole codebase: the simulator's
:class:`~repro.sim.metrics.LatencyRecorder`, the telemetry
:class:`~repro.telemetry.metrics.Histogram`, and the span-summary
exporters all call :func:`percentile` here, so every reported p50/p99 in
the repo is computed identically (linear interpolation, the same method
the paper's kernel-density latency plots assume).
"""

from __future__ import annotations

import math


def percentile(values: list[float], pct: float) -> float:
    """Linear-interpolated percentile (pct in [0, 100]).

    Empty input returns 0.0 — the same convention as :func:`summarize`
    (which reports zeros for an empty series), so every consumer of a
    p50/p99 in the repo sees "no data" as 0 rather than an exception.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    # This form is exactly bounded by [ordered[lo], ordered[hi]] under
    # floating point, unlike the a*(1-f) + b*f formulation.
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


def summarize(values: list[float]) -> dict[str, float]:
    """count/mean/min/max/p50/p95/p99 of ``values`` (empty -> zeros)."""
    if not values:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
    }
