"""Telemetry exporters: trace trees, JSON-lines, Chrome trace, text.

One invocation's telemetry leaves the process in three shapes:

* **JSON-lines** — one record per span (plus optional ``dispatch`` and
  ``metrics`` records), the grep-able archival format;
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` or
  Perfetto: hosts map to processes, executor threads to tracks, spans to
  complete ("X") events;
* **text summary** — a per-span-name latency table for terminals.

The *unified artifact* (:func:`build_artifact`) bundles spans, a metrics
snapshot and — when the run was profiled — the interpreter's per-opcode
dispatch counters, so one file carries everything `repro trace` and
`repro profile` can measure about a run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .stats import summarize
from .trace import Span

ARTIFACT_FORMAT = "repro-telemetry/1"


# ----------------------------------------------------------------------
# Trace trees
# ----------------------------------------------------------------------
@dataclass
class SpanNode:
    """One span with its resolved children, ordered by start time."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.name

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def build_trees(spans: list[Span]) -> list[SpanNode]:
    """Assemble spans into per-trace trees (roots ordered by start).

    A span whose parent id is missing from the set (dropped by the
    span cap, or exported partially) becomes a root, so the result is
    always a forest covering every span exactly once.
    """
    nodes = {s.span_id: SpanNode(s) for s in spans}
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.span.parent_id) if node.span.parent_id else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.span.start)
    roots.sort(key=lambda n: n.span.start)
    return roots


def phase_attribution(node: SpanNode) -> dict[str, float]:
    """Attribute a span's wall time to its direct child phases.

    Returns ``{child-name: seconds, ..., "self": seconds}`` where
    ``self`` is the time not covered by any child. Children are clipped
    to the parent's interval first — a child on another thread can
    outlive its parent (a ``call.invoke`` outliving the quick
    ``call.dispatch`` that sent it over the bus), and only the
    overlapping part is the parent's wall time. With sequential
    (non-overlapping) children the values sum to the span's duration
    exactly; overlapping children (concurrent chained calls) are merged
    before the ``self`` subtraction, so ``self`` never goes negative.
    """
    phases: dict[str, float] = {}
    intervals = []
    for child in node.children:
        start = max(child.span.start, node.span.start)
        end = min(child.span.end, node.span.end)
        if end <= start:
            phases.setdefault(child.name, 0.0)
            continue
        phases[child.name] = phases.get(child.name, 0.0) + (end - start)
        intervals.append((start, end))
    covered = 0.0
    cursor = None
    for start, end in sorted(intervals):
        if cursor is None or start > cursor:
            covered += end - start
            cursor = end
        elif end > cursor:
            covered += end - cursor
            cursor = end
    phases["self"] = max(0.0, node.span.duration - covered)
    return phases


# ----------------------------------------------------------------------
# Unified artifact
# ----------------------------------------------------------------------
def dispatch_section(instance) -> dict:
    """Opcode-dispatch counters of a ``profile=True`` wasm instance in
    artifact form (the `repro profile` output, made embeddable)."""
    if instance.op_counts is None:
        raise ValueError("instance was not created with profile=True")
    return {
        "total": instance.instructions_executed,
        "opcodes": dict(instance.op_counts.most_common()),
        "families": dict(instance.dispatch_family_report()),
        "pairs": [
            [a, b, count] for (a, b), count in instance.pair_counts.most_common()
        ],
    }


def build_artifact(
    spans: list[Span],
    metrics: dict | None = None,
    dispatch: dict | None = None,
) -> dict:
    """The unified telemetry artifact: spans + metrics + dispatch counts."""
    artifact = {
        "format": ARTIFACT_FORMAT,
        "spans": [s.to_dict() for s in spans],
    }
    if metrics is not None:
        artifact["metrics"] = metrics
    if dispatch is not None:
        artifact["dispatch"] = dispatch
    return artifact


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------
def to_jsonl(
    spans: list[Span],
    metrics: dict | None = None,
    dispatch: dict | None = None,
) -> str:
    """One JSON record per line: spans, then optional trailer records."""
    lines = [json.dumps({"type": "span", **s.to_dict()}) for s in spans]
    if metrics is not None:
        lines.append(json.dumps({"type": "metrics", "metrics": metrics}))
    if dispatch is not None:
        lines.append(json.dumps({"type": "dispatch", **dispatch}))
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def to_chrome_trace(
    spans: list[Span],
    metrics: dict | None = None,
    dispatch: dict | None = None,
) -> dict:
    """Chrome trace-event JSON (the object form with ``traceEvents``).

    Hosts become processes (``pid``), the recording thread becomes the
    track (``tid``), and every span is a complete ("X") event whose
    ``ts``/``dur`` are microseconds from the earliest span start.
    Extra payloads (metrics snapshot, dispatch counters) travel in
    ``otherData``, which the Chrome loader preserves.
    """
    events: list[dict] = []
    if spans:
        t0 = min(s.start for s in spans)
        pids = {s.host or "local" for s in spans}
        for pid in sorted(pids):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": pid},
                }
            )
        for s in spans:
            events.append(
                {
                    "name": s.name,
                    "cat": s.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": (s.start - t0) * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": s.host or "local",
                    "tid": s.thread,
                    "args": {
                        "trace_id": s.trace_id,
                        "span_id": s.span_id,
                        "parent_id": s.parent_id,
                        **s.attrs,
                    },
                }
            )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    other: dict = {"format": ARTIFACT_FORMAT}
    if metrics is not None:
        other["metrics"] = metrics
    if dispatch is not None:
        other["dispatch"] = dispatch
    doc["otherData"] = other
    return doc


# ----------------------------------------------------------------------
# Text summary
# ----------------------------------------------------------------------
def text_summary(spans: list[Span]) -> str:
    """Per-span-name latency table (count, total, mean, p50, p99)."""
    by_name: dict[str, list[float]] = {}
    for s in spans:
        by_name.setdefault(s.name, []).append(s.duration)
    if not by_name:
        return "(no spans recorded)"
    header = (
        f"{'span':<24}{'count':>8}{'total ms':>12}{'mean ms':>10}"
        f"{'p50 ms':>10}{'p99 ms':>10}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        stats = summarize(by_name[name])
        lines.append(
            f"{name:<24}{stats['count']:>8}"
            f"{sum(by_name[name]) * 1e3:>12.3f}{stats['mean'] * 1e3:>10.3f}"
            f"{stats['p50'] * 1e3:>10.3f}{stats['p99'] * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def tree_summary(spans: list[Span]) -> str:
    """Indented per-trace tree rendering (used by `repro trace`)."""
    lines: list[str] = []
    for root in build_trees(spans):
        lines.append(f"trace {root.span.trace_id}")
        _render(root, lines, depth=1)
    return "\n".join(lines) if lines else "(no spans recorded)"


def _render(node: SpanNode, lines: list[str], depth: int) -> None:
    s = node.span
    host = f" @{s.host}" if s.host else ""
    attrs = ", ".join(f"{k}={v}" for k, v in sorted(s.attrs.items()))
    attrs = f" [{attrs}]" if attrs else ""
    lines.append(
        f"{'  ' * depth}{s.name:<22} {s.duration * 1e3:9.3f} ms{host}{attrs}"
    )
    for child in node.children:
        _render(child, lines, depth + 1)
