"""Rolling-window SLO monitors: burn rates, alerts, regression flags.

An :class:`SLO` states the objective ("99% of calls complete under the
latency threshold, measured over a rolling window"); an
:class:`SLOMonitor` tracks one function against it using coarse time
buckets (O(window/bucket) memory, no per-call storage). The headline
signal is the **burn rate** — the ratio of the observed bad-call
fraction to the error budget ``1 - objective``: burn 1.0 spends the
budget exactly over the window, burn 14.4 exhausts a 30-day budget in
two days (the classic fast-burn page threshold). Alerts fire when both
the long window and a short recent window burn hot, the standard
multi-window rule that keeps one latency spike from paging.

:func:`check_regression` compares a live profile's latency distribution
against the function's **stored baseline profile** (the trace miner's
persisted artifact): p99 above ``tolerance ×`` baseline p99 flags a
regression — the guard the benchmarks' smoke floors apply to wall-clock
throughput, generalised to every deployed function.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

#: Burn rate above which the fast/slow window pair alerts (Google SRE
#: workbook's 1h/5m page threshold).
FAST_BURN = 14.4


@dataclass(frozen=True)
class SLO:
    """A latency objective over a rolling window."""

    #: A call slower than this (seconds) — or erroring — is "bad".
    latency_threshold: float = 1.0
    #: Target fraction of good calls in the window.
    objective: float = 0.99
    #: Rolling window length, seconds.
    window: float = 300.0
    #: Short window for the multi-window alert rule, seconds.
    short_window: float = 30.0

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


class SLOMonitor:
    """One function's compliance against an :class:`SLO`."""

    def __init__(self, slo: SLO, clock=time.monotonic, buckets: int = 30):
        self.slo = slo
        self.clock = clock
        self.bucket_s = slo.window / buckets
        self._lock = threading.Lock()
        #: bucket start time -> [good, bad]; pruned past the window.
        self._buckets: dict[float, list] = {}
        self.total_good = 0
        self.total_bad = 0

    # ------------------------------------------------------------------
    def observe(self, duration: float, error: bool = False) -> None:
        now = self.clock()
        bad = error or duration > self.slo.latency_threshold
        start = now - (now % self.bucket_s)
        with self._lock:
            bucket = self._buckets.get(start)
            if bucket is None:
                bucket = self._buckets[start] = [0, 0]
                self._prune(now)
            bucket[1 if bad else 0] += 1
            if bad:
                self.total_bad += 1
            else:
                self.total_good += 1

    def _prune(self, now: float) -> None:
        horizon = now - self.slo.window - self.bucket_s
        for start in [s for s in self._buckets if s < horizon]:
            del self._buckets[start]

    # ------------------------------------------------------------------
    def _window_counts(self, window: float, now: float) -> tuple[int, int]:
        horizon = now - window - 1e-9
        good = bad = 0
        for start, (g, b) in self._buckets.items():
            if start + self.bucket_s > horizon:
                good += g
                bad += b
        return good, bad

    def burn_rate(self, window: float | None = None) -> float:
        """Observed bad fraction over the window, relative to the error
        budget: 1.0 = spending exactly the budget, >1 = burning hot."""
        now = self.clock()
        with self._lock:
            self._prune(now)
            good, bad = self._window_counts(window or self.slo.window, now)
        total = good + bad
        if not total:
            return 0.0
        return (bad / total) / self.slo.error_budget

    def compliance(self) -> float:
        """Good-call fraction over the rolling window (1.0 when idle)."""
        now = self.clock()
        with self._lock:
            self._prune(now)
            good, bad = self._window_counts(self.slo.window, now)
        total = good + bad
        return good / total if total else 1.0

    def alerting(self, threshold: float = FAST_BURN) -> bool:
        """The multi-window rule: both the full window and the short
        recent window must burn above ``threshold`` to page."""
        return (
            self.burn_rate() >= threshold
            and self.burn_rate(self.slo.short_window) >= threshold
        )

    def status(self) -> dict:
        return {
            "objective": self.slo.objective,
            "threshold_s": self.slo.latency_threshold,
            "window_s": self.slo.window,
            "compliance": self.compliance(),
            "burn_rate": self.burn_rate(),
            "burn_rate_short": self.burn_rate(self.slo.short_window),
            "alerting": self.alerting(),
            "good": self.total_good,
            "bad": self.total_bad,
        }


class SLORegistry:
    """Per-function monitors, fed from finished ``call.invoke`` spans."""

    def __init__(self, default: SLO | None = None, clock=time.monotonic):
        self.default = default or SLO()
        self.clock = clock
        self._lock = threading.Lock()
        self._monitors: dict[str, SLOMonitor] = {}
        self._slos: dict[str, SLO] = {}

    def set_slo(self, function: str, slo: SLO) -> None:
        """Override the default objective for one function."""
        with self._lock:
            self._slos[function] = slo
            self._monitors.pop(function, None)

    def monitor(self, function: str) -> SLOMonitor:
        with self._lock:
            monitor = self._monitors.get(function)
            if monitor is None:
                slo = self._slos.get(function, self.default)
                monitor = self._monitors[function] = SLOMonitor(
                    slo, clock=self.clock
                )
            return monitor

    def observe(self, function: str, duration: float, error: bool = False) -> None:
        self.monitor(function).observe(duration, error)

    def functions(self) -> list[str]:
        with self._lock:
            return sorted(self._monitors)

    def report(self) -> dict[str, dict]:
        return {fn: self.monitor(fn).status() for fn in self.functions()}


def check_regression(
    profile, baseline, tolerance: float = 1.25
) -> dict | None:
    """Flag a latency regression of ``profile`` vs a stored ``baseline``
    :class:`~repro.telemetry.profiles.AccessProfile`.

    Returns a description dict when the live p99 exceeds ``tolerance ×``
    the baseline p99 (both from the profiles' streaming histograms, so
    neither side is recency-biased), or None when within tolerance or
    either side has too few calls to judge.
    """
    if profile is None or baseline is None:
        return None
    if profile.latency.count < 5 or baseline.latency.count < 5:
        return None
    current = profile.latency.percentile(99)
    reference = baseline.latency.percentile(99)
    if reference <= 0.0 or current <= tolerance * reference:
        return None
    return {
        "function": profile.function,
        "p99_s": current,
        "baseline_p99_s": reference,
        "ratio": current / reference,
        "tolerance": tolerance,
    }
