"""Lifecycle span tracing with cross-host context propagation.

The tracer records **spans** — named, timed intervals with attributes —
arranged into per-invocation trace trees: the schedule decision, the
bus hop, proto-Faaslet restore vs. cold boot, module compile, guest
execution, every state push/pull, and chained calls all become spans of
one trace, even when the chain crosses hosts (the trace context rides on
the :class:`~repro.runtime.bus.ExecuteCall` message).

Design constraints, in order:

1. **Tracing off must cost nothing.** Instrumented code calls the free
   function :func:`span`, whose disabled path is one ``ContextVar.get``
   plus a ``None`` check returning a singleton no-op handle — no
   allocation, no clock read, no lock.
2. **Sampling is decided once per trace**, at the root: children and
   remote continuations inherit the decision through the propagated
   context, so a trace is always complete or absent, never partial.
3. **Propagation is explicit.** Threads do not inherit context (each
   ``threading.Thread`` starts with an empty ``contextvars`` context);
   executors re-activate the context carried by the bus message via
   :meth:`Tracer.activate`, exactly as a real cross-host hop would
   deserialise wire headers.

All timestamps come from ``time.perf_counter()`` — one monotonic clock
shared by every simulated host in the process, which is what lets a
multi-host trace export as a single coherent Chrome timeline.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, NamedTuple


def _new_id() -> str:
    return os.urandom(8).hex()


class TraceContext(NamedTuple):
    """The propagated part of a trace: where new spans attach."""

    trace_id: str
    #: Span id new children adopt as their parent (None at a trace root).
    span_id: str | None
    #: Root sampling decision; unsampled contexts still propagate so the
    #: whole tree is uniformly dropped.
    sampled: bool = True


#: Wire format carried on bus messages: (trace_id, parent span id,
#: sampled, sender's perf_counter timestamp for queue-wait attribution).
Wire = tuple


def context_from_wire(wire: Wire) -> TraceContext:
    """Rebuild the propagated context from a bus-message wire tuple."""
    return TraceContext(wire[0], wire[1], bool(wire[2]))


@dataclass
class Span:
    """One finished, timed interval of a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    host: str | None
    start: float
    end: float = 0.0
    attrs: dict = field(default_factory=dict)
    thread: int = field(default_factory=threading.get_ident)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "host": self.host,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "thread": self.thread,
            "attrs": self.attrs,
        }


#: (tracer, context, host) of the innermost active span on this thread.
_ACTIVE: ContextVar[tuple | None] = ContextVar("repro_trace_active", default=None)


def current_context() -> TraceContext | None:
    """The active trace context on this thread, if any."""
    state = _ACTIVE.get()
    return state[1] if state is not None else None


class _NoopSpan:
    """Singleton returned whenever a span would not be recorded."""

    __slots__ = ()
    recording = False

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, key, value) -> "_NoopSpan":
        return self

    def wire(self) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class SpanHandle:
    """Context manager around one recording span: entering activates the
    span as the ambient parent on this thread, exiting stamps the end
    time and hands the span to the tracer."""

    __slots__ = ("_tracer", "span", "_token")
    recording = True

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._token = None

    def __enter__(self) -> "SpanHandle":
        self._token = _ACTIVE.set(
            (
                self._tracer,
                TraceContext(self.span.trace_id, self.span.span_id, True),
                self.span.host,
            )
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.end = time.perf_counter()
        if exc_type is not None:
            self.span.attrs["error"] = f"{exc_type.__name__}: {exc}"
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        self._tracer._finish(self.span)
        return False

    def set_attr(self, key, value) -> "SpanHandle":
        self.span.attrs[key] = value
        return self

    def wire(self) -> Wire:
        """Context to carry on an outgoing message (children of this span)."""
        return (self.span.trace_id, self.span.span_id, True, time.perf_counter())


class _UnsampledSpan:
    """Root handle for an unsampled trace: records nothing but keeps an
    unsampled context active so descendants (local and remote) uniformly
    skip recording instead of starting fresh traces."""

    __slots__ = ("_tracer", "_ctx", "_host", "_token")
    recording = False

    def __init__(self, tracer: "Tracer", ctx: TraceContext, host: str | None):
        self._tracer = tracer
        self._ctx = ctx
        self._host = host
        self._token = None

    def __enter__(self) -> "_UnsampledSpan":
        self._token = _ACTIVE.set((self._tracer, self._ctx, self._host))
        return self

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        return False

    def set_attr(self, key, value) -> "_UnsampledSpan":
        return self

    def wire(self) -> Wire:
        return (self._ctx.trace_id, self._ctx.span_id, False, time.perf_counter())


class Tracer:
    """Collects spans for one deployment (a cluster, or the CLI process).

    ``enabled=False`` (the default) short-circuits every entry point to
    the no-op singleton. ``sample_rate`` is the per-trace head-sampling
    probability, decided at the root and inherited everywhere else.
    ``max_spans`` bounds memory; spans beyond it are counted in
    :attr:`dropped` instead of stored.
    """

    def __init__(
        self,
        enabled: bool = False,
        sample_rate: float = 1.0,
        max_spans: int = 100_000,
        on_finish: Callable[[Span], None] | None = None,
        seed: int | None = None,
    ):
        self.enabled = enabled
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self.dropped = 0
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._random = random.Random(seed)
        self._on_finish = on_finish

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def trace(self, name: str, host: str | None = None, **attrs):
        """Start a span: a child of the ambient context when one is
        active on this thread, else the root of a new trace (where the
        sampling decision is rolled)."""
        if not self.enabled:
            return NOOP_SPAN
        state = _ACTIVE.get()
        if state is not None:
            tracer, ctx, active_host = state
            return tracer._span(name, ctx, host or active_host, attrs)
        ctx = TraceContext(_new_id(), None, self._random.random() < self.sample_rate)
        if not ctx.sampled:
            return _UnsampledSpan(self, ctx, host)
        return self._span(name, ctx, host, attrs)

    def _span(self, name: str, ctx: TraceContext, host, attrs: dict):
        if not ctx.sampled:
            return NOOP_SPAN
        return SpanHandle(
            self,
            Span(
                name=name,
                trace_id=ctx.trace_id,
                span_id=_new_id(),
                parent_id=ctx.span_id,
                host=host,
                start=time.perf_counter(),
                attrs=dict(attrs),
            ),
        )

    @contextmanager
    def activate(self, ctx: TraceContext | None, host: str | None = None):
        """Install a (possibly remote) context as this thread's ambient
        parent — the receive-side half of cross-host propagation."""
        if ctx is None or not self.enabled:
            yield
            return
        token = _ACTIVE.set((self, ctx, host))
        try:
            yield
        finally:
            _ACTIVE.reset(token)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(span)
            else:
                self.dropped += 1
        if self._on_finish is not None:
            self._on_finish(span)

    def finished_spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def span(name: str, **attrs):
    """Open a child span of this thread's active trace, or a no-op.

    This is the function instrumentation sites call: when no trace is
    active (tracing off, unsampled trace, or code running outside any
    invocation) it returns the shared no-op handle without touching the
    clock or allocating.
    """
    state = _ACTIVE.get()
    if state is None:
        return NOOP_SPAN
    tracer, ctx, host = state
    if not ctx.sampled:
        return NOOP_SPAN
    return tracer._span(name, ctx, host, attrs)
