"""OpenMetrics text exposition + the sim-bus scrape endpoint.

:func:`render_openmetrics` serialises a
:class:`~repro.telemetry.metrics.MetricsRegistry` in the OpenMetrics
text format (the Prometheus exposition format's standardised successor):
counters as ``_total`` samples, gauges verbatim, sample-window
histograms as summaries (quantile series + ``_count``/``_sum``), and
streaming log-bucketed histograms as real histogram types with
cumulative ``le`` buckets — every registered series appears.

:class:`MetricsEndpoint` is the scrape surface: it registers a
``metrics`` endpoint on the cluster's
:class:`~repro.runtime.bus.MessageBus` and answers every
:class:`ScrapeRequest` with a :class:`ScrapeResponse` carrying the
exposition text — a Prometheus scrape, modulo HTTP. Scrapers register a
reply queue, send a request, and block on the response (see
``FaasmCluster.scrape_metrics``).
"""

from __future__ import annotations

import itertools
import re
import threading
from dataclasses import dataclass

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Quantiles published for sample-window histograms.
_QUANTILES = (0.5, 0.95, 0.99)


def sanitize_name(name: str) -> str:
    """A metric name valid in the exposition format (dots become ``_``)."""
    name = _NAME_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _sanitize_label(name: str) -> str:
    label = _LABEL_RE.sub("_", name)
    if not label or label[0].isdigit():
        label = "_" + label
    return label


def _escape_value(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_sanitize_label(k)}="{_escape_value(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_openmetrics(registry) -> str:
    """The registry as OpenMetrics text, ``# EOF`` terminated."""
    groups: dict[str, list] = {}
    kinds: dict[str, str] = {}
    for name, labels, metric in registry.items():
        groups.setdefault(name, []).append((labels, metric))
        kinds[name] = metric.kind
    lines: list[str] = []
    for name in sorted(groups):
        base = sanitize_name(name)
        kind = kinds[name]
        if kind == "counter":
            lines.append(f"# TYPE {base} counter")
            for labels, metric in groups[name]:
                lines.append(
                    f"{base}_total{_labels(labels)} "
                    f"{_format_number(metric.value)}"
                )
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            for labels, metric in groups[name]:
                lines.append(
                    f"{base}{_labels(labels)} {_format_number(metric.value)}"
                )
        else:  # histogram — streaming (le buckets) or sample-window
            streaming = any(
                hasattr(metric, "buckets") for _, metric in groups[name]
            )
            lines.append(
                f"# TYPE {base} {'histogram' if streaming else 'summary'}"
            )
            for labels, metric in groups[name]:
                if hasattr(metric, "buckets"):
                    cumulative = 0
                    for bound, count in metric.buckets():
                        cumulative += count
                        lines.append(
                            f"{base}_bucket"
                            f"{_labels(labels, {'le': _format_number(bound)})}"
                            f" {cumulative}"
                        )
                    lines.append(
                        f"{base}_bucket{_labels(labels, {'le': '+Inf'})}"
                        f" {metric.count}"
                    )
                else:
                    for q in _QUANTILES:
                        lines.append(
                            f"{base}{_labels(labels, {'quantile': str(q)})}"
                            f" {_format_number(metric.percentile(q * 100))}"
                        )
                lines.append(
                    f"{base}_count{_labels(labels)} {metric.count}"
                )
                lines.append(
                    f"{base}_sum{_labels(labels)} {_format_number(metric.sum)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Bus endpoint
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScrapeRequest:
    """Ask the metrics endpoint for an exposition; answered to
    ``reply_to``'s bus queue."""

    reply_to: str


@dataclass(frozen=True)
class ScrapeResponse:
    """The exposition text for one scrape."""

    body: str


class MetricsEndpoint:
    """The cluster's scrape target, living on the message bus."""

    HOST = "metrics"

    def __init__(self, bus, registry):
        self.bus = bus
        self.registry = registry
        self._scrape_ids = itertools.count()
        self.bus.register(self.HOST)
        self._thread = threading.Thread(
            target=self._serve, daemon=True, name="metrics-endpoint"
        )
        self._thread.start()

    def _serve(self) -> None:
        from repro.runtime.bus import Shutdown

        while True:
            message = self.bus.receive(self.HOST)
            if message is None or isinstance(message, Shutdown):
                return
            if isinstance(message, ScrapeRequest):
                body = render_openmetrics(self.registry)
                try:
                    self.bus.send(message.reply_to, ScrapeResponse(body))
                except KeyError:
                    pass  # scraper went away before the answer

    def scrape(self, timeout: float = 5.0) -> str:
        """One full scrape round trip over the bus."""
        reply_to = f"scrape-{next(self._scrape_ids)}"
        self.bus.register(reply_to)
        try:
            self.bus.send(self.HOST, ScrapeRequest(reply_to=reply_to))
            response = self.bus.receive(reply_to, timeout=timeout)
        finally:
            self.bus.deregister(reply_to)
        if not isinstance(response, ScrapeResponse):
            raise TimeoutError("metrics scrape timed out")
        return response.body

    def shutdown(self, timeout: float = 2.0) -> None:
        from repro.runtime.bus import Shutdown

        try:
            self.bus.send(self.HOST, Shutdown())
        except KeyError:
            return
        self._thread.join(timeout)
        try:
            self.bus.deregister(self.HOST)
        except KeyError:
            pass
