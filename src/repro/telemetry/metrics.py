"""The metrics registry: counters, gauges and histograms with labels.

Every ad-hoc counter the reproduction grew — ``BusStats`` delivery
counts, the state plane's ``TransferMeter``, the code cache's hit/miss
tallies, per-instance cold-start metrics — is now a *view* over metrics
registered here, so one snapshot exposes the whole system and
cluster-wide aggregation is a fold over label sets instead of a walk
over object graphs.

Metrics are keyed by ``(name, labels)``: two hosts incrementing
``state.bytes_sent`` with different ``host=`` labels get independent
series, and :meth:`MetricsRegistry.aggregate` sums a name across all its
label sets (the per-host vs. cluster-aggregated split the experiments
need). All mutations are lock-protected — the counters are shared by
dispatcher and executor threads, where an unguarded ``+=`` drops counts.
"""

from __future__ import annotations

import threading

from .stats import percentile, summarize
from .streaming import StreamingHistogram


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _series_name(name: str, label_key: tuple) -> str:
    if not label_key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic (reset-able) count."""

    __slots__ = ("_lock", "_value")
    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self):
        return self._value


class Gauge:
    """Last-set value (pool sizes, capacities, memory footprints)."""

    __slots__ = ("_lock", "_value")
    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self):
        return self._value


class Histogram:
    """Observation distribution with exact count/sum/min/max and
    percentiles over a bounded sample window.

    Samples are kept in a ring of the most recent ``max_samples``
    observations (count/sum/min/max stay exact over the full stream), so
    a long-running host cannot grow unboundedly. Percentiles reuse the
    shared :func:`repro.telemetry.stats.percentile` implementation — the
    same one :class:`repro.sim.metrics.LatencyRecorder` uses.
    """

    __slots__ = ("_lock", "_samples", "_next", "_count", "_sum", "_min",
                 "_max", "max_samples")
    kind = "histogram"

    def __init__(self, max_samples: int = 8192) -> None:
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._next = 0
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                self._samples[self._next] = value
                self._next = (self._next + 1) % self.max_samples

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, pct: float) -> float:
        with self._lock:
            samples = list(self._samples)
        return percentile(samples, pct)

    def samples(self) -> list[float]:
        with self._lock:
            return list(self._samples)

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self._next = 0
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")

    def snapshot(self) -> dict:
        with self._lock:
            samples = list(self._samples)
            out = {"count": self._count, "sum": self._sum}
        out.update({k: v for k, v in summarize(samples).items() if k != "count"})
        return out


class MetricsRegistry:
    """Thread-safe get-or-create registry of labelled metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls(**kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, max_samples: int = 8192, **labels) -> Histogram:
        return self._get(Histogram, name, labels, max_samples=max_samples)

    def streaming_histogram(
        self, name: str, growth: float | None = None, **labels
    ) -> StreamingHistogram:
        """A log-bucketed streaming histogram: O(1) memory, no recency
        bias, mergeable across label sets (see
        :mod:`repro.telemetry.streaming`)."""
        kwargs = {} if growth is None else {"growth": growth}
        return self._get(StreamingHistogram, name, labels, **kwargs)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def series(self, name: str) -> dict[str, object]:
        """All metrics registered under ``name``, keyed by label string."""
        with self._lock:
            return {
                _series_name(n, lk): m
                for (n, lk), m in self._metrics.items()
                if n == name
            }

    def aggregate(self, name: str) -> float:
        """Sum of a counter/gauge across every label set (cluster-wide
        view of a per-host metric); histograms aggregate their counts."""
        total = 0.0
        with self._lock:
            metrics = [m for (n, _), m in self._metrics.items() if n == name]
        for m in metrics:
            total += m.count if m.kind == "histogram" else m.value
        return total

    def items(self) -> list[tuple[str, dict, object]]:
        """(name, labels, metric) for every registered series — the raw
        iteration the OpenMetrics exposition renders from."""
        with self._lock:
            return [
                (name, dict(label_key), metric)
                for (name, label_key), metric in sorted(
                    self._metrics.items(), key=lambda kv: kv[0]
                )
            ]

    def snapshot(self) -> dict:
        """Full registry dump: {kind: {series-name: value-or-summary}}."""
        with self._lock:
            items = list(self._metrics.items())
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, label_key), metric in sorted(items, key=lambda kv: kv[0]):
            out[metric.kind + "s"][_series_name(name, label_key)] = metric.snapshot()
        return out

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            m.reset()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
