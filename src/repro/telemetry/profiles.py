"""The online trace miner: finished spans -> per-function access profiles.

Traces record *what one invocation did*; the experiments (and ROADMAP
item 3's prefetcher) need *what a function habitually does*: which state
keys it touches and at which byte ranges, how many snapshot pages a
restore ships, how much fuel it burns, what it chains into, where its
latency goes. A :class:`TraceMiner` folds every finished span — hooked on
:class:`~repro.telemetry.trace.Tracer`'s ``on_finish`` callback, so
mining is online and needs no post-hoc span walk — into one
:class:`AccessProfile` per function.

Folding is driven by ``call.invoke`` spans: children always finish
before their parents (the span context manager guarantees it), so when
an invoke span finishes, every span of that invocation is already
buffered. The miner walks the buffered spans' parent chains to claim the
invoke's descendants, attributes them to the invoked function, and drops
them from the buffer. Spans that never fall under an invoke (external
``call.dispatch`` roots, pre-warm ``snapshot.pull``\\ s) age out of the
bounded buffer.

Profiles persist **content-addressed** in the cluster's
:class:`~repro.host.filesystem.GlobalObjectStore` via
:class:`ProfileStore`: the JSON payload's digest names the artifact, a
per-function ``HEAD`` names the latest — the store layout the prefetcher
reads unchanged.
"""

from __future__ import annotations

import hashlib
import json
import threading
from urllib.parse import quote, unquote

from .streaming import StreamingHistogram

#: Span buffer bound: traces older than the newest ``_MAX_TRACES`` are
#: dropped wholesale (an unclaimed dispatch/pre-warm span must not leak).
_MAX_TRACES = 4096
#: Per-profile bound on distinct byte ranges tracked per state key.
_MAX_RANGES = 128
#: Growth factor for profile-embedded histograms.
_HIST_GROWTH = 1.08


class RangeCounter:
    """Byte-range hit counts for one state key, bounded in size.

    Ranges are kept exactly as observed (the access pattern — chunk
    boundaries included — is the signal a prefetcher wants); when the
    table is full, the coldest range is evicted to admit a new one.
    """

    def __init__(self, max_ranges: int = _MAX_RANGES):
        self.max_ranges = max_ranges
        self._ranges: dict[tuple[int, int], int] = {}

    def add(self, start: int, end: int, hits: int = 1) -> None:
        key = (int(start), int(end))
        current = self._ranges.get(key)
        if current is not None:
            self._ranges[key] = current + hits
            return
        if len(self._ranges) >= self.max_ranges:
            coldest = min(
                self._ranges.items(), key=lambda kv: (kv[1], kv[0])
            )[0]
            if self._ranges[coldest] > hits:
                # The newcomer is colder than everything resident:
                # admitting it would evict a hotter range (and a stream
                # of one-hit ranges could flush the whole table).
                return
            del self._ranges[coldest]
        self._ranges[key] = hits

    def hot(self, top: int | None = None) -> list[tuple[int, int, int]]:
        """(start, end, hits) sorted by hits descending, hottest first."""
        ranked = sorted(
            ((s, e, n) for (s, e), n in self._ranges.items()),
            key=lambda r: (-r[2], r[0], r[1]),
        )
        return ranked if top is None else ranked[:top]

    def total_hits(self) -> int:
        return sum(self._ranges.values())

    def coverage(self) -> int:
        """Bytes covered by at least one tracked range (overlaps merged)."""
        total = 0
        cursor = None
        for s, e in sorted(self._ranges):
            if cursor is None or s > cursor:
                total += e - s
                cursor = e
            elif e > cursor:
                total += e - cursor
                cursor = e
        return total

    def merge(self, other: "RangeCounter") -> None:
        for (s, e), n in other._ranges.items():
            self.add(s, e, n)

    def __len__(self) -> int:
        return len(self._ranges)

    def to_dict(self) -> list[list[int]]:
        return [[s, e, n] for s, e, n in self.hot()]

    @classmethod
    def from_dict(cls, data, max_ranges: int = _MAX_RANGES) -> "RangeCounter":
        counter = cls(max_ranges)
        for s, e, n in data:
            counter.add(s, e, n)
        return counter


class KeyProfile:
    """What one function does to one state key."""

    def __init__(self):
        self.pulls = 0
        self.pushes = 0
        self.bytes_pulled = 0
        self.bytes_pushed = 0
        self.round_trips = 0
        self.reads = RangeCounter()
        self.writes = RangeCounter()

    def to_dict(self) -> dict:
        return {
            "pulls": self.pulls,
            "pushes": self.pushes,
            "bytes_pulled": self.bytes_pulled,
            "bytes_pushed": self.bytes_pushed,
            "round_trips": self.round_trips,
            "reads": self.reads.to_dict(),
            "writes": self.writes.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KeyProfile":
        kp = cls()
        kp.pulls = data["pulls"]
        kp.pushes = data["pushes"]
        kp.bytes_pulled = data["bytes_pulled"]
        kp.bytes_pushed = data["bytes_pushed"]
        kp.round_trips = data["round_trips"]
        kp.reads = RangeCounter.from_dict(data["reads"])
        kp.writes = RangeCounter.from_dict(data["writes"])
        return kp


class AccessProfile:
    """Everything mined about one function, across all its invocations."""

    SCHEMA = "repro-profile/1"

    def __init__(self, function: str):
        self.function = function
        self.calls = 0
        self.cold_starts = 0
        self.errors = 0
        self.retries = 0
        #: retry/fault cause -> count (chaos attribution, satellite 1).
        self.fault_causes: dict[str, int] = {}
        self.latency = StreamingHistogram(_HIST_GROWTH)
        self.fuel = StreamingHistogram(_HIST_GROWTH)
        #: phase name -> [count, total seconds] over descendant spans.
        self.phases: dict[str, list] = {}
        #: state key -> KeyProfile.
        self.state: dict[str, KeyProfile] = {}
        self.snapshot = {
            "restores": 0,
            "cached": 0,
            "payload_pages": 0,
            "missing_pages": 0,
            "bytes_shipped": 0,
        }
        #: chained callee -> count (fan-out).
        self.chains: dict[str, int] = {}
        #: executing host -> count (placement spread).
        self.hosts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def key_profile(self, key: str) -> KeyProfile:
        kp = self.state.get(key)
        if kp is None:
            kp = self.state[key] = KeyProfile()
        return kp

    def hot_ranges(
        self, confidence: float = 0.5, top: int = 8
    ) -> dict[str, list[tuple[int, int]]]:
        """The prefetcher's query: per state key, the byte-ranges accessed
        in at least ``confidence`` fraction of this function's calls —
        hottest first, at most ``top`` per key. Write ranges count too:
        the dominant guest pattern is read-modify-write through
        ``get_state`` (recorded as a write because the returned view is
        writable), and those bytes are pulled before they are modified, so
        prefetching them saves the same demand traffic. A profile with no
        calls, or whose ranges all fall below the threshold, yields ``{}``
        (nothing worth speculating on)."""
        if self.calls <= 0:
            return {}
        out: dict[str, list[tuple[int, int]]] = {}
        for key, kp in sorted(self.state.items()):
            spans = [
                (s, e, hits)
                for counter in (kp.reads, kp.writes)
                for s, e, hits in counter.hot(top)
                if e > s and hits / self.calls >= confidence
            ]
            # Hottest first across both counters; dedupe exact repeats
            # (a range both read- and write-hot is speculated on once).
            spans.sort(key=lambda t: (-t[2], t[0], t[1]))
            picked: list[tuple[int, int]] = []
            for s, e, _hits in spans:
                if (s, e) not in picked:
                    picked.append((s, e))
                if len(picked) >= top:
                    break
            if picked:
                out[key] = picked
        return out

    def add_phase(self, name: str, duration: float) -> None:
        entry = self.phases.get(name)
        if entry is None:
            self.phases[name] = [1, duration]
        else:
            entry[0] += 1
            entry[1] += duration

    def to_dict(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "function": self.function,
            "calls": self.calls,
            "cold_starts": self.cold_starts,
            "errors": self.errors,
            "retries": self.retries,
            "fault_causes": dict(sorted(self.fault_causes.items())),
            "latency": self.latency.to_dict(),
            "fuel": self.fuel.to_dict(),
            "phases": {
                name: [c, t] for name, (c, t) in sorted(self.phases.items())
            },
            "state": {
                key: kp.to_dict() for key, kp in sorted(self.state.items())
            },
            "snapshot": dict(self.snapshot),
            "chains": dict(sorted(self.chains.items())),
            "hosts": dict(sorted(self.hosts.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AccessProfile":
        profile = cls(data["function"])
        profile.calls = data["calls"]
        profile.cold_starts = data["cold_starts"]
        profile.errors = data["errors"]
        profile.retries = data["retries"]
        profile.fault_causes = dict(data["fault_causes"])
        profile.latency = StreamingHistogram.from_dict(data["latency"])
        profile.fuel = StreamingHistogram.from_dict(data["fuel"])
        profile.phases = {k: list(v) for k, v in data["phases"].items()}
        profile.state = {
            k: KeyProfile.from_dict(v) for k, v in data["state"].items()
        }
        profile.snapshot = dict(data["snapshot"])
        profile.chains = dict(data["chains"])
        profile.hosts = dict(data["hosts"])
        return profile


def _span_ranges(span) -> list[tuple[int, int]]:
    ranges = span.attrs.get("ranges")
    if not ranges:
        return []
    return [(int(s), int(e)) for s, e in ranges]


class TraceMiner:
    """Folds finished spans into per-function :class:`AccessProfile`\\ s."""

    def __init__(self, max_traces: int = _MAX_TRACES):
        self._lock = threading.Lock()
        self.max_traces = max_traces
        #: trace id -> {span id -> Span} for not-yet-claimed spans.
        self._buffer: dict[str, dict[str, object]] = {}
        self._profiles: dict[str, AccessProfile] = {}
        #: Spans folded into a profile (observability of the miner itself).
        self.spans_mined = 0
        #: Spans dropped by the trace-buffer bound without being claimed.
        self.spans_evicted = 0

    # ------------------------------------------------------------------
    # Span intake (Tracer on_finish)
    # ------------------------------------------------------------------
    def fold(self, span) -> None:
        """Consume one finished span (called on the finishing thread)."""
        with self._lock:
            trace = self._buffer.get(span.trace_id)
            if trace is None:
                trace = self._buffer[span.trace_id] = {}
                if len(self._buffer) > self.max_traces:
                    # Evict the oldest trace wholesale (dict preserves
                    # insertion order); its spans were never claimed.
                    oldest = next(iter(self._buffer))
                    self.spans_evicted += len(self._buffer.pop(oldest))
            trace[span.span_id] = span
            if span.name == "call.invoke":
                self._fold_invocation(span, trace)
            elif span.name == "call.retry":
                self._fold_retry(span)

    def _descendants(self, invoke, trace: dict) -> list:
        """Buffered spans whose parent chain reaches ``invoke``."""
        out = []
        for sp in trace.values():
            if sp is invoke:
                continue
            cursor = sp
            for _ in range(64):  # parent chains are shallow; stay bounded
                parent = trace.get(cursor.parent_id)
                if parent is None:
                    break
                if parent is invoke:
                    out.append(sp)
                    break
                cursor = parent
        return out

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def _fold_invocation(self, invoke, trace: dict) -> None:
        function = invoke.attrs.get("function", "?")
        profile = self._profiles.get(function)
        if profile is None:
            profile = self._profiles[function] = AccessProfile(function)

        profile.calls += 1
        profile.latency.observe(invoke.duration)
        if invoke.attrs.get("cold_start"):
            profile.cold_starts += 1
        if invoke.attrs.get("return_code", 0) not in (0, None):
            profile.errors += 1
        if invoke.host:
            profile.hosts[invoke.host] = profile.hosts.get(invoke.host, 0) + 1
        queue_wait = invoke.attrs.get("queue_wait_s")
        if queue_wait is not None:
            profile.add_phase("queue.wait", queue_wait)

        descendants = self._descendants(invoke, trace)
        for sp in descendants:
            del trace[sp.span_id]
            # An inner chained call's own invoke was folded (and charged
            # to the callee) when it finished; here it only marks time the
            # outer function spent awaiting, already visible in call.await.
            if sp.name != "call.invoke":
                profile.add_phase(sp.name, sp.duration)
            self.spans_mined += 1
            if sp.name == "guest.exec":
                fuel = sp.attrs.get("fuel_consumed")
                if fuel is not None:
                    profile.fuel.observe(fuel)
            elif sp.name == "state.pull":
                kp = profile.key_profile(sp.attrs.get("key", "?"))
                kp.pulls += 1
                kp.bytes_pulled += sp.attrs.get("bytes", 0)
                kp.round_trips += sp.attrs.get("round_trips", 0)
                for s, e in _span_ranges(sp):
                    kp.reads.add(s, e)
            elif sp.name == "state.push":
                kp = profile.key_profile(sp.attrs.get("key", "?"))
                kp.pushes += 1
                kp.bytes_pushed += sp.attrs.get("bytes", 0)
                kp.round_trips += sp.attrs.get("round_trips", 0)
                for s, e in _span_ranges(sp):
                    kp.writes.add(s, e)
            elif sp.name == "state.access":
                kp = profile.key_profile(sp.attrs.get("key", "?"))
                counter = (
                    kp.writes if sp.attrs.get("mode") == "write" else kp.reads
                )
                for s, e in _span_ranges(sp):
                    counter.add(s, e)
            elif sp.name == "snapshot.pull":
                outcome = sp.attrs.get("outcome")
                snap = profile.snapshot
                if outcome == "cached":
                    snap["cached"] += 1
                elif outcome == "pulled":
                    snap["restores"] += 1
                    snap["payload_pages"] += sp.attrs.get("payload_pages", 0)
                    snap["missing_pages"] += sp.attrs.get("missing_pages", 0)
                    snap["bytes_shipped"] += sp.attrs.get("bytes_shipped", 0)
            elif sp.name == "call.dispatch":
                callee = sp.attrs.get("function", "?")
                profile.chains[callee] = profile.chains.get(callee, 0) + 1
        self.spans_mined += 1
        # The invoke span itself stays buffered: an outer invocation (this
        # was a chained call) still claims it as an await marker. Ambient
        # leftovers age out with the trace.

    def _fold_retry(self, retry) -> None:
        function = retry.attrs.get("function", "?")
        profile = self._profiles.get(function)
        if profile is None:
            profile = self._profiles[function] = AccessProfile(function)
        profile.retries += 1
        cause = retry.attrs.get("fault") or retry.attrs.get("reason")
        if cause:
            profile.fault_causes[cause] = profile.fault_causes.get(cause, 0) + 1

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def functions(self) -> list[str]:
        with self._lock:
            return sorted(self._profiles)

    def profile(self, function: str) -> AccessProfile | None:
        with self._lock:
            return self._profiles.get(function)

    def profiles(self) -> dict[str, AccessProfile]:
        with self._lock:
            return dict(self._profiles)

    def buffered_spans(self) -> int:
        with self._lock:
            return sum(len(t) for t in self._buffer.values())


class ProfileStore:
    """Content-addressed persistence for access profiles.

    Layout in the global object store::

        profiles/<function>/<digest>.json   immutable, digest-named payload
        profiles/<function>/HEAD            digest of the latest profile

    The digest is over the canonical JSON payload, so identical profiles
    dedup to one artifact and ``HEAD`` flips atomically between versions.
    Function names are URL-quoted in the path (names may contain ``/``).
    """

    PREFIX = "profiles"

    def __init__(self, store):
        self.store = store

    def _dir(self, function: str) -> str:
        return f"{self.PREFIX}/{quote(function, safe='')}"

    # ------------------------------------------------------------------
    def save(self, profile: AccessProfile) -> str:
        """Persist ``profile``; returns the content digest."""
        payload = json.dumps(
            profile.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode()
        digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
        directory = self._dir(profile.function)
        self.store.upload(f"{directory}/{digest}.json", payload)
        self.store.upload(f"{directory}/HEAD", digest.encode())
        return digest

    def head(self, function: str) -> str | None:
        path = f"{self._dir(function)}/HEAD"
        if not self.store.exists(path):
            return None
        return self.store.get(path).decode()

    def load(self, function: str, digest: str | None = None) -> AccessProfile | None:
        digest = digest or self.head(function)
        if digest is None:
            return None
        path = f"{self._dir(function)}/{digest}.json"
        if not self.store.exists(path):
            return None
        return AccessProfile.from_dict(json.loads(self.store.get(path)))

    def functions(self) -> list[str]:
        seen = set()
        prefix = self.PREFIX + "/"
        for path in self.store.list(self.PREFIX):
            rest = path[len(prefix):] if path.startswith(prefix) else path
            seen.add(unquote(rest.split("/", 1)[0]))
        return sorted(seen)

    def digests(self, function: str) -> list[str]:
        directory = self._dir(function) + "/"
        out = []
        for path in self.store.list(self._dir(function)):
            name = path[len(directory):]
            if name.endswith(".json"):
                out.append(name[: -len(".json")])
        return sorted(out)
