"""Continuous guest profiler: sampled call-stacks -> flamegraph artifacts.

The interpreter's ``profile=True`` mode counts every opcode — exact, but
interp-tier only and far too slow to leave on. This module is the
*continuous* profiler: a per-instance tap keeps a shadow stack of guest
function indices (pushed/popped in ``Instance._call``, the chokepoint
both execution tiers share) and, every ``interval``-th guest call,
records the stack weighted by the instance's dispatch counter delta
(``instructions_executed`` — the threaded tier's block-batched fuel
meter). Off means one ``is not None`` check per guest call; on costs an
append/pop plus a counter decrement, with the weighted sample taken only
at the sampling period.

Artifacts export in the two formats flamegraph tooling speaks:

* **collapsed stacks** (``frame;frame;frame weight`` lines) — pipe into
  ``flamegraph.pl`` or load in speedscope;
* **speedscope JSON** (``"type": "sampled"`` profiles) — open directly
  at https://www.speedscope.app.

Both round-trip: :func:`load_collapsed` / :func:`load_speedscope`
recover the exact stack->weight table, which is how the exporter tests
verify them.
"""

from __future__ import annotations

import json
import threading

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

#: Default sampling period, in guest function calls.
DEFAULT_INTERVAL = 64


class FunctionProfile:
    """Aggregated samples for one deployed function."""

    __slots__ = ("stacks", "samples", "weight")

    def __init__(self):
        #: stack (tuple of frame names, outermost first) -> total weight.
        self.stacks: dict[tuple, int] = {}
        self.samples = 0
        self.weight = 0

    def record(self, stack: tuple, weight: int) -> None:
        self.stacks[stack] = self.stacks.get(stack, 0) + weight
        self.samples += 1
        self.weight += weight


class _ProfilerTap:
    """Per-instance shadow stack; installed as ``instance._profiler``."""

    __slots__ = ("profiler", "function", "names", "stack", "countdown",
                 "interval", "last_executed")

    def __init__(self, profiler: "ContinuousProfiler", instance, function: str):
        self.profiler = profiler
        self.function = function
        self.interval = profiler.interval
        self.countdown = profiler.interval
        self.last_executed = instance.instructions_executed
        self.stack: list[int] = []
        #: function index -> display name, resolved lazily.
        self.names: dict[int, str] = {}

    def _name(self, instance, index: int) -> str:
        name = self.names.get(index)
        if name is None:
            fn = instance.funcs[index]
            name = getattr(fn, "name", None)
            if not name:
                for export_name, export in instance.module.export_map().items():
                    if export.kind == "func" and export.index == index:
                        name = export_name
                        break
            if not name:
                name = f"fn{index}"
            self.names[index] = name
        return name

    def enter(self, instance, index: int) -> None:
        self.stack.append(index)
        self.countdown -= 1
        if self.countdown <= 0:
            self.countdown = self.interval
            executed = instance.instructions_executed
            weight = max(1, executed - self.last_executed)
            self.last_executed = executed
            frames = tuple(self._name(instance, i) for i in self.stack)
            self.profiler._record(self.function, frames, weight)

    def exit(self) -> None:
        if self.stack:
            self.stack.pop()


class ContinuousProfiler:
    """Collects sampled guest stacks across every attached instance."""

    def __init__(self, interval: int = DEFAULT_INTERVAL):
        if interval < 1:
            raise ValueError("sampling interval must be >= 1")
        self.interval = interval
        self._lock = threading.Lock()
        self._functions: dict[str, FunctionProfile] = {}

    # ------------------------------------------------------------------
    def attach(self, instance, function: str) -> None:
        """Install a tap on ``instance``, attributing samples to
        ``function``. Idempotent per instance."""
        tap = getattr(instance, "_profiler", None)
        if tap is not None and tap.function == function:
            return
        instance._profiler = _ProfilerTap(self, instance, function)

    def detach(self, instance) -> None:
        instance._profiler = None

    def _record(self, function: str, stack: tuple, weight: int) -> None:
        with self._lock:
            profile = self._functions.get(function)
            if profile is None:
                profile = self._functions[function] = FunctionProfile()
            profile.record(stack, weight)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def functions(self) -> list[str]:
        with self._lock:
            return sorted(self._functions)

    def stacks(self, function: str) -> dict[tuple, int]:
        with self._lock:
            profile = self._functions.get(function)
            return dict(profile.stacks) if profile else {}

    def sample_count(self, function: str) -> int:
        with self._lock:
            profile = self._functions.get(function)
            return profile.samples if profile else 0

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def collapsed(self, function: str) -> str:
        """Brendan Gregg collapsed-stack format, one line per stack."""
        return to_collapsed(self.stacks(function))

    def speedscope(self, function: str) -> dict:
        """A speedscope-compatible sampled-profile document."""
        return to_speedscope(function, self.stacks(function))


# ----------------------------------------------------------------------
# Format round-trips
# ----------------------------------------------------------------------
def to_collapsed(stacks: dict[tuple, int]) -> str:
    """Render ``{stack-tuple: weight}`` as Brendan-Gregg collapsed-stack
    text (``frame;frame weight`` per line), flamegraph.pl-compatible."""
    lines = [
        ";".join(frames) + f" {weight}"
        for frames, weight in sorted(stacks.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def load_collapsed(text: str) -> dict[tuple, int]:
    """Inverse of :func:`to_collapsed`; duplicate stacks sum weights."""
    stacks: dict[tuple, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        frames, _, weight = line.rpartition(" ")
        key = tuple(frames.split(";"))
        stacks[key] = stacks.get(key, 0) + int(weight)
    return stacks


def to_speedscope(name: str, stacks: dict[tuple, int]) -> dict:
    """Render stacks as a speedscope ``sampled``-type profile document
    (one sample per distinct stack, fuel as the weight unit)."""
    frame_index: dict[str, int] = {}
    frames: list[dict] = []
    samples: list[list[int]] = []
    weights: list[int] = []
    for stack, weight in sorted(stacks.items()):
        sample = []
        for frame in stack:
            idx = frame_index.get(frame)
            if idx is None:
                idx = frame_index[frame] = len(frames)
                frames.append({"name": frame})
            sample.append(idx)
        samples.append(sample)
        weights.append(weight)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "repro-telemetry",
        "name": name,
    }


def load_speedscope(doc: dict | str) -> dict[tuple, int]:
    """Inverse of :func:`to_speedscope`; accepts the dict or its JSON."""
    if isinstance(doc, str):
        doc = json.loads(doc)
    if doc.get("$schema") != SPEEDSCOPE_SCHEMA:
        raise ValueError("not a speedscope document")
    frames = [f["name"] for f in doc["shared"]["frames"]]
    stacks: dict[tuple, int] = {}
    for profile in doc["profiles"]:
        for sample, weight in zip(profile["samples"], profile["weights"]):
            key = tuple(frames[i] for i in sample)
            stacks[key] = stacks.get(key, 0) + int(weight)
    return stacks
