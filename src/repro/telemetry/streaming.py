"""Streaming log-bucketed histograms (HDR-style, O(1) memory).

The sample-window :class:`~repro.telemetry.metrics.Histogram` keeps the
most recent 8192 observations, so its percentiles are recency-biased on
long runs — fine for phase latencies over one experiment, wrong for the
million-call SLO windows the roadmap needs. A
:class:`StreamingHistogram` instead keeps **logarithmic buckets**: an
observation ``v`` lands in bucket ``floor(log(v) / log(growth))``, and a
percentile is answered by a rank walk over the bucket counts, returning
the geometric midpoint of the bucket holding that rank.

Properties:

* **O(1) memory** — the bucket count is bounded by the dynamic range of
  the data (about 600 buckets span 1ns..1h at the default growth), not
  by the observation count.
* **Bounded relative error** — a bucket spans ``[g^k, g^(k+1))``; its
  geometric midpoint ``g^(k+0.5)`` is within a factor ``sqrt(g)`` of
  every value in the bucket, so with the default ``growth=1.08`` a
  reported quantile is within ~3.9% of the true value at that rank.
* **Mergeable** — bucket counts add, so per-host series fold into a
  cluster-wide distribution without resampling.

``count``/``sum``/``min``/``max`` stay exact over the full stream, and
reported percentiles are clamped into ``[min, max]``.
"""

from __future__ import annotations

import math
import threading

#: Default bucket growth factor: sqrt(1.08) - 1 ~ 3.9% worst-case
#: relative error on quantiles, ~180 buckets per factor of 10^6 range.
DEFAULT_GROWTH = 1.08


class StreamingHistogram:
    """Log-bucketed observation distribution with mergeable state.

    Registered through :meth:`MetricsRegistry.streaming_histogram`; its
    ``kind`` is ``"histogram"`` so snapshots, printers and the
    OpenMetrics exposition treat both histogram flavours uniformly.
    """

    __slots__ = ("_lock", "_pos", "_neg", "_zero", "_count", "_sum",
                 "_min", "_max", "growth", "_inv_log")
    kind = "histogram"

    def __init__(self, growth: float = DEFAULT_GROWTH) -> None:
        if growth <= 1.0:
            raise ValueError("growth factor must be > 1")
        self._lock = threading.Lock()
        #: bucket index -> count, for positive / negative magnitudes.
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self.growth = growth
        self._inv_log = 1.0 / math.log(growth)

    # ------------------------------------------------------------------
    def _bucket(self, magnitude: float) -> int:
        return math.floor(math.log(magnitude) * self._inv_log)

    def _representative(self, index: int) -> float:
        # Geometric midpoint of [g^i, g^(i+1)): within sqrt(g) of every
        # value that can land in the bucket.
        return self.growth ** (index + 0.5)

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value > 0.0:
                idx = self._bucket(value)
                self._pos[idx] = self._pos.get(idx, 0) + 1
            elif value < 0.0:
                idx = self._bucket(-value)
                self._neg[idx] = self._neg.get(idx, 0) + 1
            else:
                self._zero += 1

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_count(self) -> int:
        """Number of live buckets (the O(1)-memory claim, testable)."""
        with self._lock:
            return len(self._pos) + len(self._neg) + (1 if self._zero else 0)

    def _ordered_buckets(self) -> list[tuple[float, int]]:
        """(representative value, count) in ascending value order."""
        out = [
            (-self._representative(i), n)
            for i, n in sorted(self._neg.items(), reverse=True)
        ]
        if self._zero:
            out.append((0.0, self._zero))
        out.extend(
            (self._representative(i), n) for i, n in sorted(self._pos.items())
        )
        return out

    def percentile(self, pct: float) -> float:
        """Approximate percentile: the representative value of the bucket
        holding the nearest-rank observation, clamped to [min, max].
        Empty -> 0.0, matching :func:`repro.telemetry.stats.percentile`."""
        with self._lock:
            if not self._count:
                return 0.0
            buckets = self._ordered_buckets()
            lo, hi, total = self._min, self._max, self._count
        rank = round((pct / 100.0) * (total - 1))
        seen = 0
        value = buckets[-1][0]
        for rep, n in buckets:
            seen += n
            if seen > rank:
                value = rep
                break
        return min(max(value, lo), hi)

    # ------------------------------------------------------------------
    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram (same growth) into this one."""
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with growth "
                f"{other.growth} into {self.growth}"
            )
        with other._lock:
            pos = dict(other._pos)
            neg = dict(other._neg)
            zero, count = other._zero, other._count
            total, lo, hi = other._sum, other._min, other._max
        with self._lock:
            for i, n in pos.items():
                self._pos[i] = self._pos.get(i, 0) + n
            for i, n in neg.items():
                self._neg[i] = self._neg.get(i, 0) + n
            self._zero += zero
            self._count += count
            self._sum += total
            self._min = min(self._min, lo)
            self._max = max(self._max, hi)

    def reset(self) -> None:
        with self._lock:
            self._pos.clear()
            self._neg.clear()
            self._zero = 0
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    # ------------------------------------------------------------------
    # Serialisation (the access-profile store persists these)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def buckets(self) -> list[tuple[float, int]]:
        """(upper bound, count) pairs in ascending bound order — the
        ``le`` buckets the OpenMetrics exposition publishes."""
        with self._lock:
            out = [
                (-(self.growth ** i), n)
                for i, n in sorted(self._neg.items(), reverse=True)
            ]
            if self._zero:
                out.append((0.0, self._zero))
            out.extend(
                (self.growth ** (i + 1), n)
                for i, n in sorted(self._pos.items())
            )
        return out

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "growth": self.growth,
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "zero": self._zero,
                "pos": sorted(self._pos.items()),
                "neg": sorted(self._neg.items()),
            }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingHistogram":
        hist = cls(growth=data["growth"])
        hist._count = int(data["count"])
        hist._sum = float(data["sum"])
        if hist._count:
            hist._min = float(data["min"])
            hist._max = float(data["max"])
        hist._zero = int(data["zero"])
        hist._pos = {int(i): int(n) for i, n in data["pos"]}
        hist._neg = {int(i): int(n) for i, n in data["neg"]}
        return hist
