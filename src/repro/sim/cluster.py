"""Simulated hosts and network for cluster-scale experiments.

Models the paper's testbed (§6.1): N hosts, each with a fixed amount of
RAM and a NIC attached to a shared 1 Gbps network, plus a distinct KVS
endpoint (Redis) that all state traffic flows through. Memory is tracked
per host so experiments reproduce the OOM behaviour Knative hits beyond
~30 parallel functions (Fig. 6a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .engine import Environment, Resource
from .metrics import TransferTotals

#: Testbed parameters from §6.1.
DEFAULT_HOST_RAM = 16 * 1024**3  # 16 GB
DEFAULT_BANDWIDTH = 125_000_000.0  # 1 Gbps in bytes/sec
DEFAULT_NET_LATENCY = 0.0002  # 200 µs RTT-ish LAN latency


class OutOfMemory(Exception):
    """A host could not satisfy an allocation (drives Fig. 6a's Knative
    failure beyond ~30 parallel functions)."""

    def __init__(self, host: "SimHost", requested: int):
        self.host = host
        self.requested = requested
        super().__init__(
            f"{host.name}: cannot allocate {requested} bytes "
            f"({host.mem_used}/{host.ram} in use)"
        )


class SimHost:
    """One machine: RAM accounting plus a serialised NIC."""

    def __init__(self, env: Environment, name: str, ram: int = DEFAULT_HOST_RAM,
                 nic_streams: int = 4):
        self.env = env
        self.name = name
        self.ram = ram
        self.mem_used = 0
        self.mem_peak = 0
        #: Concurrent transfer streams the NIC sustains before queueing.
        self.nic = Resource(env, nic_streams)
        self.tx_bytes = 0
        self.rx_bytes = 0

    # ------------------------------------------------------------------
    def allocate(self, nbytes: int) -> None:
        if self.mem_used + nbytes > self.ram:
            raise OutOfMemory(self, nbytes)
        self.mem_used += nbytes
        self.mem_peak = max(self.mem_peak, self.mem_used)

    def free(self, nbytes: int) -> None:
        self.mem_used = max(0, self.mem_used - nbytes)

    @property
    def mem_free(self) -> int:
        return self.ram - self.mem_used


class SimNetwork:
    """The shared cluster network: transfers take latency + size/bandwidth,
    serialised through each endpoint's NIC streams."""

    def __init__(
        self,
        env: Environment,
        bandwidth: float = DEFAULT_BANDWIDTH,
        latency: float = DEFAULT_NET_LATENCY,
    ):
        self.env = env
        self.bandwidth = bandwidth
        self.latency = latency
        self.totals = TransferTotals()

    def transfer(self, src: SimHost | None, dst: SimHost | None, nbytes: int):
        """Process generator: move ``nbytes`` from src to dst.

        Either endpoint may be ``None`` (an unmodelled externality such as
        the KVS service itself — its NIC contention is charged to the other
        endpoint)."""
        if nbytes <= 0:
            if self.latency:
                yield self.env.timeout(self.latency)
            return
        acquired: list[SimHost] = []
        for host in (src, dst):
            if host is not None:
                yield host.nic.request()
                acquired.append(host)
        try:
            yield self.env.timeout(self.latency + nbytes / self.bandwidth)
            if src is not None:
                src.tx_bytes += nbytes
            if dst is not None:
                dst.rx_bytes += nbytes
            self.totals.record(nbytes)
        finally:
            for host in acquired:
                host.nic.release()


@dataclass
class SimCluster:
    """Hosts + network + KVS endpoint(s), shared by all platform models.

    The global tier is one Redis-like endpoint by default; building with
    ``kvs_shards > 1`` models a sharded tier (Anna/Pocket-style, §7): keys
    hash onto shards, each with its own NIC, removing the single-endpoint
    bottleneck.
    """

    env: Environment
    hosts: list[SimHost]
    network: SimNetwork
    #: The Redis-like global-tier endpoints (empty = external service).
    kvs_hosts: list[SimHost] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        env: Environment,
        n_hosts: int,
        ram: int = DEFAULT_HOST_RAM,
        bandwidth: float = DEFAULT_BANDWIDTH,
        latency: float = DEFAULT_NET_LATENCY,
        kvs_nic_streams: int = 16,
        kvs_shards: int = 1,
    ) -> "SimCluster":
        hosts = [SimHost(env, f"host-{i}", ram) for i in range(n_hosts)]
        network = SimNetwork(env, bandwidth, latency)
        kvs = [
            SimHost(env, f"kvs-{i}", ram, nic_streams=kvs_nic_streams)
            for i in range(kvs_shards)
        ]
        return cls(env, hosts, network, kvs)

    @property
    def kvs_host(self) -> SimHost | None:
        return self.kvs_hosts[0] if self.kvs_hosts else None

    def _kvs_for(self, key: str | None) -> SimHost | None:
        if not self.kvs_hosts:
            return None
        if key is None or len(self.kvs_hosts) == 1:
            return self.kvs_hosts[0]
        import hashlib

        digest = hashlib.blake2s(key.encode(), digest_size=4).digest()
        return self.kvs_hosts[int.from_bytes(digest, "big") % len(self.kvs_hosts)]

    def to_kvs(self, src: SimHost, nbytes: int, key: str | None = None):
        return self.network.transfer(src, self._kvs_for(key), nbytes)

    def from_kvs(self, dst: SimHost, nbytes: int, key: str | None = None):
        return self.network.transfer(self._kvs_for(key), dst, nbytes)

    def total_transferred_gb(self) -> float:
        return self.network.totals.gigabytes
