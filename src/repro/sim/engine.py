"""A minimal discrete-event simulation engine (processes as generators).

The cluster-scale experiments (Figs. 6–8, 10) need a 20-host deployment
with realistic queueing, bandwidth sharing and memory pressure — far beyond
what can execute in real time on one machine. This engine provides the
simpy-style core they run on: an event queue, generator-based processes,
timeouts, and capacity resources.

Usage::

    env = Environment()

    def worker(env):
        yield env.timeout(1.5)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 1.5 and proc.value == "done"
"""

from __future__ import annotations

import heapq
from itertools import count


class SimulationError(RuntimeError):
    """Generic failure inside the simulation."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted."""

    def __init__(self, cause=None):
        self.cause = cause
        super().__init__(cause)


PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Event:
    """A one-shot event; processes wait on it by yielding it."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list = []
        self.state = PENDING
        self.value = None
        self._exception: BaseException | None = None

    # ------------------------------------------------------------------
    def succeed(self, value=None) -> "Event":
        if self.state != PENDING:
            raise SimulationError("event already triggered")
        self.value = value
        self.state = TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.state != PENDING:
            raise SimulationError("event already triggered")
        self._exception = exception
        self.state = TRIGGERED
        self.env._schedule(self)
        return self

    @property
    def triggered(self) -> bool:
        return self.state != PENDING

    @property
    def processed(self) -> bool:
        return self.state == PROCESSED

    @property
    def ok(self) -> bool:
        return self.triggered and self._exception is None

    # ------------------------------------------------------------------
    def subscribe(self, callback) -> None:
        """Attach a callback, firing immediately if already processed."""
        if self.state == PROCESSED:
            immediate = Event(self.env)
            immediate.callbacks.append(lambda _ev: callback(self))
            immediate.succeed()
        else:
            self.callbacks.append(callback)

    def _fire(self) -> None:
        self.state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires after a simulated delay."""

    def __init__(self, env: "Environment", delay: float, value=None):
        if delay < 0:
            raise ValueError("negative timeout")
        super().__init__(env)
        self.value = value
        self.state = TRIGGERED
        env._schedule(self, delay)


class Process(Event):
    """A running generator; itself an event that fires on completion."""

    def __init__(self, env: "Environment", generator):
        super().__init__(env)
        self._generator = generator
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        try:
            if event._exception is not None:
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(
                    event.value if event is not self else None
                )
        except StopIteration as stop:
            if self.state == PENDING:
                self.value = stop.value
                self.state = TRIGGERED
                self.env._schedule(self)
            return
        except Interrupt:
            if self.state == PENDING:
                self.state = TRIGGERED
                self.env._schedule(self)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}, expected an Event"
            )
        target.subscribe(self._resume)

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at the next step."""
        event = Event(self.env)
        event.callbacks.append(self._resume)
        event.fail(Interrupt(cause))


class Environment:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list = []
        self._seq = count()

    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def timeout(self, delay: float, value=None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator) -> Process:
        return Process(self, generator)

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        while self._heap:
            at, _, event = self._heap[0]
            if until is not None and at > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = at
            event._fire()
        if until is not None:
            self.now = max(self.now, until)

    def run_process(self, generator):
        """Convenience: run a process to completion and return its value."""
        proc = self.process(generator)
        self.run()
        if not proc.processed and proc.state != TRIGGERED:
            raise SimulationError("process did not complete (deadlock?)")
        if proc._exception is not None:
            raise proc._exception
        return proc.value


def all_of(env: Environment, events: list[Event]) -> Event:
    """An event that fires when every event in ``events`` has fired,
    yielding the list of their values."""
    result = env.event()
    remaining = len(events)
    if remaining == 0:
        result.succeed([])
        return result
    values: list = [None] * len(events)

    def make_cb(i):
        def cb(ev):
            nonlocal remaining
            if ev._exception is not None:
                if result.state == PENDING:
                    result.fail(ev._exception)
                return
            values[i] = ev.value
            remaining -= 1
            if remaining == 0 and result.state == PENDING:
                result.succeed(values)

        return cb

    for i, event in enumerate(events):
        event.subscribe(make_cb(i))
    return result


class Resource:
    """A capacity-limited resource with FIFO queueing."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: list[Event] = []

    def request(self) -> Event:
        """An event firing when a slot is acquired; pair with release()."""
        event = self.env.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self.in_use = max(0, self.in_use - 1)

    def acquire(self):
        """Generator helper: ``yield from resource.acquire()``."""
        yield self.request()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Store:
    """An unbounded FIFO item store (message-queue building block)."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: list = []
        self._getters: list[Event] = []

    def put(self, item) -> None:
        if self._getters:
            self._getters.pop(0).succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = self.env.event()
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
