"""The FAASM platform model for cluster-scale simulated experiments.

Encodes the architectural properties measured in §6, with parameters
calibrated from the paper's own microbenchmarks (Tab. 3):

* isolation units are Faaslets: ~270 kB memory overhead (§6.2), cold
  starts of ~5 ms, or ~0.5 ms when restored from a Proto-Faaslet;
* the **local state tier** is shared per host: the first read of a state
  chunk on a host pulls it from the KVS and materialises one replica; every
  co-located reader afterwards hits shared memory at zero network and zero
  additional memory cost (§4.2);
* writes with ``push=False`` stay local (batching, as ``VectorAsync``
  does); pushes ship one copy per host;
* chaining rides the message bus: sub-millisecond, no HTTP stack;
* guest compute pays a WebAssembly slowdown factor (Fig. 9: most kernels
  near 1×, so the default is a mild 1.1×).

Nothing in this module hard-codes an experimental *result*: training times,
transfer volumes and billable memory all emerge from these mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cluster import SimCluster, SimHost
from .engine import Event
from .platform import SimCall, SimPlatform
from .workload import Chain, LoadExternal, StateRead, StateWrite

#: Tab. 3: Faaslet RSS for a no-op function.
FAASLET_OVERHEAD = 270 * 1024
#: Tab. 3 / Fig. 10: cold start without and with a Proto-Faaslet.
COLD_START_S = 0.0052
PROTO_RESTORE_S = 0.0005
#: Message-bus chaining latency (§3.1: direct inter-Faaslet communication,
#: including the shared-state scheduling decision).
CHAIN_LATENCY_S = 0.001
#: Default wasm compute slowdown (Fig. 9a: most Polybench kernels ≈ 1×).
WASM_SLOWDOWN = 1.1


@dataclass
class SimFaaslet:
    """The model-side record of one Faaslet."""

    host: SimHost
    function: str
    memory: int
    busy: bool = False


class FaasmSimPlatform(SimPlatform):
    """Simulated FAASM deployment (one Faaslet pool per host)."""

    def __init__(
        self,
        cluster: SimCluster,
        use_protos: bool = True,
        wasm_slowdown: float = WASM_SLOWDOWN,
        local_tier: bool = True,
        chain_local_capacity: int = 4,
    ):
        super().__init__(cluster)
        self.use_protos = use_protos
        self.wasm_slowdown = wasm_slowdown
        #: Ablation switch: disable the shared local tier (every read ships).
        self.local_tier = local_tier
        #: §5.1: a chained call executes on its caller's host while fewer
        #: than this many Faaslets are busy there (the host's core count);
        #: beyond that, work is shared with other hosts.
        self.chain_local_capacity = chain_local_capacity
        #: Warm Faaslets per function name.
        self._warm: dict[str, list[SimFaaslet]] = {}
        #: (host, key) -> replica size currently in that host's local tier.
        self._replicas: dict[tuple[str, str], int] = {}
        #: Pending batched writes per (host, key) — flushed on push.
        self._dirty: dict[tuple[str, str], int] = {}

    def compute_slowdown(self) -> float:
        return self.wasm_slowdown

    # ------------------------------------------------------------------
    # Faaslet lifecycle
    # ------------------------------------------------------------------
    def _acquire_unit(self, call: SimCall):
        preferred = self._preferred_host(call)
        if preferred is None and call.origin is not None:
            if self._busy_on(call.origin) < self.chain_local_capacity:
                preferred = call.origin
        pool = self._warm.get(call.function.name, [])
        idle_units = [f for f in pool if not f.busy]
        if idle_units:
            # Prefer a warm Faaslet co-located with the call's state (§5.1).
            idle = next(
                (f for f in idle_units if preferred and f.host is preferred),
                idle_units[0],
            )
            self.metrics.warm_starts += 1
            idle.busy = True
            call.unit = idle
            call.host = idle.host
            self.track_peak(call, idle.memory)
            return
            yield  # pragma: no cover
        # Cold start, co-located with required state when possible.
        host = preferred or self.least_loaded_host()
        memory = FAASLET_OVERHEAD + call.function.working_set
        host.allocate(memory)
        faaslet = SimFaaslet(host, call.function.name, memory, busy=True)
        self._warm.setdefault(call.function.name, []).append(faaslet)
        call.unit = faaslet
        call.host = host
        self.metrics.cold_starts += 1
        if self.use_protos and call.function.snapshot_init:
            # Restore from snapshot: initialisation happened at upload time.
            yield self.env.timeout(PROTO_RESTORE_S)
        else:
            yield self.env.timeout(COLD_START_S)
            if call.function.init_cost_s:
                yield self.env.timeout(call.function.init_cost_s)
        self.track_peak(call, memory)

    def _release_unit(self, call: SimCall):
        if call.unit is not None:
            call.unit.busy = False
        return
        yield  # pragma: no cover

    def _busy_on(self, host: SimHost) -> int:
        return sum(
            1
            for pool in self._warm.values()
            for faaslet in pool
            if faaslet.busy and faaslet.host is host
        )

    def _preferred_host(self, call: SimCall) -> SimHost | None:
        """The host holding the most replicas of the call's declared state
        keys — the shared-state scheduler's data-locality goal (§5.1)."""
        if call.function.locality is None:
            return None
        keys = call.function.locality(call.arg)
        if not keys:
            return None
        best, best_score = None, 0
        for host in self.cluster.hosts:
            score = sum(
                1
                for key in keys
                if isinstance(self._replicas.get((host.name, key)), int)
            )
            if score > best_score:
                best, best_score = host, score
        return best

    # ------------------------------------------------------------------
    # Two-tier state semantics
    # ------------------------------------------------------------------
    def _do_state_read(self, call: SimCall, op: StateRead):
        host = call.host
        replica_key = (host.name, op.key)
        if not self.local_tier:
            # Ablation: value is copied privately into the Faaslet.
            yield from self.cluster.from_kvs(host, op.nbytes, key=op.key)
            call.unit.memory += op.nbytes
            host.allocate(op.nbytes)
            self.track_peak(call, call.unit.memory)
            return
        entry = self._replicas.get(replica_key)
        if entry is not None:
            if isinstance(entry, int):
                # Local-tier hit: shared memory, no network, no new copy.
                self.track_peak(call, call.unit.memory)
                return
            # A co-located Faaslet is pulling this value right now; wait on
            # the replica write lock rather than pulling a duplicate (§4.2).
            yield entry
            self.track_peak(call, call.unit.memory)
            return
        pending = self.env.event()
        self._replicas[replica_key] = pending
        yield from self.cluster.from_kvs(host, op.nbytes, key=op.key)
        host.allocate(op.nbytes)
        self._replicas[replica_key] = op.nbytes
        pending.succeed()
        self.track_peak(call, call.unit.memory + op.nbytes)

    def _do_state_write(self, call: SimCall, op: StateWrite):
        host = call.host
        replica_key = (host.name, op.key)
        if self.local_tier:
            entry = self._replicas.get(replica_key)
            if isinstance(entry, Event):
                yield entry
                entry = self._replicas.get(replica_key)
            if not isinstance(entry, int):
                host.allocate(op.nbytes)
                self._replicas[replica_key] = op.nbytes
            self.track_peak(call, call.unit.memory + op.nbytes)
            if op.push:
                # Batched per-host push: one transfer regardless of how many
                # local writers contributed (§6.2).
                yield from self.cluster.to_kvs(host, op.nbytes, key=op.key)
            else:
                self._dirty[replica_key] = op.nbytes
                return
        else:
            yield from self.cluster.to_kvs(host, op.nbytes, key=op.key)

    def flush_dirty(self):
        """Process generator: push all batched writes (end of an epoch).
        Hosts flush concurrently — each push is an independent transfer."""
        from .engine import all_of

        dirty, self._dirty = self._dirty, {}
        pushes = []
        for (host_name, key), nbytes in dirty.items():
            host = next(h for h in self.cluster.hosts if h.name == host_name)
            pushes.append(self.env.process(self.cluster.to_kvs(host, nbytes, key=key)))
        if pushes:
            yield all_of(self.env, pushes)

    # ------------------------------------------------------------------
    def _do_load_external(self, call: SimCall, op: LoadExternal):
        yield from self.cluster.network.transfer(None, call.host, op.nbytes)

    def _do_chain(self, call: SimCall, op: Chain):
        # Message-bus chaining; the callee carries its caller's host so the
        # scheduler can execute it locally when capacity allows (§5.1).
        yield self.env.timeout(CHAIN_LATENCY_S)
        return self.invoke(op.function, op.arg, origin=call.host)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def host_replica_bytes(self, host: SimHost) -> int:
        return sum(
            size
            for (h, _k), size in self._replicas.items()
            if h == host.name and isinstance(size, int)
        )

    def reclaim_idle(self) -> None:
        """Tear down idle Faaslets and local replicas (between sweeps)."""
        for pool in self._warm.values():
            for faaslet in pool:
                if not faaslet.busy:
                    faaslet.host.free(faaslet.memory)
        self._warm = {
            name: [f for f in pool if f.busy] for name, pool in self._warm.items()
        }
        for (host_name, _key), size in self._replicas.items():
            if not isinstance(size, int):
                continue
            host = next(h for h in self.cluster.hosts if h.name == host_name)
            host.free(size)
        self._replicas.clear()
        self._dirty.clear()
