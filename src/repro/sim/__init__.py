"""``repro.sim`` — discrete-event cluster simulation.

The engine (:mod:`repro.sim.engine`) is a generic simpy-style event loop;
:mod:`repro.sim.cluster` models hosts, NICs and the shared network;
:mod:`repro.sim.workload` defines platform-independent workloads; and
:mod:`repro.sim.faasm_platform` (with :mod:`repro.baseline.knative`)
interpret those workloads under FAASM/container semantics for the
paper-scale experiments.
"""

from .cluster import (
    DEFAULT_BANDWIDTH,
    DEFAULT_HOST_RAM,
    DEFAULT_NET_LATENCY,
    OutOfMemory,
    SimCluster,
    SimHost,
    SimNetwork,
)
from .engine import (
    Environment,
    Event,
    Interrupt,
    Process,
    Resource,
    SimulationError,
    Store,
    Timeout,
    all_of,
)
from .faasm_platform import FaasmSimPlatform
from .metrics import (
    BillableMemory,
    ExperimentMetrics,
    LatencyRecorder,
    TransferTotals,
    percentile,
)
from .platform import SimCall, SimPlatform
from .workload import (
    Await,
    CallHandle,
    Chain,
    Compute,
    LoadExternal,
    SimFunction,
    StateRead,
    StateWrite,
)

__all__ = [
    "Await",
    "BillableMemory",
    "CallHandle",
    "Chain",
    "Compute",
    "DEFAULT_BANDWIDTH",
    "DEFAULT_HOST_RAM",
    "DEFAULT_NET_LATENCY",
    "Environment",
    "Event",
    "ExperimentMetrics",
    "FaasmSimPlatform",
    "Interrupt",
    "LatencyRecorder",
    "LoadExternal",
    "OutOfMemory",
    "Process",
    "Resource",
    "SimCall",
    "SimCluster",
    "SimFunction",
    "SimHost",
    "SimNetwork",
    "SimPlatform",
    "SimulationError",
    "StateRead",
    "StateWrite",
    "Store",
    "Timeout",
    "TransferTotals",
    "percentile",
]
