"""Base class for simulated serverless platforms.

Concrete models — :class:`~repro.sim.faasm_platform.FaasmSimPlatform` and
:class:`~repro.baseline.knative.KnativeSimPlatform` — share the execution
skeleton here: scheduling a call onto a host, walking the workload's op
generator, and recording latency/billable-memory metrics. They differ in
the hooks: isolation-unit acquisition (cold vs warm), state-op semantics
and chaining cost, which is exactly where the paper's two systems differ.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from .cluster import OutOfMemory, SimCluster, SimHost
from .engine import Environment, all_of
from .metrics import ExperimentMetrics
from .workload import (
    Await,
    CallHandle,
    Chain,
    Compute,
    LoadExternal,
    SimFunction,
    StateRead,
    StateWrite,
)


@dataclass
class SimCall:
    """Bookkeeping for one invocation on a simulated platform."""

    function: SimFunction
    arg: object
    host: SimHost | None = None
    #: Isolation unit (container / faaslet model), platform-specific.
    unit: object = None
    #: Host of the chaining caller, when this call was chained.
    origin: SimHost | None = None
    submitted: float = 0.0
    started: float = 0.0
    peak_memory: int = 0
    failed: bool = False


class SimPlatform(ABC):
    """Shared machinery for simulated serverless platforms."""

    def __init__(self, cluster: SimCluster):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.metrics = ExperimentMetrics()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def invoke(self, function: SimFunction, arg=None, origin: SimHost | None = None) -> CallHandle:
        """Submit a call; returns a handle whose process yields on finish.

        ``origin`` is the chaining caller's host, used by locality-aware
        platforms for placement.
        """
        process = self.env.process(self._run_call(function, arg, origin))
        return CallHandle(process, function.name)

    def invoke_many(self, function: SimFunction, args: list) -> list[CallHandle]:
        return [self.invoke(function, arg) for arg in args]

    def wait_all(self, handles: list[CallHandle]):
        """Process generator: wait for every handle."""
        yield all_of(self.env, [h.process for h in handles])

    def run_to_completion(self, handles: list[CallHandle]) -> float:
        """Drive the simulation until all handles finish; returns makespan."""
        start = self.env.now
        self.env.run()
        for handle in handles:
            if not handle.process.processed:
                raise RuntimeError(f"call to {handle.function} never finished")
        return self.env.now - start

    # ------------------------------------------------------------------
    # Call skeleton
    # ------------------------------------------------------------------
    def _run_call(self, function: SimFunction, arg, origin: SimHost | None = None):
        call = SimCall(function, arg, origin=origin, submitted=self.env.now)
        try:
            yield from self._acquire_unit(call)
        except OutOfMemory:
            # The platform could not place the call: the paper's Knative
            # runs hit exactly this beyond ~30 parallel functions (§6.2).
            self.metrics.failures += 1
            call.failed = True
            return
        call.started = self.env.now
        try:
            yield from self._interpret(call)
        except OutOfMemory:
            self.metrics.failures += 1
            call.failed = True
        finally:
            finished = self.env.now
            if not call.failed:
                self.metrics.latency.record(finished - call.submitted)
                self.metrics.billable.record(
                    call.peak_memory, finished - call.started
                )
            yield from self._release_unit(call)

    def _interpret(self, call: SimCall):
        generator = call.function.body(call.arg)
        to_send = None
        while True:
            try:
                op = generator.send(to_send)
            except StopIteration:
                return
            to_send = None
            if isinstance(op, Compute):
                yield from self._do_compute(call, op)
            elif isinstance(op, StateRead):
                yield from self._do_state_read(call, op)
            elif isinstance(op, StateWrite):
                yield from self._do_state_write(call, op)
            elif isinstance(op, LoadExternal):
                yield from self._do_load_external(call, op)
            elif isinstance(op, Chain):
                to_send = yield from self._do_chain(call, op)
            elif isinstance(op, Await):
                yield all_of(self.env, [h.process for h in op.handles])
            else:
                raise TypeError(f"unknown workload op {op!r}")

    def _do_compute(self, call: SimCall, op: Compute):
        if op.seconds > 0:
            yield self.env.timeout(op.seconds * self.compute_slowdown())
        return
        yield  # pragma: no cover - keeps this a generator when seconds == 0

    def compute_slowdown(self) -> float:
        """Multiplier on compute time (e.g. wasm overhead in Faasm)."""
        return 1.0

    # ------------------------------------------------------------------
    # Platform-specific hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _acquire_unit(self, call: SimCall):
        """Pick a host and an isolation unit (cold or warm); a generator."""

    @abstractmethod
    def _release_unit(self, call: SimCall):
        """Return the unit to the warm pool / reclaim; a generator."""

    @abstractmethod
    def _do_state_read(self, call: SimCall, op: StateRead):
        ...

    @abstractmethod
    def _do_state_write(self, call: SimCall, op: StateWrite):
        ...

    @abstractmethod
    def _do_load_external(self, call: SimCall, op: LoadExternal):
        ...

    @abstractmethod
    def _do_chain(self, call: SimCall, op: Chain):
        """Issue a chained call; returns (via generator return) a handle."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def least_loaded_host(self) -> SimHost:
        return min(self.cluster.hosts, key=lambda h: h.mem_used)

    def track_peak(self, call: SimCall, unit_memory: int) -> None:
        call.peak_memory = max(call.peak_memory, unit_memory)
