"""Platform-independent workload descriptions for simulated experiments.

The paper stresses that "all experiments are implemented using the same
code for both FAASM and Knative" (§6.1). We mirror that: a workload is a
:class:`SimFunction` whose body is a generator yielding abstract operations
(compute, state reads/writes, chained calls); each platform model
interprets those operations with its own cost semantics — shared local
tier vs per-container duplication, message-bus chaining vs HTTP, snapshot
restores vs container boots.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Compute:
    """Pure computation for ``seconds`` of simulated CPU time."""

    seconds: float


@dataclass(frozen=True)
class StateRead:
    """Read ``nbytes`` of the state value ``key``.

    ``key`` identifies the value or chunk (chunked reads use distinct keys,
    e.g. ``"mat:0"``). Platforms decide whether this is a network pull or a
    local-tier hit. ``once_per_unit`` marks reads an isolation unit caches
    for its lifetime (e.g. a served model loaded at startup): containers
    re-fetch it only on cold start rather than on every invocation.
    """

    key: str
    nbytes: int
    once_per_unit: bool = False


@dataclass(frozen=True)
class StateWrite:
    """Write ``nbytes`` to ``key``. With ``push=False`` the write stays in
    the local tier where one exists (Faasm); platforms without a local tier
    must ship it regardless."""

    key: str
    nbytes: int
    push: bool = True


@dataclass(frozen=True)
class LoadExternal:
    """Fetch ``nbytes`` from an external service (e.g. the image file
    server of §6.3) — network traffic that is not state."""

    nbytes: int


@dataclass(frozen=True)
class Chain:
    """Invoke another function asynchronously; the op evaluates to a call
    handle to pass to :class:`Await`."""

    function: "SimFunction"
    arg: object = None


@dataclass(frozen=True)
class Await:
    """Wait for every handle in ``handles`` to complete (the chain/await
    loop pattern of Listing 1)."""

    handles: tuple


@dataclass
class SimFunction:
    """A deployable function for the simulated platforms.

    ``body(arg)`` is a generator yielding the ops above. ``working_set``
    is the function's private (non-state) memory in bytes. ``init_cost``
    models initialisation work beyond the isolation mechanism itself (e.g.
    loading a language runtime or an ML model), which Proto-Faaslets can
    snapshot away but containers pay on every cold start.
    """

    name: str
    body: Callable
    working_set: int = 1 * 1024 * 1024
    init_cost_s: float = 0.0
    #: Whether a Proto-Faaslet snapshot captures init (Faasm skips init_cost).
    snapshot_init: bool = True
    #: Optional ``locality(arg) -> list[str]`` naming the state keys the
    #: call will touch; locality-aware platforms (FAASM's shared-state
    #: scheduler, §5.1) place the call where those replicas already live.
    locality: Callable | None = None


@dataclass
class CallHandle:
    """Returned by Chain; resolved by the platform."""

    process: object
    function: str


# ----------------------------------------------------------------------
# Open-loop arrival traces (the ingestion plane's load, DESIGN.md §11)
# ----------------------------------------------------------------------
#
# An arrival trace is a seed-deterministic list of :class:`Arrival`
# events — *when* calls arrive, independent of how fast the platform
# completes them (open-loop: the generator never waits for responses, so
# queueing shows up as sojourn latency rather than as a depressed offered
# rate, the standard methodology for saturation studies).


@dataclass(frozen=True)
class Arrival:
    """One open-loop arrival: a call offered at ``at`` seconds from the
    trace's start."""

    at: float
    function: str
    tenant: str = "default"
    input_data: bytes = b""


def _poisson_arrivals(rng, rate, start, end, function_of, tenant):
    events = []
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= end:
            return events
        events.append(Arrival(t, function_of(rng), tenant=tenant))


def poisson_trace(
    rate: float,
    duration: float,
    seed: int = 0,
    functions: tuple[str, ...] = ("fn",),
    tenant: str = "default",
) -> list[Arrival]:
    """A Poisson arrival process at ``rate``/sec for ``duration`` seconds
    (exponential inter-arrivals; the memoryless baseline trace)."""
    if rate <= 0:
        return []
    rng = random.Random(f"poisson:{seed}")
    return _poisson_arrivals(
        rng, rate, 0.0, duration, lambda r: r.choice(functions), tenant
    )


def bursty_trace(
    on_rate: float,
    duration: float,
    seed: int = 0,
    off_rate: float = 0.0,
    mean_on_s: float = 0.5,
    mean_off_s: float = 0.5,
    functions: tuple[str, ...] = ("fn",),
    tenant: str = "default",
) -> list[Arrival]:
    """An ON/OFF (interrupted-Poisson) process: exponentially-distributed
    ON phases arriving at ``on_rate`` alternate with OFF phases at
    ``off_rate`` (0 = silence). The bursty shape that stresses admission
    queues and the autoscaler far harder than the same mean rate offered
    smoothly."""
    rng = random.Random(f"bursty:{seed}")
    events: list[Arrival] = []
    t, on = 0.0, True
    while t < duration:
        phase = rng.expovariate(1.0 / (mean_on_s if on else mean_off_s))
        end = min(t + phase, duration)
        rate = on_rate if on else off_rate
        if rate > 0:
            events.extend(
                _poisson_arrivals(
                    rng, rate, t, end, lambda r: r.choice(functions), tenant
                )
            )
        t, on = end, not on
    return events


def multi_tenant_trace(
    tenant_rates: dict[str, float],
    duration: float,
    seed: int = 0,
    functions: tuple[str, ...] = ("fn",),
) -> list[Arrival]:
    """Independent per-tenant Poisson processes merged into one trace
    (sorted by arrival time). Each tenant's sub-trace is derived from
    ``(seed, tenant)``, so adding a tenant never perturbs the others."""
    events: list[Arrival] = []
    for tenant, rate in sorted(tenant_rates.items()):
        if rate <= 0:
            continue
        rng = random.Random(f"tenant:{seed}:{tenant}")
        events.extend(
            _poisson_arrivals(
                rng, rate, 0.0, duration,
                lambda r: r.choice(functions), tenant,
            )
        )
    events.sort(key=lambda e: (e.at, e.tenant))
    return events


def make_trace(kind: str, **kwargs) -> list[Arrival]:
    """Trace factory by name — "poisson", "bursty", or "multi" (the CLI's
    ``--trace`` values)."""
    if kind == "poisson":
        return poisson_trace(**kwargs)
    if kind == "bursty":
        return bursty_trace(**kwargs)
    if kind == "multi":
        return multi_tenant_trace(**kwargs)
    raise ValueError(
        f"unknown trace kind {kind!r}; expected poisson|bursty|multi"
    )


def replay(
    events: list[Arrival],
    submit,
    speed: float = 1.0,
    sleep_fn=time.sleep,
    now_fn=time.monotonic,
) -> list:
    """Replay a trace open-loop against ``submit(function, input_data,
    tenant)``: each arrival fires at its trace time (scaled by ``speed``;
    ``speed=0`` submits as fast as possible), never waiting on
    completions. Returns the submit results in trace order."""
    results = []
    start = now_fn()
    for event in events:
        if speed > 0:
            due = start + event.at / speed
            delay = due - now_fn()
            if delay > 0:
                sleep_fn(delay)
        results.append(submit(event.function, event.input_data, event.tenant))
    return results
