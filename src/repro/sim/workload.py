"""Platform-independent workload descriptions for simulated experiments.

The paper stresses that "all experiments are implemented using the same
code for both FAASM and Knative" (§6.1). We mirror that: a workload is a
:class:`SimFunction` whose body is a generator yielding abstract operations
(compute, state reads/writes, chained calls); each platform model
interprets those operations with its own cost semantics — shared local
tier vs per-container duplication, message-bus chaining vs HTTP, snapshot
restores vs container boots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Compute:
    """Pure computation for ``seconds`` of simulated CPU time."""

    seconds: float


@dataclass(frozen=True)
class StateRead:
    """Read ``nbytes`` of the state value ``key``.

    ``key`` identifies the value or chunk (chunked reads use distinct keys,
    e.g. ``"mat:0"``). Platforms decide whether this is a network pull or a
    local-tier hit. ``once_per_unit`` marks reads an isolation unit caches
    for its lifetime (e.g. a served model loaded at startup): containers
    re-fetch it only on cold start rather than on every invocation.
    """

    key: str
    nbytes: int
    once_per_unit: bool = False


@dataclass(frozen=True)
class StateWrite:
    """Write ``nbytes`` to ``key``. With ``push=False`` the write stays in
    the local tier where one exists (Faasm); platforms without a local tier
    must ship it regardless."""

    key: str
    nbytes: int
    push: bool = True


@dataclass(frozen=True)
class LoadExternal:
    """Fetch ``nbytes`` from an external service (e.g. the image file
    server of §6.3) — network traffic that is not state."""

    nbytes: int


@dataclass(frozen=True)
class Chain:
    """Invoke another function asynchronously; the op evaluates to a call
    handle to pass to :class:`Await`."""

    function: "SimFunction"
    arg: object = None


@dataclass(frozen=True)
class Await:
    """Wait for every handle in ``handles`` to complete (the chain/await
    loop pattern of Listing 1)."""

    handles: tuple


@dataclass
class SimFunction:
    """A deployable function for the simulated platforms.

    ``body(arg)`` is a generator yielding the ops above. ``working_set``
    is the function's private (non-state) memory in bytes. ``init_cost``
    models initialisation work beyond the isolation mechanism itself (e.g.
    loading a language runtime or an ML model), which Proto-Faaslets can
    snapshot away but containers pay on every cold start.
    """

    name: str
    body: Callable
    working_set: int = 1 * 1024 * 1024
    init_cost_s: float = 0.0
    #: Whether a Proto-Faaslet snapshot captures init (Faasm skips init_cost).
    snapshot_init: bool = True
    #: Optional ``locality(arg) -> list[str]`` naming the state keys the
    #: call will touch; locality-aware platforms (FAASM's shared-state
    #: scheduler, §5.1) place the call where those replicas already live.
    locality: Callable | None = None


@dataclass
class CallHandle:
    """Returned by Chain; resolved by the platform."""

    process: object
    function: str
