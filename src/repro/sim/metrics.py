"""Metrics for simulated experiments: latency, transfers, billable memory.

*Billable memory* follows §6.1: the product of peak function memory and
function runtime, summed over invocations, in GB-seconds — the unit many
serverless platforms bill in. State and container/Faaslet overheads are
included by the platforms when they report per-invocation peaks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

# One percentile implementation serves the whole repo: this module, the
# telemetry Histogram and the span exporters all share it (re-exported
# here because `sim.metrics.percentile` is the historic import path).
from repro.telemetry.stats import percentile
from repro.telemetry.streaming import StreamingHistogram

GB = 1e9

__all__ = [
    "GB",
    "BillableMemory",
    "ExperimentMetrics",
    "LatencyRecorder",
    "StreamingLatencyRecorder",
    "TransferTotals",
    "percentile",
]


@dataclass
class LatencyRecorder:
    """Collects per-request latencies (seconds)."""

    samples: list[float] = field(default_factory=list)

    def record(self, latency: float) -> None:
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    def median(self) -> float:
        return percentile(self.samples, 50)

    def p(self, pct: float) -> float:
        return percentile(self.samples, pct)

    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    def cdf(self, points: int = 100) -> list[tuple[float, float]]:
        """(latency, fraction of requests ≤ latency) pairs."""
        ordered = sorted(self.samples)
        n = len(ordered)
        return [
            (ordered[min(n - 1, math.ceil(i * n / points) - 1)], i / points)
            for i in range(1, points + 1)
        ]


class StreamingLatencyRecorder:
    """Drop-in :class:`LatencyRecorder` at O(1) memory.

    Backed by a log-bucketed :class:`StreamingHistogram`, so million-call
    simulated soaks get unbiased long-run p50/p99 without retaining every
    sample (percentiles carry the histogram's ~3.9% bucket error; no
    ``samples`` list, no ``cdf``).
    """

    def __init__(self) -> None:
        self.hist = StreamingHistogram()

    def record(self, latency: float) -> None:
        self.hist.observe(latency)

    @property
    def count(self) -> int:
        return self.hist.count

    def median(self) -> float:
        return self.hist.percentile(50)

    def p(self, pct: float) -> float:
        return self.hist.percentile(pct)

    def mean(self) -> float:
        return self.hist.mean()


@dataclass
class BillableMemory:
    """Accumulates peak-memory × duration in GB-seconds."""

    gb_seconds: float = 0.0
    invocations: int = 0

    def record(self, peak_bytes: int, duration_s: float) -> None:
        self.gb_seconds += (peak_bytes / GB) * duration_s
        self.invocations += 1


@dataclass
class TransferTotals:
    """Cluster-wide network transfer accounting (sent + received)."""

    bytes_total: int = 0
    transfers: int = 0

    def record(self, nbytes: int) -> None:
        # Both endpoints see the bytes, as §6.2 counts "sent + recv".
        self.bytes_total += 2 * nbytes
        self.transfers += 1

    @property
    def gigabytes(self) -> float:
        return self.bytes_total / GB


@dataclass
class ExperimentMetrics:
    """The bundle every simulated platform maintains."""

    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    billable: BillableMemory = field(default_factory=BillableMemory)
    transfers: TransferTotals = field(default_factory=TransferTotals)
    cold_starts: int = 0
    warm_starts: int = 0
    failures: int = 0
