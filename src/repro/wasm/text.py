"""Text-format assembler: a WAT-like s-expression front end.

Supports the structured subset used throughout the repository:

* module fields: ``import``, ``memory``, ``data``, ``global``, ``table``,
  ``elem``, ``func``, ``export``, ``start``;
* plain instructions with immediates (``i32.const 5``, ``local.get $x``,
  ``i32.load offset=8``, ``br $label``);
* structured control as parenthesised forms: ``(block $l (result i32) ...)``,
  ``(loop ...)``, ``(if (result t) <cond> (then ...) (else ...))``;
* folded expressions: ``(i32.add (local.get $a) (i32.const 1))``.

The assembler is the untrusted "compilation" phase of §3.4; its output still
goes through validation before code generation.
"""

from __future__ import annotations

from .errors import ParseError
from .instructions import (
    ALL_OPS,
    CONST_OPS,
    MEMARG_OPS,
    SIMD_LANE_IMM_OPS,
    BlockType,
    Instr,
)
from .module import (
    DataSegment,
    ElementSegment,
    Export,
    Function,
    Global,
    ImportedFunc,
    Module,
)
from .types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType

# ----------------------------------------------------------------------
# Tokenizer / s-expression reader
# ----------------------------------------------------------------------


class _Tok:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind: str, value, line: int):
        self.kind = kind  # "(", ")", "atom", "string"
        self.value = value
        self.line = line


def _tokenize(text: str) -> list[_Tok]:
    tokens: list[_Tok] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r":
            i += 1
        elif text.startswith(";;", i):
            end = text.find("\n", i)
            i = n if end == -1 else end
        elif text.startswith("(;", i):
            depth, i = 1, i + 2
            while i < n and depth:
                if text.startswith("(;", i):
                    depth += 1
                    i += 2
                elif text.startswith(";)", i):
                    depth -= 1
                    i += 2
                else:
                    if text[i] == "\n":
                        line += 1
                    i += 1
            if depth:
                raise ParseError("unterminated block comment", line)
        elif c == "(":
            tokens.append(_Tok("(", "(", line))
            i += 1
        elif c == ")":
            tokens.append(_Tok(")", ")", line))
            i += 1
        elif c == '"':
            j = i + 1
            out = bytearray()
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    esc = text[j + 1]
                    if esc == "n":
                        out += b"\n"
                        j += 2
                    elif esc == "t":
                        out += b"\t"
                        j += 2
                    elif esc in ('"', "\\"):
                        out += esc.encode()
                        j += 2
                    else:
                        out.append(int(text[j + 1 : j + 3], 16))
                        j += 3
                else:
                    out += text[j].encode("utf-8")
                    j += 1
            if j >= n:
                raise ParseError("unterminated string", line)
            tokens.append(_Tok("string", bytes(out), line))
            i = j + 1
        else:
            j = i
            while j < n and text[j] not in ' \t\r\n();"':
                j += 1
            tokens.append(_Tok("atom", text[i:j], line))
            i = j
    return tokens


def _read_sexprs(tokens: list[_Tok]):
    pos = 0

    def read():
        nonlocal pos
        tok = tokens[pos]
        if tok.kind == "(":
            pos += 1
            items = []
            while pos < len(tokens) and tokens[pos].kind != ")":
                items.append(read())
            if pos >= len(tokens):
                raise ParseError("unbalanced parentheses", tok.line)
            pos += 1
            return items
        if tok.kind == ")":
            raise ParseError("unexpected ')'", tok.line)
        pos += 1
        return tok

    exprs = []
    while pos < len(tokens):
        exprs.append(read())
    return exprs


def _is_atom(x, value: str | None = None) -> bool:
    return isinstance(x, _Tok) and x.kind == "atom" and (
        value is None or x.value == value
    )


def _head(sexpr) -> str | None:
    if isinstance(sexpr, list) and sexpr and _is_atom(sexpr[0]):
        return sexpr[0].value
    return None


def _parse_int(text: str, line: int) -> int:
    try:
        t = text.replace("_", "")
        if t.lower().startswith(("0x", "-0x", "+0x")):
            return int(t, 16)
        return int(t, 10)
    except ValueError:
        raise ParseError(f"bad integer literal {text!r}", line) from None


def _parse_float(text: str, line: int) -> float:
    t = text.replace("_", "")
    try:
        if t in ("nan", "+nan", "-nan"):
            return float("nan")
        if t in ("inf", "+inf"):
            return float("inf")
        if t == "-inf":
            return float("-inf")
        return float(t)
    except ValueError:
        raise ParseError(f"bad float literal {text!r}", line) from None


# ----------------------------------------------------------------------
# Module assembly
# ----------------------------------------------------------------------


class _Assembler:
    def __init__(self) -> None:
        self.module = Module()
        self.func_names: dict[str, int] = {}
        self.global_names: dict[str, int] = {}
        self._pending_funcs: list[tuple[list, int]] = []  # (sexpr, func_idx)

    # -- helpers ---------------------------------------------------------
    def _valtype(self, tok) -> ValType:
        if not _is_atom(tok):
            raise ParseError("expected a value type")
        try:
            return ValType.parse(tok.value)
        except ValueError:
            raise ParseError(f"unknown value type {tok.value!r}", tok.line) from None

    def _params_results(self, items: list) -> tuple[list[ValType], list[ValType], list[str | None]]:
        """Parse (param ...) and (result ...) clauses; returns param names."""
        params: list[ValType] = []
        names: list[str | None] = []
        results: list[ValType] = []
        for item in items:
            head = _head(item)
            if head == "param":
                rest = item[1:]
                if rest and _is_atom(rest[0]) and rest[0].value.startswith("$"):
                    names.append(rest[0].value)
                    params.append(self._valtype(rest[1]))
                else:
                    for tok in rest:
                        names.append(None)
                        params.append(self._valtype(tok))
            elif head == "result":
                results.extend(self._valtype(tok) for tok in item[1:])
        return params, results, names

    def _resolve_func(self, tok) -> int:
        if _is_atom(tok) and tok.value.startswith("$"):
            if tok.value not in self.func_names:
                raise ParseError(f"unknown function {tok.value}", tok.line)
            return self.func_names[tok.value]
        if _is_atom(tok):
            return _parse_int(tok.value, tok.line)
        raise ParseError("expected function reference")

    def _resolve_global(self, tok) -> int:
        if _is_atom(tok) and tok.value.startswith("$"):
            if tok.value not in self.global_names:
                raise ParseError(f"unknown global {tok.value}", tok.line)
            return self.global_names[tok.value]
        return _parse_int(tok.value, tok.line)

    def _const_expr(self, sexpr) -> int | float:
        head = _head(sexpr)
        if head not in CONST_OPS:
            raise ParseError("expected a constant expression")
        tok = sexpr[1]
        if head.startswith(("f32", "f64")):
            return _parse_float(tok.value, tok.line)
        return _parse_int(tok.value, tok.line)

    # -- module fields -----------------------------------------------------
    def assemble(self, sexpr) -> Module:
        if _head(sexpr) != "module":
            raise ParseError("top-level form must be (module ...)")
        fields = sexpr[1:]
        if fields and _is_atom(fields[0]) and fields[0].value.startswith("$"):
            self.module.name = fields[0].value[1:]
            fields = fields[1:]

        # Pass 1: establish the function index space (imports first).
        for field in fields:
            if _head(field) == "import" and _head(field[3]) == "func":
                self._field_import(field)
        for field in fields:
            if _head(field) == "func":
                self._declare_func(field)

        # Pass 2: everything else, and function bodies.
        for field in fields:
            head = _head(field)
            if head == "import":
                continue  # handled in pass 1
            handler = getattr(self, f"_field_{head}", None)
            if handler is None:
                raise ParseError(f"unknown module field {head!r}")
            handler(field)

        for sexpr_func, idx in self._pending_funcs:
            self._assemble_body(sexpr_func, idx)
        return self.module

    def _field_import(self, field) -> None:
        mod_tok, name_tok, desc = field[1], field[2], field[3]
        if _head(desc) != "func":
            raise ParseError("only function imports are supported")
        rest = desc[1:]
        fname = None
        if rest and _is_atom(rest[0]) and rest[0].value.startswith("$"):
            fname = rest[0].value
            rest = rest[1:]
        params, results, _ = self._params_results(rest)
        idx = len(self.module.imports)
        if self.module.funcs:
            raise ParseError("imports must precede function definitions")
        self.module.imports.append(
            ImportedFunc(
                mod_tok.value.decode(), name_tok.value.decode(),
                FuncType(tuple(params), tuple(results)),
            )
        )
        if fname:
            self.func_names[fname] = idx

    def _declare_func(self, field) -> None:
        rest = field[1:]
        fname = None
        if rest and _is_atom(rest[0]) and rest[0].value.startswith("$"):
            fname = rest[0].value
            rest = rest[1:]
        exports = []
        while rest and _head(rest[0]) == "export":
            exports.append(rest[0][1].value.decode())
            rest = rest[1:]
        params, results, param_names = self._params_results(rest)
        idx = len(self.module.imports) + len(self.module.funcs)
        func = Function(
            FuncType(tuple(params), tuple(results)),
            name=fname[1:] if fname else None,
        )
        self.module.funcs.append(func)
        if fname:
            self.func_names[fname] = idx
        for export_name in exports:
            self.module.exports.append(Export(export_name, "func", idx))
        self._pending_funcs.append((field, idx))

    def _field_func(self, field) -> None:
        pass  # declared in pass 1, body assembled afterwards

    def _field_memory(self, field) -> None:
        rest = field[1:]
        while rest and _head(rest[0]) == "export":
            self.module.exports.append(
                Export(rest[0][1].value.decode(), "memory", 0)
            )
            rest = rest[1:]
        minimum = _parse_int(rest[0].value, rest[0].line)
        maximum = _parse_int(rest[1].value, rest[1].line) if len(rest) > 1 else None
        self.module.memory = MemoryType(Limits(minimum, maximum))

    def _field_data(self, field) -> None:
        offset = self._const_expr(field[1])
        data = b"".join(tok.value for tok in field[2:])
        self.module.data.append(DataSegment(int(offset), data))

    def _field_global(self, field) -> None:
        rest = field[1:]
        gname = None
        if _is_atom(rest[0]) and rest[0].value.startswith("$"):
            gname = rest[0].value
            rest = rest[1:]
        typedesc = rest[0]
        if _head(typedesc) == "mut":
            gtype = GlobalType(self._valtype(typedesc[1]), mutable=True)
        else:
            gtype = GlobalType(self._valtype(typedesc), mutable=False)
        init = self._const_expr(rest[1])
        idx = len(self.module.globals_)
        self.module.globals_.append(Global(gtype, init))
        if gname:
            self.global_names[gname] = idx

    def _field_table(self, field) -> None:
        rest = field[1:]
        if rest and _is_atom(rest[0]) and rest[0].value.startswith("$"):
            rest = rest[1:]
        if len(rest) >= 2 and _is_atom(rest[0], "funcref") and _head(rest[1]) == "elem":
            funcs = [self._resolve_func(tok) for tok in rest[1][1:]]
            self.module.table = TableType(Limits(len(funcs)))
            self.module.elements.append(ElementSegment(0, funcs))
            return
        minimum = _parse_int(rest[0].value, rest[0].line)
        maximum = None
        if len(rest) > 1 and _is_atom(rest[1]) and not _is_atom(rest[1], "funcref"):
            maximum = _parse_int(rest[1].value, rest[1].line)
        self.module.table = TableType(Limits(minimum, maximum))

    def _field_elem(self, field) -> None:
        offset = int(self._const_expr(field[1]))
        funcs = [self._resolve_func(tok) for tok in field[2:]]
        self.module.elements.append(ElementSegment(offset, funcs))

    def _field_export(self, field) -> None:
        name = field[1].value.decode()
        desc = field[2]
        kind = _head(desc)
        if kind == "func":
            self.module.exports.append(Export(name, "func", self._resolve_func(desc[1])))
        elif kind == "global":
            self.module.exports.append(
                Export(name, "global", self._resolve_global(desc[1]))
            )
        elif kind == "memory":
            self.module.exports.append(Export(name, "memory", 0))
        else:
            raise ParseError(f"cannot export {kind!r}")

    def _field_start(self, field) -> None:
        self.module.start = self._resolve_func(field[1])

    # -- function bodies ----------------------------------------------------
    def _assemble_body(self, field, func_idx: int) -> None:
        func = self.module.funcs[func_idx - len(self.module.imports)]
        rest = field[1:]
        if rest and _is_atom(rest[0]) and rest[0].value.startswith("$"):
            rest = rest[1:]
        while rest and _head(rest[0]) == "export":
            rest = rest[1:]
        params, results, param_names = self._params_results(
            [x for x in rest if _head(x) in ("param", "result")]
        )
        rest = [x for x in rest if _head(x) not in ("param", "result")]

        local_names: dict[str, int] = {}
        for i, name in enumerate(param_names):
            if name:
                local_names[name] = i
        locals_: list[ValType] = []
        body_forms = []
        for item in rest:
            if _head(item) == "local":
                inner = item[1:]
                if inner and _is_atom(inner[0]) and inner[0].value.startswith("$"):
                    local_names[inner[0].value] = len(params) + len(locals_)
                    locals_.append(self._valtype(inner[1]))
                else:
                    for tok in inner:
                        locals_.append(self._valtype(tok))
            else:
                body_forms.append(item)
        func.locals = locals_

        ctx = _BodyContext(self, local_names)
        body: list[Instr] = []
        ctx.emit_forms(body_forms, body, [])
        func.body = body


class _BodyContext:
    """Lowers instruction forms (flat and folded) to ``Instr`` lists."""

    def __init__(self, asm: _Assembler, local_names: dict[str, int]):
        self.asm = asm
        self.local_names = local_names

    def emit_forms(self, forms: list, out: list[Instr], labels: list[str | None]) -> None:
        i = 0
        while i < len(forms):
            i = self._emit_form(forms, i, out, labels)

    # Returns index of the next unconsumed form.
    def _emit_form(self, forms: list, i: int, out: list[Instr], labels) -> int:
        form = forms[i]
        if isinstance(form, _Tok):
            return self._emit_plain(forms, i, out, labels)
        head = _head(form)
        if head in ("block", "loop"):
            self._emit_block(form, out, labels, head)
            return i + 1
        if head == "if":
            self._emit_if(form, out, labels)
            return i + 1
        # Folded plain instruction: (op operand-exprs... immediates handled).
        self._emit_folded(form, out, labels)
        return i + 1

    def _emit_plain(self, forms: list, i: int, out: list[Instr], labels) -> int:
        tok = forms[i]
        op = tok.value
        if op not in ALL_OPS:
            raise ParseError(f"unknown instruction {op!r}", tok.line)
        n_imm, args = self._immediates(op, forms, i + 1, labels)
        out.append(Instr(op, args))
        return i + 1 + n_imm

    def _immediates(self, op: str, forms: list, start: int, labels) -> tuple[int, tuple]:
        """Consume immediate tokens following a plain instruction."""
        def atom(j):
            return forms[j] if j < len(forms) and isinstance(forms[j], _Tok) else None

        if op in CONST_OPS:
            tok = atom(start)
            if tok is None:
                raise ParseError(f"{op} requires an immediate")
            if op.startswith("f"):
                return 1, (_parse_float(tok.value, tok.line),)
            return 1, (_parse_int(tok.value, tok.line),)
        if op in ("local.get", "local.set", "local.tee"):
            tok = atom(start)
            return 1, (self._local_index(tok),)
        if op in ("global.get", "global.set"):
            tok = atom(start)
            return 1, (self.asm._resolve_global(tok),)
        if op == "call":
            tok = atom(start)
            return 1, (self.asm._resolve_func(tok),)
        if op == "call_indirect":
            raise ParseError("call_indirect must be written in folded form")
        if op in ("br", "br_if"):
            tok = atom(start)
            return 1, (self._label_depth(tok, labels),)
        if op == "br_table":
            depths = []
            used = 0
            tok = atom(start + used)
            while tok is not None and (
                tok.value.startswith("$") or tok.value.lstrip("+-").isdigit()
            ):
                depths.append(self._label_depth(tok, labels))
                used += 1
                tok = atom(start + used)
            if len(depths) < 1:
                raise ParseError("br_table requires at least a default label")
            return used, (tuple(depths[:-1]), depths[-1])
        if op in MEMARG_OPS:
            offset = 0
            used = 0
            tok = atom(start)
            while tok is not None and "=" in tok.value:
                key, _, value = tok.value.partition("=")
                if key == "offset":
                    offset = _parse_int(value, tok.line)
                elif key != "align":
                    raise ParseError(f"unknown memory immediate {key!r}", tok.line)
                used += 1
                tok = atom(start + used)
            return used, (offset,)
        if op in SIMD_LANE_IMM_OPS:
            tok = atom(start)
            if tok is None:
                raise ParseError(f"{op} requires a lane immediate")
            return 1, (_parse_int(tok.value, tok.line),)
        return 0, ()

    def _local_index(self, tok) -> int:
        if tok is None:
            raise ParseError("expected a local index")
        if tok.value.startswith("$"):
            if tok.value not in self.local_names:
                raise ParseError(f"unknown local {tok.value}", tok.line)
            return self.local_names[tok.value]
        return _parse_int(tok.value, tok.line)

    def _label_depth(self, tok, labels) -> int:
        if tok is None:
            raise ParseError("expected a branch label")
        if tok.value.startswith("$"):
            for depth, name in enumerate(reversed(labels)):
                if name == tok.value:
                    return depth
            raise ParseError(f"unknown label {tok.value}", tok.line)
        return _parse_int(tok.value, tok.line)

    def _block_type(self, forms: list) -> tuple[BlockType, list]:
        params: list[ValType] = []
        results: list[ValType] = []
        rest = list(forms)
        while rest and _head(rest[0]) in ("param", "result"):
            clause = rest.pop(0)
            types = [self.asm._valtype(tok) for tok in clause[1:]]
            if _head(clause) == "param":
                params.extend(types)
            else:
                results.extend(types)
        return BlockType(tuple(params), tuple(results)), rest

    def _emit_block(self, form, out: list[Instr], labels, kind: str) -> None:
        rest = form[1:]
        label = None
        if rest and _is_atom(rest[0]) and rest[0].value.startswith("$"):
            label = rest[0].value
            rest = rest[1:]
        bt, rest = self._block_type(rest)
        inner: list[Instr] = []
        self.emit_forms(rest, inner, labels + [label])
        out.append(Instr(kind, (bt, inner)))

    def _emit_if(self, form, out: list[Instr], labels) -> None:
        rest = form[1:]
        label = None
        if rest and _is_atom(rest[0]) and rest[0].value.startswith("$"):
            label = rest[0].value
            rest = rest[1:]
        bt, rest = self._block_type(rest)
        then_forms, else_forms = None, []
        cond_forms = []
        for item in rest:
            if _head(item) == "then":
                then_forms = item[1:]
            elif _head(item) == "else":
                else_forms = item[1:]
            else:
                cond_forms.append(item)
        if then_forms is None:
            raise ParseError("if requires a (then ...) branch")
        for cond in cond_forms:
            self._emit_form([cond], 0, out, labels)
        then_body: list[Instr] = []
        self.emit_forms(list(then_forms), then_body, labels + [label])
        else_body: list[Instr] = []
        self.emit_forms(list(else_forms), else_body, labels + [label])
        out.append(Instr("if", (bt, then_body, else_body)))

    def _emit_folded(self, form, out: list[Instr], labels) -> None:
        head_tok = form[0]
        if not _is_atom(head_tok):
            raise ParseError("expected an instruction")
        op = head_tok.value
        if op not in ALL_OPS:
            raise ParseError(f"unknown instruction {op!r}", head_tok.line)
        rest = form[1:]

        if op == "call_indirect":
            params, results, _ = self.asm._params_results(
                [x for x in rest if _head(x) in ("param", "result")]
            )
            operands = [x for x in rest if _head(x) not in ("param", "result")]
            for operand in operands:
                self._emit_form([operand], 0, out, labels)
            out.append(Instr(op, (FuncType(tuple(params), tuple(results)),)))
            return

        # Split immediates (leading atoms) from operand sub-expressions.
        imm_forms: list = []
        operand_forms: list = []
        for item in rest:
            if isinstance(item, _Tok) and not operand_forms:
                imm_forms.append(item)
            else:
                operand_forms.append(item)
        for operand in operand_forms:
            self._emit_form([operand], 0, out, labels)
        _, args = self._immediates(op, [None] + imm_forms, 1, labels)
        out.append(Instr(op, args))


def parse_module(text: str) -> Module:
    """Assemble a module from its text representation (not yet validated)."""
    tokens = _tokenize(text)
    exprs = _read_sexprs(tokens)
    if len(exprs) != 1:
        raise ParseError("expected exactly one (module ...) form")
    return _Assembler().assemble(exprs[0])
