"""``repro.wasm`` — a from-scratch WebAssembly-like SFI virtual machine.

This package is the substrate the paper's Faaslets run on: a linear-memory,
stack-typed, validated, trap-enforcing virtual ISA with a text assembler and
a flat-code interpreter. See DESIGN.md §2 for how it maps onto the original
system's WebAssembly/WAVM stack.

Typical use::

    from repro.wasm import parse_module, instantiate

    module = parse_module('''
        (module
          (func $add (export "add") (param i32 i32) (result i32)
            (i32.add (local.get 0) (local.get 1))))
    ''')
    inst = instantiate(module)
    assert inst.invoke("add", 2, 3) == 5
"""

from .codegen import CompiledFunction, compile_function, compile_module
from .errors import (
    CallStackExhausted,
    IndirectCallTypeMismatch,
    IntegerDivideByZero,
    IntegerOverflow,
    InvalidConversion,
    LinkError,
    OutOfBoundsMemoryAccess,
    OutOfBoundsTableAccess,
    OutOfFuel,
    ParseError,
    Trap,
    UnalignedAtomicAccess,
    UndefinedElement,
    UnreachableExecuted,
    ValidationError,
    WasmError,
)
from .instance import TIERS, HostFunc, Instance, default_tier, instantiate
from .instructions import BlockType, Instr, instr
from .memory import LinearMemory, Page
from .module import (
    DataSegment,
    ElementSegment,
    Export,
    Function,
    Global,
    ImportedFunc,
    Module,
    ModuleBuilder,
)
from .printer import print_module
from .simd import canon_v128, f64x2, f64x2_lanes, i32x4, i32x4_lanes, v128_to_int
from .text import parse_module
from .threaded import ThreadedCode, thread_function
from .types import (
    F32,
    F64,
    I32,
    I64,
    PAGE_SIZE,
    V128,
    FuncType,
    GlobalType,
    Limits,
    MemoryType,
    TableType,
    ValType,
)
from .validation import validate_module

__all__ = [
    "BlockType",
    "CallStackExhausted",
    "CompiledFunction",
    "DataSegment",
    "ElementSegment",
    "Export",
    "F32",
    "F64",
    "FuncType",
    "Function",
    "Global",
    "GlobalType",
    "HostFunc",
    "I32",
    "I64",
    "ImportedFunc",
    "IndirectCallTypeMismatch",
    "Instance",
    "Instr",
    "IntegerDivideByZero",
    "IntegerOverflow",
    "InvalidConversion",
    "LinearMemory",
    "Limits",
    "LinkError",
    "MemoryType",
    "Module",
    "ModuleBuilder",
    "OutOfBoundsMemoryAccess",
    "OutOfBoundsTableAccess",
    "OutOfFuel",
    "PAGE_SIZE",
    "Page",
    "ParseError",
    "TIERS",
    "TableType",
    "ThreadedCode",
    "Trap",
    "UnalignedAtomicAccess",
    "UndefinedElement",
    "UnreachableExecuted",
    "V128",
    "ValType",
    "ValidationError",
    "WasmError",
    "canon_v128",
    "compile_function",
    "compile_module",
    "default_tier",
    "f64x2",
    "f64x2_lanes",
    "i32x4",
    "i32x4_lanes",
    "instantiate",
    "instr",
    "parse_module",
    "print_module",
    "thread_function",
    "v128_to_int",
    "validate_module",
]
