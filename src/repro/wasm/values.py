"""Numeric value semantics for the virtual ISA.

Integers are stored on the operand stack as *unsigned* Python ints in
``[0, 2**N)``; signed operators reinterpret through two's complement. Floats
are Python floats, with f32 values rounded through single precision on every
producing operation, matching IEEE-754 binary32 behaviour closely enough for
the workloads we run.
"""

from __future__ import annotations

import math
import struct

from .errors import IntegerDivideByZero, IntegerOverflow, InvalidConversion

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF
INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

_F32_STRUCT = struct.Struct("<f")
_F32_PACK = _F32_STRUCT.pack
_F32_UNPACK = _F32_STRUCT.unpack
_F64_STRUCT = struct.Struct("<d")
_I32_STRUCT = struct.Struct("<i")
_U32_STRUCT = struct.Struct("<I")
_I64_STRUCT = struct.Struct("<q")
_U64_STRUCT = struct.Struct("<Q")


def wrap32(value: int) -> int:
    """Wrap an integer into unsigned 32-bit range."""
    return value & MASK32


def wrap64(value: int) -> int:
    """Wrap an integer into unsigned 64-bit range."""
    return value & MASK64


def to_signed32(value: int) -> int:
    """Reinterpret an unsigned 32-bit value as signed."""
    value &= MASK32
    return value - 0x100000000 if value >= 0x80000000 else value


def to_signed64(value: int) -> int:
    """Reinterpret an unsigned 64-bit value as signed."""
    value &= MASK64
    return value - 0x10000000000000000 if value >= 0x8000000000000000 else value


def to_f32(value: float) -> float:
    """Round a Python float through IEEE single precision.

    Values beyond float32 range demote to ±inf, as IEEE-754 prescribes
    (CPython's struct raises OverflowError instead of rounding).
    """
    try:
        return _F32_UNPACK(_F32_PACK(value))[0]
    except OverflowError:
        return math.copysign(math.inf, value)


def div_s(lhs: int, rhs: int, bits: int) -> int:
    """Signed integer division, truncating toward zero, with spec traps."""
    signed = to_signed32 if bits == 32 else to_signed64
    mask = MASK32 if bits == 32 else MASK64
    int_min = INT32_MIN if bits == 32 else INT64_MIN
    a, b = signed(lhs), signed(rhs)
    if b == 0:
        raise IntegerDivideByZero("integer divide by zero")
    if a == int_min and b == -1:
        raise IntegerOverflow("integer overflow in signed division")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q & mask


def div_u(lhs: int, rhs: int, bits: int) -> int:
    """Unsigned integer division."""
    mask = MASK32 if bits == 32 else MASK64
    if rhs == 0:
        raise IntegerDivideByZero("integer divide by zero")
    return ((lhs & mask) // (rhs & mask)) & mask


def rem_s(lhs: int, rhs: int, bits: int) -> int:
    """Signed remainder with the sign of the dividend (trap only on zero)."""
    signed = to_signed32 if bits == 32 else to_signed64
    mask = MASK32 if bits == 32 else MASK64
    a, b = signed(lhs), signed(rhs)
    if b == 0:
        raise IntegerDivideByZero("integer divide by zero")
    r = abs(a) % abs(b)
    if a < 0:
        r = -r
    return r & mask


def rem_u(lhs: int, rhs: int, bits: int) -> int:
    """Unsigned remainder."""
    mask = MASK32 if bits == 32 else MASK64
    if rhs == 0:
        raise IntegerDivideByZero("integer divide by zero")
    return ((lhs & mask) % (rhs & mask)) & mask


def shl(lhs: int, rhs: int, bits: int) -> int:
    """Shift left; the count is taken modulo the bit width."""
    mask = MASK32 if bits == 32 else MASK64
    return (lhs << (rhs % bits)) & mask


def shr_u(lhs: int, rhs: int, bits: int) -> int:
    """Logical (zero-filling) right shift, count modulo width."""
    mask = MASK32 if bits == 32 else MASK64
    return (lhs & mask) >> (rhs % bits)


def shr_s(lhs: int, rhs: int, bits: int) -> int:
    """Arithmetic (sign-preserving) right shift, count modulo width."""
    signed = to_signed32 if bits == 32 else to_signed64
    mask = MASK32 if bits == 32 else MASK64
    return (signed(lhs) >> (rhs % bits)) & mask


def rotl(lhs: int, rhs: int, bits: int) -> int:
    """Rotate left, count modulo width."""
    mask = MASK32 if bits == 32 else MASK64
    n = rhs % bits
    v = lhs & mask
    return ((v << n) | (v >> (bits - n))) & mask


def rotr(lhs: int, rhs: int, bits: int) -> int:
    """Rotate right, count modulo width."""
    mask = MASK32 if bits == 32 else MASK64
    n = rhs % bits
    v = lhs & mask
    return ((v >> n) | (v << (bits - n))) & mask


def clz(value: int, bits: int) -> int:
    """Count leading zero bits."""
    mask = MASK32 if bits == 32 else MASK64
    v = value & mask
    if v == 0:
        return bits
    return bits - v.bit_length()


def ctz(value: int, bits: int) -> int:
    """Count trailing zero bits."""
    mask = MASK32 if bits == 32 else MASK64
    v = value & mask
    if v == 0:
        return bits
    return (v & -v).bit_length() - 1


def popcnt(value: int, bits: int) -> int:
    """Count set bits."""
    mask = MASK32 if bits == 32 else MASK64
    return (value & mask).bit_count()


def trunc_to_int(value: float, bits: int, signed: bool) -> int:
    """Float-to-int truncation with the spec's trapping semantics."""
    if math.isnan(value):
        raise InvalidConversion("invalid conversion to integer: NaN")
    if math.isinf(value):
        raise IntegerOverflow("integer overflow in float truncation")
    truncated = math.trunc(value)
    if signed:
        lo = INT32_MIN if bits == 32 else INT64_MIN
        hi = INT32_MAX if bits == 32 else INT64_MAX
    else:
        lo = 0
        hi = MASK32 if bits == 32 else MASK64
    if truncated < lo or truncated > hi:
        raise IntegerOverflow("integer overflow in float truncation")
    mask = MASK32 if bits == 32 else MASK64
    return truncated & mask


def float_min(a: float, b: float) -> float:
    """IEEE-style min: NaN-propagating, -0 < +0."""
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == b == 0.0:
        return a if math.copysign(1.0, a) < 0 else b
    return min(a, b)


def float_max(a: float, b: float) -> float:
    """IEEE-style max: NaN-propagating, +0 > -0."""
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == b == 0.0:
        return a if math.copysign(1.0, a) > 0 else b
    return max(a, b)


def nearest(value: float) -> float:
    """Round to nearest, ties to even (Python's round does exactly this)."""
    if math.isnan(value) or math.isinf(value):
        return value
    return float(round(value))


def reinterpret_f32_as_i32(value: float) -> int:
    """Bit-cast an f32 to its u32 representation."""
    return _U32_STRUCT.unpack(_F32_PACK(value))[0]


def reinterpret_i32_as_f32(value: int) -> float:
    """Bit-cast a u32 to the f32 it encodes."""
    return _F32_UNPACK(_U32_STRUCT.pack(value & MASK32))[0]


def reinterpret_f64_as_i64(value: float) -> int:
    """Bit-cast an f64 to its u64 representation."""
    return _U64_STRUCT.unpack(_F64_STRUCT.pack(value))[0]


def reinterpret_i64_as_f64(value: int) -> float:
    """Bit-cast a u64 to the f64 it encodes."""
    return _F64_STRUCT.unpack(_U64_STRUCT.pack(value & MASK64))[0]


#: Canonical zero vector: v128 values travel as immutable 16-byte strings.
V128_ZERO = b"\x00" * 16


def default_value(valtype) -> int | float | bytes:
    """The zero value used to initialise locals and globals."""
    from .types import ValType

    if valtype is ValType.V128:
        return V128_ZERO
    return 0.0 if valtype in (ValType.F32, ValType.F64) else 0
