"""Operator tables: exact numeric semantics for every arithmetic opcode.

The interpreter dispatches binary and unary operators through these tables;
each entry takes canonical stack values (unsigned ints / Python floats) and
returns a canonical value, trapping where the spec traps.
"""

from __future__ import annotations

import math

from . import values as v
from .values import MASK32, MASK64, to_f32, to_signed32, to_signed64


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if math.isnan(a) or a == 0.0:
            return math.nan
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.copysign(math.inf, sign)
    return a / b


def _b(x: bool) -> int:
    return 1 if x else 0


def _int_binops(bits: int) -> dict[str, callable]:
    mask = MASK32 if bits == 32 else MASK64
    signed = to_signed32 if bits == 32 else to_signed64
    return {
        "add": lambda a, b: (a + b) & mask,
        "sub": lambda a, b: (a - b) & mask,
        "mul": lambda a, b: (a * b) & mask,
        "div_s": lambda a, b: v.div_s(a, b, bits),
        "div_u": lambda a, b: v.div_u(a, b, bits),
        "rem_s": lambda a, b: v.rem_s(a, b, bits),
        "rem_u": lambda a, b: v.rem_u(a, b, bits),
        "and": lambda a, b: a & b,
        "or": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "shl": lambda a, b: v.shl(a, b, bits),
        "shr_s": lambda a, b: v.shr_s(a, b, bits),
        "shr_u": lambda a, b: v.shr_u(a, b, bits),
        "rotl": lambda a, b: v.rotl(a, b, bits),
        "rotr": lambda a, b: v.rotr(a, b, bits),
        "eq": lambda a, b: _b(a == b),
        "ne": lambda a, b: _b(a != b),
        "lt_s": lambda a, b: _b(signed(a) < signed(b)),
        "lt_u": lambda a, b: _b(a < b),
        "gt_s": lambda a, b: _b(signed(a) > signed(b)),
        "gt_u": lambda a, b: _b(a > b),
        "le_s": lambda a, b: _b(signed(a) <= signed(b)),
        "le_u": lambda a, b: _b(a <= b),
        "ge_s": lambda a, b: _b(signed(a) >= signed(b)),
        "ge_u": lambda a, b: _b(a >= b),
    }


def _int_unops(bits: int) -> dict[str, callable]:
    return {
        "clz": lambda a: v.clz(a, bits),
        "ctz": lambda a: v.ctz(a, bits),
        "popcnt": lambda a: v.popcnt(a, bits),
        "eqz": lambda a: _b(a == 0),
    }


def _float_binops(single: bool) -> dict[str, callable]:
    rnd = to_f32 if single else (lambda x: x)
    return {
        "add": lambda a, b: rnd(a + b),
        "sub": lambda a, b: rnd(a - b),
        "mul": lambda a, b: rnd(a * b),
        "div": lambda a, b: rnd(_fdiv(a, b)),
        "min": lambda a, b: rnd(v.float_min(a, b)),
        "max": lambda a, b: rnd(v.float_max(a, b)),
        "copysign": lambda a, b: math.copysign(a, b),
        "eq": lambda a, b: _b(a == b),
        "ne": lambda a, b: _b(a != b),
        "lt": lambda a, b: _b(a < b),
        "gt": lambda a, b: _b(a > b),
        "le": lambda a, b: _b(a <= b),
        "ge": lambda a, b: _b(a >= b),
    }


def _fsqrt(a: float) -> float:
    if a < 0.0:
        return math.nan
    return math.sqrt(a)


def _float_unops(single: bool) -> dict[str, callable]:
    rnd = to_f32 if single else (lambda x: x)

    def guard_inf(fn):
        def wrapped(a: float) -> float:
            if math.isnan(a) or math.isinf(a):
                return a
            return rnd(fn(a))

        return wrapped

    return {
        "abs": lambda a: abs(a),
        "neg": lambda a: -a,
        "sqrt": lambda a: rnd(_fsqrt(a)),
        "ceil": guard_inf(lambda a: float(math.ceil(a))),
        "floor": guard_inf(lambda a: float(math.floor(a))),
        "trunc": guard_inf(lambda a: float(math.trunc(a))),
        "nearest": lambda a: v.nearest(a),
    }


BINOPS: dict[str, callable] = {}
UNOPS: dict[str, callable] = {}

for _prefix, _bits in (("i32", 32), ("i64", 64)):
    for _name, _fn in _int_binops(_bits).items():
        BINOPS[f"{_prefix}.{_name}"] = _fn
    for _name, _fn in _int_unops(_bits).items():
        UNOPS[f"{_prefix}.{_name}"] = _fn

for _prefix, _single in (("f32", True), ("f64", False)):
    for _name, _fn in _float_binops(_single).items():
        BINOPS[f"{_prefix}.{_name}"] = _fn
    for _name, _fn in _float_unops(_single).items():
        UNOPS[f"{_prefix}.{_name}"] = _fn

# Conversions (all unary).
UNOPS.update(
    {
        "i32.wrap_i64": lambda a: a & MASK32,
        "i64.extend_i32_s": lambda a: to_signed32(a) & MASK64,
        "i64.extend_i32_u": lambda a: a & MASK32,
        "f32.convert_i32_s": lambda a: to_f32(float(to_signed32(a))),
        "f32.convert_i32_u": lambda a: to_f32(float(a & MASK32)),
        "f32.convert_i64_s": lambda a: to_f32(float(to_signed64(a))),
        "f32.convert_i64_u": lambda a: to_f32(float(a & MASK64)),
        "f64.convert_i32_s": lambda a: float(to_signed32(a)),
        "f64.convert_i32_u": lambda a: float(a & MASK32),
        "f64.convert_i64_s": lambda a: float(to_signed64(a)),
        "f64.convert_i64_u": lambda a: float(a & MASK64),
        "i32.trunc_f32_s": lambda a: v.trunc_to_int(a, 32, True),
        "i32.trunc_f32_u": lambda a: v.trunc_to_int(a, 32, False),
        "i32.trunc_f64_s": lambda a: v.trunc_to_int(a, 32, True),
        "i32.trunc_f64_u": lambda a: v.trunc_to_int(a, 32, False),
        "i64.trunc_f32_s": lambda a: v.trunc_to_int(a, 64, True),
        "i64.trunc_f32_u": lambda a: v.trunc_to_int(a, 64, False),
        "i64.trunc_f64_s": lambda a: v.trunc_to_int(a, 64, True),
        "i64.trunc_f64_u": lambda a: v.trunc_to_int(a, 64, False),
        "f32.demote_f64": lambda a: to_f32(a),
        "f64.promote_f32": lambda a: a,
        "i32.reinterpret_f32": v.reinterpret_f32_as_i32,
        "f32.reinterpret_i32": v.reinterpret_i32_as_f32,
        "i64.reinterpret_f64": v.reinterpret_f64_as_i64,
        "f64.reinterpret_i64": v.reinterpret_i64_as_f64,
    }
)

# Vector lane kernels (i32x4/f64x2 over 16-byte v128 values). The kernels
# live in repro.wasm.simd so the struct/numpy backends stay swappable;
# registering them here lets both execution tiers dispatch SIMD exactly
# like scalar operators.
from .simd import SIMD_BINOPS as _SIMD_BINOPS  # noqa: E402
from .simd import SIMD_UNOPS as _SIMD_UNOPS  # noqa: E402

BINOPS.update(_SIMD_BINOPS)
UNOPS.update(_SIMD_UNOPS)
