"""Module pretty-printer: the inverse of the text assembler.

Produces WAT-like text that :func:`repro.wasm.text.parse_module` reads back
into an equivalent module. Used by the upload service to store readable
artifacts, and by the test-suite's round-trip property tests.
"""

from __future__ import annotations

from .instructions import CONST_OPS, MEMARG_OPS, Instr
from .simd import canon_v128, v128_to_int
from .module import Module
from .types import FuncType


def _escape(data: bytes) -> str:
    out = []
    for byte in data:
        if byte == ord('"'):
            out.append('\\"')
        elif byte == ord("\\"):
            out.append("\\\\")
        elif 0x20 <= byte < 0x7F:
            out.append(chr(byte))
        elif byte == 0x0A:
            out.append("\\n")
        elif byte == 0x09:
            out.append("\\t")
        else:
            out.append(f"\\{byte:02x}")
    return "".join(out)


def _functype_clauses(ftype: FuncType) -> str:
    parts = []
    if ftype.params:
        parts.append("(param " + " ".join(str(t) for t in ftype.params) + ")")
    if ftype.results:
        parts.append("(result " + " ".join(str(t) for t in ftype.results) + ")")
    return " ".join(parts)


def _float_repr(x: float) -> str:
    import math

    if math.isnan(x):
        return "nan"
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return repr(float(x))


class _Printer:
    def __init__(self, module: Module):
        self.module = module
        self.lines: list[str] = []
        self.indent = 1

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    # ------------------------------------------------------------------
    def print(self) -> str:
        module = self.module
        self.lines = ["(module"]
        for imp in module.imports:
            clauses = _functype_clauses(imp.type)
            self.emit(
                f'(import "{imp.module}" "{imp.name}" '
                f"(func {clauses})".rstrip() + ")"
            )
        if module.memory is not None:
            limits = module.memory.limits
            maximum = f" {limits.maximum}" if limits.maximum is not None else ""
            exported = next(
                (e for e in module.exports if e.kind == "memory"), None
            )
            export_clause = f' (export "{exported.name}")' if exported else ""
            self.emit(f"(memory{export_clause} {limits.minimum}{maximum})")
        if module.table is not None:
            limits = module.table.limits
            maximum = f" {limits.maximum}" if limits.maximum is not None else ""
            self.emit(f"(table {limits.minimum}{maximum} funcref)")
        for seg in module.elements:
            funcs = " ".join(str(i) for i in seg.func_indices)
            self.emit(f"(elem (i32.const {seg.offset}) {funcs})")
        for i, g in enumerate(module.globals_):
            ty = str(g.type.valtype)
            typedesc = f"(mut {ty})" if g.type.mutable else ty
            if g.type.valtype.is_vector:
                init = f"({ty}.const 0x{v128_to_int(canon_v128(g.init)):032x})"
            elif g.type.valtype.is_float:
                init = f"({ty}.const {_float_repr(float(g.init))})"
            else:
                init = f"({ty}.const {int(g.init)})"
            self.emit(f"(global $g{i} {typedesc} {init})")
        for seg in module.data:
            self.emit(f'(data (i32.const {seg.offset}) "{_escape(seg.data)}")')
        n_imports = len(module.imports)
        func_exports = {
            e.index: e.name for e in module.exports if e.kind == "func"
        }
        global_exports = [e for e in module.exports if e.kind == "global"]
        for i, func in enumerate(module.funcs):
            index = n_imports + i
            export = (
                f' (export "{func_exports[index]}")' if index in func_exports else ""
            )
            clauses = _functype_clauses(func.type)
            header = f"(func $f{index}{export}"
            if clauses:
                header += f" {clauses}"
            self.emit(header)
            self.indent += 1
            if func.locals:
                self.emit("(local " + " ".join(str(t) for t in func.locals) + ")")
            self._print_body(func.body)
            self.indent -= 1
            self.emit(")")
        for export in global_exports:
            self.emit(f'(export "{export.name}" (global {export.index}))')
        if module.start is not None:
            self.emit(f"(start {module.start})")
        self.lines.append(")")
        return "\n".join(self.lines)

    # ------------------------------------------------------------------
    def _print_body(self, body: list[Instr]) -> None:
        for ins in body:
            self._print_instr(ins)

    def _print_instr(self, ins: Instr) -> None:
        op = ins.op
        if op in ("block", "loop"):
            bt, inner = ins.args
            clauses = _functype_clauses(FuncType(bt.params, bt.results))
            self.emit(f"({op}" + (f" {clauses}" if clauses else ""))
            self.indent += 1
            self._print_body(inner)
            self.indent -= 1
            self.emit(")")
            return
        if op == "if":
            bt = ins.args[0]
            then_body = ins.args[1]
            else_body = ins.args[2] if len(ins.args) > 2 else []
            clauses = _functype_clauses(FuncType(bt.params, bt.results))
            self.emit("(if" + (f" {clauses}" if clauses else ""))
            self.indent += 1
            self.emit("(then")
            self.indent += 1
            self._print_body(then_body)
            self.indent -= 1
            self.emit(")")
            if else_body:
                self.emit("(else")
                self.indent += 1
                self._print_body(else_body)
                self.indent -= 1
                self.emit(")")
            self.indent -= 1
            self.emit(")")
            return
        if op in CONST_OPS:
            value = ins.args[0]
            if op == "v128.const":
                self.emit(f"{op} 0x{v128_to_int(canon_v128(value)):032x}")
            elif op.startswith("f"):
                self.emit(f"{op} {_float_repr(float(value))}")
            else:
                self.emit(f"{op} {int(value)}")
            return
        if op in MEMARG_OPS:
            offset = ins.args[0] if ins.args else 0
            self.emit(f"{op} offset={offset}" if offset else op)
            return
        if op == "br_table":
            depths, default = ins.args
            parts = " ".join(str(d) for d in depths)
            self.emit(f"br_table {parts} {default}".replace("  ", " "))
            return
        if op == "call_indirect":
            clauses = _functype_clauses(ins.args[0])
            self.emit(f"(call_indirect {clauses})")
            return
        if ins.args:
            self.emit(f"{op} " + " ".join(str(a) for a in ins.args))
        else:
            self.emit(op)


def print_module(module: Module) -> str:
    """Render ``module`` as parseable WAT-like text."""
    return _Printer(module).print()
