"""Module instantiation and the flat-code interpreter.

An :class:`Instance` is the executable form of a module: flat-compiled
functions, a linear memory, globals, a function table and resolved host
imports. The interpreter enforces, at runtime, the SFI guarantees the paper
relies on (§2.2): bounds-checked memory, checked indirect calls, bounded
call depth and — for CPU accounting by the cgroup layer — fuel metering.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass
from typing import Callable

from .codecache import GLOBAL_CODE_CACHE
from .codegen import CompiledFunction
from .errors import (
    CallStackExhausted,
    IndirectCallTypeMismatch,
    LinkError,
    OutOfBoundsTableAccess,
    OutOfFuel,
    Trap,
    UndefinedElement,
    UnreachableExecuted,
)
from .futex import atomic_notify, atomic_wait32
from .instructions import (
    ATOMIC_CMPXCHG_OPS,
    ATOMIC_RMW_OPS,
    LOAD_OPS,
    STORE_OPS,
    op_family,
)
from .memory import LinearMemory
from .module import Module
from .ops import BINOPS, UNOPS
from .simd import SIMD_EXTRACT_OPS, SIMD_REPLACE_OPS, canon_v128
from .threaded import Frame, thread_function
from .types import FuncType, ValType
from .validation import validate_module
from .values import (
    MASK32,
    MASK64,
    default_value,
    to_f32,
    to_signed32,
    to_signed64,
)

#: Default guest call-depth limit (Python recursion bounds this from above).
DEFAULT_CALL_DEPTH = 220

#: Available execution tiers: "threaded" (closure-threaded code with
#: block-level fuel batching, the default) and "interp" (the reference
#: tuple interpreter, retained as the semantics oracle).
TIERS = ("threaded", "interp")

#: Sequentially-consistent accesses that additionally require alignment.
_ATOMIC_LOADS = frozenset({"i32.atomic.load", "i64.atomic.load"})
_ATOMIC_STORES = frozenset({"i32.atomic.store", "i64.atomic.store"})


def default_tier() -> str:
    """Session default tier; override with ``REPRO_WASM_TIER=interp``."""
    return os.environ.get("REPRO_WASM_TIER", "threaded")


@dataclass
class HostFunc:
    """A host function importable by guest modules.

    ``fn`` receives canonical values (unsigned ints / floats); when
    ``pass_instance`` is true it receives the calling :class:`Instance` as
    its first argument, which is how the Faaslet host interface reaches the
    caller's linear memory.
    """

    module: str
    name: str
    type: FuncType
    fn: Callable
    pass_instance: bool = False


def _canon(value, valtype: ValType):
    if valtype is ValType.I32:
        return int(value) & MASK32
    if valtype is ValType.I64:
        return int(value) & MASK64
    if valtype is ValType.F32:
        return to_f32(float(value))
    if valtype is ValType.V128:
        return canon_v128(value)
    return float(value)


def _external(value, valtype: ValType):
    """Convert a canonical value to the friendliest external representation
    (signed ints for i32/i64)."""
    if valtype is ValType.I32:
        return to_signed32(value)
    if valtype is ValType.I64:
        return to_signed64(value)
    return value


@dataclass
class GlobalInstance:
    valtype: ValType
    mutable: bool
    value: int | float | bytes


class Instance:
    """An instantiated module ready to execute."""

    def __init__(
        self,
        module: Module,
        imports: dict[tuple[str, str], HostFunc] | None = None,
        *,
        memory: LinearMemory | None = None,
        fuel: int | None = None,
        call_depth_limit: int = DEFAULT_CALL_DEPTH,
        validated: bool = False,
        apply_data: bool = True,
        run_start: bool = True,
        precompiled: list[CompiledFunction] | None = None,
        tier: str | None = None,
        profile: bool = False,
    ):
        if not validated:
            validate_module(module)
        self.module = module
        self.call_depth_limit = call_depth_limit
        self._fuel = fuel
        self.tier = tier if tier is not None else default_tier()
        if self.tier not in TIERS:
            raise ValueError(f"unknown execution tier {self.tier!r}")
        # Opt-in per-opcode dispatch profiling. Profiling runs on the
        # reference interpreter (counters are per flat opcode, the unit
        # the next superinstruction would fuse), whatever the tier.
        self.op_counts: Counter | None = Counter() if profile else None
        self.pair_counts: Counter | None = Counter() if profile else None
        #: Total instructions executed; the cgroup layer reads this as the
        #: Faaslet's consumed "CPU cycles".
        self.instructions_executed = 0
        #: Guest-thread support: a scheduler (``repro.faaslet.threads``)
        #: installs itself here so ``memory.atomic.wait32/notify`` can park
        #: and wake guest threads, and sets ``_refuel_hook`` to preempt the
        #: thread at quantum boundaries instead of trapping ``OutOfFuel``.
        self._thread_runtime = None
        self._refuel_hook: Callable | None = None
        #: Continuous-profiler tap (``repro.telemetry.profiler``): when
        #: installed, every guest call pushes/pops a shadow-stack frame;
        #: None keeps the call path at a single attribute check.
        self._profiler = None

        imports = imports or {}
        self.funcs: list[HostFunc | CompiledFunction] = []
        for imp in module.imports:
            key = (imp.module, imp.name)
            if key not in imports:
                raise LinkError(f"missing import {imp.module}.{imp.name}")
            host = imports[key]
            if host.type != imp.type:
                raise LinkError(
                    f"import {imp.module}.{imp.name} type mismatch: "
                    f"module wants {imp.type}, host provides {host.type}"
                )
            self.funcs.append(host)
        # Without explicit precompiled code, go through the cluster-wide
        # code cache: repeated instantiations of structurally identical
        # modules (spawn churn, dlopen, re-parsed uploads) share one
        # compiled — and threaded — function list.
        self.funcs.extend(
            precompiled
            if precompiled is not None
            else GLOBAL_CODE_CACHE.get_or_compile(module)
        )

        if memory is not None:
            self.memory: LinearMemory | None = memory
        elif module.memory is not None:
            self.memory = LinearMemory(module.memory)
        else:
            self.memory = None

        self.globals: list[GlobalInstance] = [
            GlobalInstance(g.type.valtype, g.type.mutable, _canon(g.init, g.type.valtype))
            for g in module.globals_
        ]

        self.table: list[int | None] | None = None
        if module.table is not None:
            self.table = [None] * module.table.limits.minimum

        if apply_data:
            for seg in module.data:
                if self.memory is None:
                    raise LinkError("data segment without memory")
                if seg.offset + len(seg.data) > self.memory.size_bytes:
                    raise LinkError("data segment does not fit in memory")
                self.memory.write(seg.offset, seg.data)

        for seg in module.elements:
            assert self.table is not None
            end = seg.offset + len(seg.func_indices)
            if end > len(self.table):
                if module.table.limits.contains(end):
                    self.table.extend([None] * (end - len(self.table)))
                else:
                    raise LinkError("element segment does not fit in table")
            for i, fidx in enumerate(seg.func_indices):
                self.table[seg.offset + i] = fidx

        self._exports = module.export_map()
        if run_start and module.start is not None:
            self.call_index(module.start)

    @classmethod
    def from_parts(
        cls,
        module: Module,
        funcs: list,
        memory: LinearMemory | None,
        globals_: list["GlobalInstance"],
        table: list | None,
        *,
        fuel: int | None = None,
        call_depth_limit: int = DEFAULT_CALL_DEPTH,
        tier: str | None = None,
        profile: bool = False,
    ) -> "Instance":
        """Assemble an instance from pre-built parts without validation,
        code generation, data-segment copies or running the start function.

        This is the Proto-Faaslet restore fast path (§5.2): the caller
        supplies an already-compiled function list (codegen happened once at
        upload time), a copy-on-write memory and snapshotted globals/table.
        """
        inst = cls.__new__(cls)
        inst.module = module
        inst.call_depth_limit = call_depth_limit
        inst._fuel = fuel
        inst.tier = tier if tier is not None else default_tier()
        if inst.tier not in TIERS:
            raise ValueError(f"unknown execution tier {inst.tier!r}")
        inst.op_counts = Counter() if profile else None
        inst.pair_counts = Counter() if profile else None
        inst.instructions_executed = 0
        inst._thread_runtime = None
        inst._refuel_hook = None
        inst._profiler = None
        inst.funcs = funcs
        inst.memory = memory
        inst.globals = globals_
        inst.table = table
        inst._exports = module.export_map()
        return inst

    # ------------------------------------------------------------------
    # Fuel (CPU metering)
    # ------------------------------------------------------------------
    @property
    def fuel(self) -> int | None:
        return self._fuel

    def add_fuel(self, amount: int) -> None:
        self._fuel = amount if self._fuel is None else self._fuel + amount

    def set_fuel(self, amount: int | None) -> None:
        self._fuel = amount

    def _refuel(self, executed: int) -> int | None:
        """Fuel-exhaustion rendezvous shared by both tiers.

        Flushes the meters exactly like the trap path, then gives the
        ``_refuel_hook`` (the guest-thread scheduler) a chance to grant a
        fresh quantum; the tripping instruction has already been counted,
        so its cost is charged against the new quantum here. Returns the
        replenished local fuel, or raises :class:`OutOfFuel` when no hook
        is installed or the hook declines.
        """
        self._fuel = 0
        self.instructions_executed += executed
        hook = self._refuel_hook
        if hook is not None and hook(self):
            fuel = self._fuel
            if fuel is None:
                return None
            if fuel > 0:
                return fuel - 1
        raise OutOfFuel("instance ran out of fuel")

    # ------------------------------------------------------------------
    # Public call API
    # ------------------------------------------------------------------
    def invoke(self, name: str, *args):
        """Call an exported function. Integer results are returned signed."""
        export = self._exports.get(name)
        if export is None or export.kind != "func":
            raise KeyError(f"no exported function named {name!r}")
        return self.call_index(export.index, *args)

    def call_index(self, index: int, *args):
        ftype = self.module.func_type(index)
        if len(args) != len(ftype.params):
            raise TypeError(
                f"function expects {len(ftype.params)} args, got {len(args)}"
            )
        canon_args = [_canon(a, t) for a, t in zip(args, ftype.params)]
        results = self._call(index, canon_args, 0)
        out = [_external(r, t) for r, t in zip(results, ftype.results)]
        if not out:
            return None
        if len(out) == 1:
            return out[0]
        return tuple(out)

    def add_table_entry(self, entry) -> int:
        """Append a table entry (a local function index or an ``("ext",
        instance, index)`` reference) and return its table index. Used by
        the host interface's dynamic-linking implementation."""
        if self.table is None:
            self.table = []
        self.table.append(entry)
        return len(self.table) - 1

    def get_global(self, name: str):
        export = self._exports.get(name)
        if export is None or export.kind != "global":
            raise KeyError(f"no exported global named {name!r}")
        g = self.globals[export.index]
        return _external(g.value, g.valtype)

    def set_global(self, name: str, value) -> None:
        export = self._exports.get(name)
        if export is None or export.kind != "global":
            raise KeyError(f"no exported global named {name!r}")
        g = self.globals[export.index]
        if not g.mutable:
            raise ValueError(f"global {name!r} is immutable")
        g.value = _canon(value, g.valtype)

    # ------------------------------------------------------------------
    # Interpreter core
    # ------------------------------------------------------------------
    def _call(self, index: int, args: list, depth: int) -> list:
        if self._profiler is not None:
            return self._call_profiled(self._profiler, index, args, depth)
        fn = self.funcs[index]
        if isinstance(fn, HostFunc):
            return self._call_host(fn, args)
        if self.tier == "threaded" and self.op_counts is None:
            return self._exec_threaded(fn, args, depth)
        return self._exec(fn, args, depth)

    def _call_profiled(self, prof, index: int, args: list, depth: int) -> list:
        """:meth:`_call` with the continuous-profiler tap around it; the
        finally keeps the shadow stack balanced across traps."""
        prof.enter(self, index)
        try:
            fn = self.funcs[index]
            if isinstance(fn, HostFunc):
                return self._call_host(fn, args)
            if self.tier == "threaded" and self.op_counts is None:
                return self._exec_threaded(fn, args, depth)
            return self._exec(fn, args, depth)
        finally:
            prof.exit()

    def _call_host(self, fn: HostFunc, args: list) -> list:
        if fn.pass_instance:
            result = fn.fn(self, *args)
        else:
            result = fn.fn(*args)
        if result is None:
            results = []
        elif isinstance(result, tuple):
            results = list(result)
        else:
            results = [result]
        if len(results) != len(fn.type.results):
            raise Trap(
                f"host function {fn.module}.{fn.name} returned "
                f"{len(results)} values, expected {len(fn.type.results)}"
            )
        return [_canon(r, t) for r, t in zip(results, fn.type.results)]

    def _exec_threaded(self, fn: CompiledFunction, args: list, depth: int) -> list:
        """Tier-2 dispatch: run the function's closure-threaded form.

        Observationally identical to :meth:`_exec` — same results, traps,
        memory effects, ``fuel`` and ``instructions_executed`` — but fuel is
        charged per basic block and each superinstruction is a pre-bound
        closure (see :mod:`repro.wasm.threaded`).
        """
        if depth >= self.call_depth_limit:
            raise CallStackExhausted(
                f"call depth exceeded {self.call_depth_limit}"
            )
        tc = fn.threaded
        if tc is None:
            tc = thread_function(fn, self.module)
            fn.threaded = tc
        locals_ = args + [default_value(t) for t in fn.local_types]
        stack: list = []
        frame = Frame(self, depth)
        ops = tc.ops
        pc = 0
        while pc >= 0:
            pc = ops[pc](stack, locals_, frame)
        # Normal exit: flush the frame-local meters. Traps propagate
        # without flushing, matching the reference tier exactly.
        self._fuel = frame.fuel
        self.instructions_executed += frame.executed
        n_results = len(fn.type.results)
        return stack[len(stack) - n_results :] if n_results else []

    def dispatch_report(self, top: int | None = None) -> list[tuple[str, int]]:
        """Hottest flat opcodes recorded by ``profile=True``, descending.

        The companion ``pair_counts`` attribute holds adjacent-opcode pair
        frequencies — the data that justifies the next superinstruction in
        the threaded tier's fusion table.
        """
        if self.op_counts is None:
            raise ValueError("instance was not created with profile=True")
        ranked = self.op_counts.most_common(top)
        return ranked

    def dispatch_family_report(self) -> list[tuple[str, int]]:
        """Dispatch counts rolled up by opcode family (simd, atomic,
        memory, var, const, control, numeric), descending."""
        if self.op_counts is None:
            raise ValueError("instance was not created with profile=True")
        families: Counter = Counter()
        for op, count in self.op_counts.items():
            families[op_family(op)] += count
        return families.most_common()

    def _exec(self, fn: CompiledFunction, args: list, depth: int) -> list:
        if depth >= self.call_depth_limit:
            raise CallStackExhausted(
                f"call depth exceeded {self.call_depth_limit}"
            )
        locals_ = args + [default_value(t) for t in fn.local_types]
        stack: list = []
        labels: list[tuple[int, int, int]] = []
        code = fn.code
        mem = self.memory
        globals_ = self.globals
        binops = BINOPS
        unops = UNOPS
        pc = 0
        executed = 0
        fuel = self._fuel
        metered = fuel is not None
        prof = self.op_counts
        pairs = self.pair_counts
        prev_op: str | None = None

        while True:
            ins = code[pc]
            op = ins[0]
            if prof is not None:
                prof[op] += 1
                if prev_op is not None:
                    pairs[(prev_op, op)] += 1
                prev_op = op
            executed += 1
            if metered:
                fuel -= 1
                if fuel < 0:
                    fuel = self._refuel(executed)
                    executed = 0
                    metered = fuel is not None

            if op == "local.get":
                stack.append(locals_[ins[1]])
            elif op == "local.set":
                locals_[ins[1]] = stack.pop()
            elif op == "local.tee":
                locals_[ins[1]] = stack[-1]
            elif op in binops:
                rhs = stack.pop()
                stack[-1] = binops[op](stack[-1], rhs)
            elif (
                op == "i32.const"
                or op == "i64.const"
                or op == "f32.const"
                or op == "f64.const"
                or op == "v128.const"
            ):
                stack.append(ins[1])
            elif op in unops:
                stack[-1] = unops[op](stack[-1])
            elif op in LOAD_OPS:
                ty, size, signed = LOAD_OPS[op]
                addr = stack.pop() + ins[1]
                if ty is ValType.F32 or ty is ValType.F64:
                    stack.append(mem.load_float(addr, size))
                elif ty is ValType.V128:
                    stack.append(mem.load_v128(addr))
                else:
                    if op in _ATOMIC_LOADS:
                        mem._check_aligned(addr, size)
                    value = mem.load_int(addr, size, signed)
                    if signed:
                        value &= MASK32 if ty is ValType.I32 else MASK64
                    stack.append(value)
            elif op in STORE_OPS:
                ty, size = STORE_OPS[op]
                value = stack.pop()
                addr = stack.pop() + ins[1]
                if ty is ValType.F32 or ty is ValType.F64:
                    mem.store_float(addr, value, size)
                elif ty is ValType.V128:
                    mem.store_v128(addr, value)
                else:
                    if op in _ATOMIC_STORES:
                        mem._check_aligned(addr, size)
                    mem.store_int(addr, value, size)
            elif op == "block":
                labels.append((ins[1] + 1, ins[2], len(stack) - ins[3]))
            elif op == "loop":
                labels.append((ins[1], ins[2], len(stack) - ins[2]))
            elif op == "if":
                cond = stack.pop()
                labels.append((ins[2] + 1, ins[3], len(stack) - ins[4]))
                if not cond:
                    pc = ins[1]
                    continue
            elif op == "else":
                pc = ins[1]
                continue
            elif op == "end":
                labels.pop()
            elif op == "br" or op == "br_if" or op == "br_table":
                if op == "br_if":
                    if not stack.pop():
                        pc += 1
                        continue
                    d = ins[1]
                elif op == "br":
                    d = ins[1]
                else:
                    i = stack.pop()
                    depths, default = ins[1], ins[2]
                    d = depths[i] if i < len(depths) else default
                if d >= len(labels):
                    # Branch to the implicit function-level frame: return.
                    break
                target, arity, height = labels[-1 - d]
                if arity:
                    transferred = stack[-arity:]
                    del stack[height:]
                    stack.extend(transferred)
                else:
                    del stack[height:]
                del labels[len(labels) - 1 - d :]
                pc = target
                continue
            elif op == "return":
                break
            elif op == "call":
                callee = ins[1]
                ftype = (
                    self.funcs[callee].type
                    if isinstance(self.funcs[callee], HostFunc)
                    else self.funcs[callee].type
                )
                n = len(ftype.params)
                call_args = stack[len(stack) - n :] if n else []
                if n:
                    del stack[len(stack) - n :]
                if metered:
                    self._fuel = fuel
                self.instructions_executed += executed
                executed = 0
                stack.extend(self._call(callee, call_args, depth + 1))
                fuel = self._fuel
                metered = fuel is not None
            elif op == "call_indirect":
                expected = ins[1]
                i = stack.pop()
                table = self.table
                if table is None or i >= len(table):
                    raise OutOfBoundsTableAccess(
                        f"table index {i} out of bounds"
                    )
                callee = table[i]
                if callee is None:
                    raise UndefinedElement(f"uninitialised table element {i}")
                # Entries are either local function indices, or — for
                # dynamically linked modules (Tab. 2, dlopen/dlsym) —
                # ("ext", instance, index) references into another instance.
                if isinstance(callee, tuple):
                    _, ext_inst, ext_idx = callee
                    actual = ext_inst.module.func_type(ext_idx)
                else:
                    actual = self.module.func_type(callee)
                if actual != expected:
                    raise IndirectCallTypeMismatch(
                        f"indirect call type mismatch: {actual} != {expected}"
                    )
                n = len(expected.params)
                call_args = stack[len(stack) - n :] if n else []
                if n:
                    del stack[len(stack) - n :]
                if metered:
                    self._fuel = fuel
                self.instructions_executed += executed
                executed = 0
                if isinstance(callee, tuple):
                    stack.extend(callee[1]._call(callee[2], call_args, depth + 1))
                else:
                    stack.extend(self._call(callee, call_args, depth + 1))
                fuel = self._fuel
                metered = fuel is not None
            elif op == "global.get":
                stack.append(globals_[ins[1]].value)
            elif op == "global.set":
                globals_[ins[1]].value = stack.pop()
            elif op == "drop":
                stack.pop()
            elif op == "select":
                cond = stack.pop()
                b = stack.pop()
                if not cond:
                    stack[-1] = b
            elif op == "memory.size":
                stack.append(mem.size_pages)
            elif op == "memory.grow":
                stack.append(mem.grow(stack.pop()) & MASK32)
            elif op in SIMD_EXTRACT_OPS:
                stack[-1] = SIMD_EXTRACT_OPS[op](stack[-1], ins[1])
            elif op in SIMD_REPLACE_OPS:
                x = stack.pop()
                stack[-1] = SIMD_REPLACE_OPS[op](stack[-1], x, ins[1])
            elif op in ATOMIC_RMW_OPS:
                _ty, size, kind = ATOMIC_RMW_OPS[op]
                operand = stack.pop()
                addr = stack.pop() + ins[1]
                stack.append(mem.atomic_rmw(addr, operand, size, kind))
            elif op in ATOMIC_CMPXCHG_OPS:
                _ty, size = ATOMIC_CMPXCHG_OPS[op]
                replacement = stack.pop()
                expected = stack.pop()
                addr = stack.pop() + ins[1]
                stack.append(
                    mem.atomic_cmpxchg(addr, expected, replacement, size)
                )
            elif op == "memory.atomic.wait32":
                expected = stack.pop()
                addr = stack.pop() + ins[1]
                # Call-style fuel handshake: the runtime may suspend this
                # guest thread inside the helper, so the meters must be
                # synced to the instance on both sides.
                if metered:
                    self._fuel = fuel
                self.instructions_executed += executed
                executed = 0
                stack.append(atomic_wait32(self, mem, addr, expected))
                fuel = self._fuel
                metered = fuel is not None
            elif op == "memory.atomic.notify":
                count = stack.pop()
                addr = stack.pop() + ins[1]
                stack.append(atomic_notify(self, mem, addr, count))
            elif op == "nop":
                pass
            elif op == "unreachable":
                raise UnreachableExecuted("unreachable executed")
            else:  # pragma: no cover - codegen emits only known ops
                raise Trap(f"unknown opcode {op!r}")
            pc += 1

        if metered:
            self._fuel = fuel
        self.instructions_executed += executed
        n_results = len(fn.type.results)
        return stack[len(stack) - n_results :] if n_results else []


def instantiate(
    module: Module,
    imports: dict[tuple[str, str], HostFunc] | list[HostFunc] | None = None,
    **kwargs,
) -> Instance:
    """Validate, compile and instantiate ``module`` in one step."""
    if isinstance(imports, list):
        imports = {(h.module, h.name): h for h in imports}
    return Instance(module, imports, **kwargs)
