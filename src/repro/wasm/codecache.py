"""Cluster-wide compiled-module cache keyed by structural module hash.

The paper amortises WAVM's expensive code generation by caching object
code in the global object store and ``mmap``-ing the shared machine code
into every Faaslet on the same host (§3.4, §5.2). This module is the
Python analogue: flat codegen (and, transitively, the lazily-built
closure-threaded tier attached to each
:class:`~repro.wasm.codegen.CompiledFunction`) runs **once per distinct
module text** per process, no matter how many uploads, spawns, dlopens or
Proto-Faaslet restores reference it.

The key is a sha256 of the module's printed text — structural, not
identity-based — so two separately parsed or separately built modules
with identical content share one compiled-function list, mirroring how
every host in the cluster derives the same machine code from the same
uploaded object file. The hash is memoised on the :class:`Module` object;
mutating a module after it has been instantiated is unsupported (modules
are immutable after upload in the paper's model).

Counters (``hits``/``misses``/``seeded``) are exposed for the registry's
cache statistics and the churn benchmarks.
"""

from __future__ import annotations

import hashlib
import threading

from repro.telemetry import MetricsRegistry, span

from .codegen import CompiledFunction, compile_module
from .module import Module

_KEY_ATTR = "_codecache_key"

#: ISA/tier revision folded into every structural cache key. Bump when the
#: instruction set or the compiled-code shape changes (new opcode families,
#: different lowering), so object code cached by an older build is never
#: reused for a module that now compiles differently — the analogue of a
#: machine-code version tag in an on-disk object cache. "2" added the
#: vector ISA (v128), shared-memory atomics and the guest-thread ops.
ISA_VERSION = "repro-isa-2"


def module_key(module: Module) -> str:
    """Structural hash of ``module`` (memoised on the instance).

    The hash covers the printed module text *and* :data:`ISA_VERSION`, so
    a cache persisted across an ISA revision cannot serve stale code.
    """
    key = getattr(module, _KEY_ATTR, None)
    if key is None:
        from .printer import print_module

        hasher = hashlib.sha256(ISA_VERSION.encode() + b"\x00")
        hasher.update(print_module(module).encode())
        key = hasher.hexdigest()
        setattr(module, _KEY_ATTR, key)
    return key


class ModuleCodeCache:
    """Process-wide map of module hash → compiled function list.

    Hit/miss/seed counters live in a
    :class:`~repro.telemetry.metrics.MetricsRegistry` (the cache's own by
    default); the historic ``hits``/``misses``/``seeded`` attributes are
    views over those counters, so
    :meth:`~repro.runtime.registry.FunctionRegistry.code_cache_stats`
    consumers and the churn benchmarks see the same numbers as a
    registry snapshot does.
    """

    def __init__(self, metrics=None) -> None:
        self._entries: dict[str, list[CompiledFunction]] = {}
        self._lock = threading.Lock()
        # `is None`, not truthiness: an empty registry has len() == 0.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("codecache.hits")
        self._misses = self.metrics.counter("codecache.misses")
        self._seeded = self.metrics.counter("codecache.seeded")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def seeded(self) -> int:
        return self._seeded.value

    def get_or_compile(self, module: Module) -> list[CompiledFunction]:
        """Return the cached compiled functions for ``module``, running
        flat codegen on first sight of its hash."""
        key = module_key(module)
        with self._lock:
            compiled = self._entries.get(key)
            if compiled is not None:
                self._hits.inc()
                return compiled
            self._misses.inc()
        # Compile outside the lock; a racing duplicate is harmless and the
        # first writer wins, keeping threaded code shared.
        with span("module.compile", key=key[:12]) as sp:
            compiled = compile_module(module)
            sp.set_attr("functions", len(compiled))
        with self._lock:
            return self._entries.setdefault(key, compiled)

    def seed(self, module: Module, compiled: list[CompiledFunction]) -> None:
        """Insert already-compiled functions (object-store load, upload).

        The existing entry wins on collision so instances that already
        share one function list keep sharing it.
        """
        key = module_key(module)
        with self._lock:
            if key not in self._entries:
                self._entries[key] = compiled
                self._seeded.inc()

    def seed_with_key(
        self, module: Module, key: str, compiled: list[CompiledFunction]
    ) -> list[CompiledFunction]:
        """Seed under an explicit key and return the canonical entry.

        Modules restored from object files carry no function bodies (code
        ships as the compiled section), so their printed text does not
        determine their code and cannot be the cache key. Callers hash the
        object file itself instead. The key is bound to the module so any
        later :func:`module_key` consult resolves to the same entry, and
        the first-seeded list wins so every loader shares one compiled —
        and transitively one threaded — function list.
        """
        setattr(module, _KEY_ATTR, key)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._hits.inc()
                return existing
            self._entries[key] = compiled
            self._seeded.inc()
            return compiled

    def lookup(self, module: Module) -> list[CompiledFunction] | None:
        """Non-counting peek (used by tests and diagnostics)."""
        with self._lock:
            return self._entries.get(module_key(module))

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "seeded": self.seeded,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        self._hits.reset()
        self._misses.reset()
        self._seeded.reset()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-global cache every Instance/registry consults by default.
GLOBAL_CODE_CACHE = ModuleCodeCache()


def global_code_cache() -> ModuleCodeCache:
    """Accessor for the process-global :data:`GLOBAL_CODE_CACHE`."""
    return GLOBAL_CODE_CACHE
