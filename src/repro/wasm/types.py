"""Type definitions for the Wasm-like virtual ISA.

Mirrors the WebAssembly type grammar: value types, function types, limits,
memory types and global types. These are the vocabulary shared by the module
model, the validator and the interpreter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Size of one linear-memory page, as in the WebAssembly spec.
PAGE_SIZE = 64 * 1024

#: Hard cap on addressable pages for a 32-bit address space.
MAX_PAGES = 65536


class ValType(enum.Enum):
    """A WebAssembly value type."""

    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"
    V128 = "v128"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_int(self) -> bool:
        return self in (ValType.I32, ValType.I64)

    @property
    def is_float(self) -> bool:
        return self in (ValType.F32, ValType.F64)

    @property
    def is_vector(self) -> bool:
        return self is ValType.V128

    @property
    def bits(self) -> int:
        if self is ValType.V128:
            return 128
        return 32 if self in (ValType.I32, ValType.F32) else 64

    @classmethod
    def parse(cls, text: str) -> "ValType":
        try:
            return cls(text)
        except ValueError:
            raise ValueError(f"unknown value type {text!r}") from None


I32 = ValType.I32
I64 = ValType.I64
F32 = ValType.F32
F64 = ValType.F64
V128 = ValType.V128


@dataclass(frozen=True)
class FuncType:
    """A function signature: parameter types and result types."""

    params: tuple[ValType, ...] = ()
    results: tuple[ValType, ...] = ()

    def __str__(self) -> str:
        p = " ".join(str(t) for t in self.params)
        r = " ".join(str(t) for t in self.results)
        return f"[{p}] -> [{r}]"


@dataclass(frozen=True)
class Limits:
    """Minimum and optional maximum size, in units decided by context
    (pages for memories, elements for tables)."""

    minimum: int
    maximum: int | None = None

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise ValueError("limits minimum must be non-negative")
        if self.maximum is not None and self.maximum < self.minimum:
            raise ValueError("limits maximum must be >= minimum")

    def contains(self, size: int) -> bool:
        if size < self.minimum:
            return False
        return self.maximum is None or size <= self.maximum


@dataclass(frozen=True)
class MemoryType:
    """A linear memory type: limits in pages."""

    limits: Limits = field(default_factory=lambda: Limits(1))

    def __post_init__(self) -> None:
        if self.limits.minimum > MAX_PAGES:
            raise ValueError("memory minimum exceeds 4 GiB address space")
        if self.limits.maximum is not None and self.limits.maximum > MAX_PAGES:
            raise ValueError("memory maximum exceeds 4 GiB address space")


@dataclass(frozen=True)
class TableType:
    """A table of function references."""

    limits: Limits = field(default_factory=lambda: Limits(0))


@dataclass(frozen=True)
class GlobalType:
    """A global variable type: value type plus mutability."""

    valtype: ValType
    mutable: bool = False
