"""Object files: serialised modules + pre-generated code (§3.4/§5.2).

After upload-time validation and code generation, FAASM "writes the
resulting object files to a shared object store" so any host can
instantiate the function without recompiling. This module defines that
artifact: a sectioned binary format carrying the module structure *and*
the flat-compiled function bodies.

Layout::

    magic "FOBJ" | version u16 | section*...
    section := tag u8 | length u32 | payload

Payloads are encoded with a small self-describing value encoder (ints,
floats, strings, bytes, lists, tuples, None, ValType/FuncType/BlockType),
deliberately *not* pickle: object files come from the shared store and are
parsed defensively — unknown tags raise, nothing executes on load.
"""

from __future__ import annotations

import struct

from .codegen import CompiledFunction
from .instructions import BlockType
from .module import (
    DataSegment,
    ElementSegment,
    Export,
    Function,
    Global,
    ImportedFunc,
    Module,
)
from .types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType

MAGIC = b"FOBJ"
VERSION = 1


class ObjectFileError(ValueError):
    """The object file is malformed or from an unsupported version."""


# ----------------------------------------------------------------------
# Value encoder (a compact, non-executing alternative to pickle)
# ----------------------------------------------------------------------

_T_NONE = 0
_T_INT = 1
_T_NEGINT = 2
_T_FLOAT = 3
_T_STR = 4
_T_BYTES = 5
_T_LIST = 6
_T_TUPLE = 7
_T_VALTYPE = 8
_T_FUNCTYPE = 9
_T_BLOCKTYPE = 10
_T_BOOL_TRUE = 11
_T_BOOL_FALSE = 12

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")

_VALTYPE_CODES = {ValType.I32: 0, ValType.I64: 1, ValType.F32: 2, ValType.F64: 3}
_VALTYPE_FROM = {v: k for k, v in _VALTYPE_CODES.items()}


def _enc(value, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_BOOL_TRUE)
    elif value is False:
        out.append(_T_BOOL_FALSE)
    elif isinstance(value, int):
        if value >= 0:
            out.append(_T_INT)
        else:
            out.append(_T_NEGINT)
            value = -value
        raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "little")
        out.append(len(raw))
        out += raw
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, list):
        out.append(_T_LIST)
        out += _U32.pack(len(value))
        for item in value:
            _enc(item, out)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _enc(item, out)
    elif isinstance(value, ValType):
        out.append(_T_VALTYPE)
        out.append(_VALTYPE_CODES[value])
    elif isinstance(value, FuncType):
        out.append(_T_FUNCTYPE)
        _enc(list(value.params), out)
        _enc(list(value.results), out)
    elif isinstance(value, BlockType):
        out.append(_T_BLOCKTYPE)
        _enc(list(value.params), out)
        _enc(list(value.results), out)
    else:
        raise ObjectFileError(f"cannot encode {type(value).__name__}")


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ObjectFileError("truncated object file")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def value(self):
        tag = self.u8()
        if tag == _T_NONE:
            return None
        if tag == _T_BOOL_TRUE:
            return True
        if tag == _T_BOOL_FALSE:
            return False
        if tag in (_T_INT, _T_NEGINT):
            n = self.u8()
            value = int.from_bytes(self.take(n), "little")
            return -value if tag == _T_NEGINT else value
        if tag == _T_FLOAT:
            return _F64.unpack(self.take(8))[0]
        if tag == _T_STR:
            return self.take(self.u32()).decode("utf-8")
        if tag == _T_BYTES:
            return self.take(self.u32())
        if tag == _T_LIST:
            return [self.value() for _ in range(self.u32())]
        if tag == _T_TUPLE:
            return tuple(self.value() for _ in range(self.u32()))
        if tag == _T_VALTYPE:
            return _VALTYPE_FROM[self.u8()]
        if tag == _T_FUNCTYPE:
            params = self.value()
            results = self.value()
            return FuncType(tuple(params), tuple(results))
        if tag == _T_BLOCKTYPE:
            params = self.value()
            results = self.value()
            return BlockType(tuple(params), tuple(results))
        raise ObjectFileError(f"unknown value tag {tag}")


# ----------------------------------------------------------------------
# Module / compiled-code (de)serialisation
# ----------------------------------------------------------------------


def _limits_tuple(limits: Limits):
    return (limits.minimum, limits.maximum)


def _module_payload(module: Module):
    return [
        module.name,
        [(i.module, i.name, i.type) for i in module.imports],
        _limits_tuple(module.memory.limits) if module.memory else None,
        _limits_tuple(module.table.limits) if module.table else None,
        [(g.type.valtype, g.type.mutable, g.init) for g in module.globals_],
        [(e.name, e.kind, e.index) for e in module.exports],
        [(d.offset, bytes(d.data)) for d in module.data],
        [(e.offset, list(e.func_indices)) for e in module.elements],
        module.start,
        # Function *signatures* only — bodies ship as compiled code.
        [(f.name, f.type, list(f.locals)) for f in module.funcs],
    ]


def _restore_module(payload) -> Module:
    (name, imports, memory, table, globals_, exports, data, elements,
     start, funcs) = payload
    module = Module(name=name)
    module.imports = [ImportedFunc(m, n, t) for m, n, t in imports]
    if memory is not None:
        module.memory = MemoryType(Limits(memory[0], memory[1]))
    if table is not None:
        module.table = TableType(Limits(table[0], table[1]))
    module.globals_ = [Global(GlobalType(vt, mut), init) for vt, mut, init in globals_]
    module.exports = [Export(n, k, i) for n, k, i in exports]
    module.data = [DataSegment(off, bytes(d)) for off, d in data]
    module.elements = [ElementSegment(off, list(fi)) for off, fi in elements]
    module.start = start
    # Bodies are intentionally empty: execution uses the compiled section.
    module.funcs = [Function(t, list(locs), [], n) for n, t, locs in funcs]
    return module


def _compiled_payload(compiled: list[CompiledFunction]):
    return [
        (fn.name, fn.type, list(fn.local_types), [tuple(ins) for ins in fn.code])
        for fn in compiled
    ]


def _restore_compiled(payload) -> list[CompiledFunction]:
    return [
        CompiledFunction(name, ftype, list(local_types), [tuple(ins) for ins in code])
        for name, ftype, local_types, code in payload
    ]


_SEC_MODULE = 1
_SEC_CODE = 2
_SEC_META = 3


def write_object(module: Module, compiled: list[CompiledFunction],
                 meta: dict | None = None) -> bytes:
    """Serialise a validated module and its generated code."""
    out = bytearray(MAGIC)
    out += struct.pack("<H", VERSION)

    def section(tag: int, payload) -> None:
        body = bytearray()
        _enc(payload, body)
        out.append(tag)
        out.extend(_U32.pack(len(body)))
        out.extend(body)

    section(_SEC_MODULE, _module_payload(module))
    section(_SEC_CODE, _compiled_payload(compiled))
    if meta:
        section(_SEC_META, sorted(meta.items()))
    return bytes(out)


def read_object(data: bytes) -> tuple[Module, list[CompiledFunction], dict]:
    """Parse an object file; returns (module, compiled functions, meta)."""
    if data[:4] != MAGIC:
        raise ObjectFileError("bad magic")
    (version,) = struct.unpack_from("<H", data, 4)
    if version != VERSION:
        raise ObjectFileError(f"unsupported object version {version}")
    reader = _Reader(data)
    reader.pos = 6
    module = None
    compiled: list[CompiledFunction] = []
    meta: dict = {}
    while reader.pos < len(data):
        tag = reader.u8()
        length = reader.u32()
        body = _Reader(reader.take(length))
        if tag == _SEC_MODULE:
            module = _restore_module(body.value())
        elif tag == _SEC_CODE:
            compiled = _restore_compiled(body.value())
        elif tag == _SEC_META:
            meta = dict(body.value())
        else:
            raise ObjectFileError(f"unknown section tag {tag}")
    if module is None:
        raise ObjectFileError("object file has no module section")
    return module, compiled, meta
