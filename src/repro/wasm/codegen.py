"""Code generation: structured instructions → flat "object code".

This is the trusted phase 2 of §3.4: after validation, nested control
structures are lowered to a linear instruction array with every branch
target resolved to a program counter. The interpreter then executes the
flat form with no per-branch searching, which is our stand-in for WAVM's
native code generation.

Flat form conventions (``code`` is a list of tuples):

* ``("block", end_pc, results_arity, params_arity)`` — push a label whose
  branch target is ``end_pc + 1`` (just past the matching ``end``).
* ``("loop", self_pc, params_arity)`` — push a label whose branch target is
  the loop opcode itself; re-executing it re-pushes the label.
* ``("if", false_pc, end_pc, results_arity, params_arity)`` — pop condition;
  when false, jump to ``false_pc`` (first instruction of the else branch, or
  the ``end``).
* ``("else", end_pc)`` — reached on fall-through from the then branch: jump
  to the ``end``.
* ``("end",)`` — pop the innermost label.
* ``("br", depth)`` / ``("br_if", depth)`` / ``("br_table", depths, default)``.

Constant immediates are canonicalised here (i32/i64 wrapped to unsigned,
f32 rounded through single precision) so the interpreter can assume
normalised values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import CONST_OPS, Instr
from .module import Function, Module
from .simd import canon_v128
from .types import FuncType, ValType
from .values import to_f32, wrap32, wrap64


@dataclass
class CompiledFunction:
    """A function lowered to flat code, ready for execution."""

    name: str | None
    type: FuncType
    local_types: list[ValType]
    code: list[tuple]
    #: Total number of locals including parameters.
    n_locals: int = 0
    #: Lazily-built closure-threaded form (see :mod:`repro.wasm.threaded`).
    #: Runtime-only: instance-independent, shared across every instance of
    #: the module, and deliberately excluded from object-file serialisation.
    threaded: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.n_locals = len(self.type.params) + len(self.local_types)


def _canon_const(op: str, value):
    ty = CONST_OPS[op]
    if ty is ValType.I32:
        return wrap32(int(value))
    if ty is ValType.I64:
        return wrap64(int(value))
    if ty is ValType.F32:
        return to_f32(float(value))
    if ty is ValType.V128:
        return canon_v128(value)
    return float(value)


class _Emitter:
    def __init__(self) -> None:
        self.code: list[tuple] = []

    def emit_seq(self, body: list[Instr]) -> None:
        for ins in body:
            self.emit(ins)

    def emit(self, ins: Instr) -> None:
        op = ins.op
        code = self.code
        if op in CONST_OPS:
            code.append((op, _canon_const(op, ins.args[0])))
        elif op == "block":
            bt, inner = ins.args
            slot = len(code)
            code.append(None)  # patched below
            self.emit_seq(inner)
            end_pc = len(code)
            code.append(("end",))
            code[slot] = ("block", end_pc, len(bt.results), len(bt.params))
        elif op == "loop":
            bt, inner = ins.args
            self_pc = len(code)
            code.append(("loop", self_pc, len(bt.params)))
            self.emit_seq(inner)
            code.append(("end",))
        elif op == "if":
            bt = ins.args[0]
            then_body = ins.args[1]
            else_body = ins.args[2] if len(ins.args) > 2 else []
            slot = len(code)
            code.append(None)
            self.emit_seq(then_body)
            if else_body:
                else_slot = len(code)
                code.append(None)
                false_pc = len(code)
                self.emit_seq(else_body)
                end_pc = len(code)
                code.append(("end",))
                code[else_slot] = ("else", end_pc)
            else:
                end_pc = len(code)
                code.append(("end",))
                false_pc = end_pc
            code[slot] = ("if", false_pc, end_pc, len(bt.results), len(bt.params))
        elif op == "br_table":
            depths, default = ins.args
            code.append(("br_table", tuple(depths), default))
        else:
            code.append((op, *ins.args))


def compile_function(func: Function) -> CompiledFunction:
    """Lower one validated function body to flat code."""
    emitter = _Emitter()
    emitter.emit_seq(func.body)
    emitter.code.append(("return",))
    return CompiledFunction(func.name, func.type, list(func.locals), emitter.code)


def compile_module(module: Module) -> list[CompiledFunction]:
    """Lower every defined function. Order matches ``module.funcs``."""
    return [compile_function(f) for f in module.funcs]
