"""Error and trap hierarchy for the Wasm-like SFI virtual machine.

Traps are the runtime enforcement half of software-fault isolation: any
attempt by guest code to step outside its sandbox (out-of-bounds memory
access, bad indirect call, exhausted fuel) raises a :class:`Trap`, which the
embedder catches at the Faaslet boundary. Validation errors are the static
half, raised before code is ever executed.
"""

from __future__ import annotations


class WasmError(Exception):
    """Base class for all errors raised by the ``repro.wasm`` package."""


class ValidationError(WasmError):
    """A module failed static validation (type checking, bad indices...)."""


class ParseError(WasmError):
    """The text-format assembler could not parse its input."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LinkError(WasmError):
    """Instantiation failed: missing or mismatched imports, bad data segment."""


class Trap(WasmError):
    """Guest code performed an operation forbidden at runtime."""


class OutOfBoundsMemoryAccess(Trap):
    """A load or store fell outside the linear memory bounds."""

    def __init__(self, addr: int, size: int, mem_size: int):
        self.addr = addr
        self.size = size
        self.mem_size = mem_size
        super().__init__(
            f"out of bounds memory access: [{addr}, {addr + size}) "
            f"exceeds memory size {mem_size}"
        )


class OutOfBoundsTableAccess(Trap):
    """An indirect call used a table index outside the table bounds."""


class UndefinedElement(Trap):
    """An indirect call hit an uninitialised table slot."""


class IndirectCallTypeMismatch(Trap):
    """The function reached through ``call_indirect`` has the wrong type."""


class IntegerDivideByZero(Trap):
    """Integer division or remainder by zero."""


class IntegerOverflow(Trap):
    """Integer operation overflowed (e.g. ``INT_MIN / -1`` or bad trunc)."""


class InvalidConversion(Trap):
    """A float-to-int truncation of NaN or an out-of-range value."""


class UnreachableExecuted(Trap):
    """The ``unreachable`` instruction was executed."""


class CallStackExhausted(Trap):
    """Guest recursion exceeded the configured call-depth limit."""


class UnalignedAtomicAccess(Trap):
    """An atomic operation used an address not aligned to its access size."""

    def __init__(self, addr: int, size: int):
        self.addr = addr
        self.size = size
        super().__init__(
            f"unaligned atomic access: address {addr} not {size}-byte aligned"
        )


class OutOfFuel(Trap):
    """The instance ran out of fuel (CPU metering, used by cgroup accounting)."""


class MemoryGrowError(WasmError):
    """``memory.grow`` beyond the configured maximum (reported as -1 to guest,
    raised only by the embedder-facing API)."""


class StackOverflowError(Trap):
    """The operand stack exceeded its limit (defence in depth)."""
