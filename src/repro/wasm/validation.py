"""Static validation: stack-based type checking of modules.

Implements the standard WebAssembly validation algorithm (value stack +
control-frame stack, with an ``unreachable`` mode that makes the bottom of
the stack polymorphic). Validation runs in the trusted environment before
code generation (§3.4): a module that validates cannot underflow the operand
stack, reference undefined locals/globals/functions, or leave a block with
the wrong types. Together with the interpreter's runtime traps this gives
the SFI guarantees Faaslets rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ValidationError
from .instructions import (
    ATOMIC_CMPXCHG_OPS,
    ATOMIC_RMW_OPS,
    ATOMIC_WAIT_NOTIFY_OPS,
    CONST_OPS,
    INSTR_SIGS,
    LOAD_OPS,
    SIMD_LANE_IMM_OPS,
    STORE_OPS,
    BlockType,
    Instr,
)
from .module import Module
from .types import I32, FuncType, ValType

#: Atomic ops that carry a memory offset immediate but type-check through
#: the generic INSTR_SIGS path (plain atomic load/store live in
#: LOAD_OPS/STORE_OPS and take the load/store branches instead).
_ATOMIC_MEMARG = (
    frozenset(ATOMIC_RMW_OPS)
    | frozenset(ATOMIC_CMPXCHG_OPS)
    | frozenset(ATOMIC_WAIT_NOTIFY_OPS)
)


def _valid_v128_init(value) -> bool:
    if isinstance(value, (bytes, bytearray)):
        return len(value) == 16
    return isinstance(value, int) and 0 <= value < (1 << 128)

#: Sentinel for a stack slot of unknown (polymorphic) type.
_UNKNOWN = None


@dataclass
class _Ctrl:
    """A control frame: one entry per enclosing block/loop/if/function."""

    opcode: str
    params: tuple[ValType, ...]
    results: tuple[ValType, ...]
    height: int
    unreachable: bool = False

    @property
    def label_types(self) -> tuple[ValType, ...]:
        """Types a branch to this frame must provide (params for loops)."""
        return self.params if self.opcode == "loop" else self.results


class _FuncValidator:
    def __init__(self, module: Module, func_index: int):
        self.module = module
        func = module.funcs[func_index - len(module.imports)]
        self.func = func
        self.locals = list(func.type.params) + list(func.locals)
        self.vals: list[ValType | None] = []
        self.ctrls: list[_Ctrl] = []

    # -- stack primitives ------------------------------------------------
    def push_val(self, t: ValType | None) -> None:
        self.vals.append(t)

    def pop_val(self, expect: ValType | None = None) -> ValType | None:
        frame = self.ctrls[-1]
        if len(self.vals) == frame.height:
            if frame.unreachable:
                return expect
            raise ValidationError(
                f"{self._where()}: operand stack underflow (expected "
                f"{expect or 'a value'})"
            )
        actual = self.vals.pop()
        if expect is not None and actual is not None and actual != expect:
            raise ValidationError(
                f"{self._where()}: type mismatch, expected {expect}, got {actual}"
            )
        return actual if actual is not None else expect

    def pop_vals(self, types: tuple[ValType, ...]) -> None:
        for t in reversed(types):
            self.pop_val(t)

    def push_vals(self, types: tuple[ValType, ...]) -> None:
        for t in types:
            self.push_val(t)

    def push_ctrl(self, opcode: str, bt: BlockType) -> None:
        self.ctrls.append(
            _Ctrl(opcode, bt.params, bt.results, len(self.vals))
        )
        self.push_vals(bt.params)

    def pop_ctrl(self) -> _Ctrl:
        frame = self.ctrls[-1]
        self.pop_vals(frame.results)
        if len(self.vals) != frame.height:
            raise ValidationError(
                f"{self._where()}: {len(self.vals) - frame.height} extra "
                f"value(s) on stack at end of {frame.opcode}"
            )
        self.ctrls.pop()
        return frame

    def set_unreachable(self) -> None:
        frame = self.ctrls[-1]
        del self.vals[frame.height :]
        frame.unreachable = True

    def _where(self) -> str:
        return f"func {self.func.name or '?'}"

    def _label(self, depth: int) -> _Ctrl:
        if not isinstance(depth, int) or depth < 0 or depth >= len(self.ctrls):
            raise ValidationError(f"{self._where()}: invalid branch depth {depth}")
        return self.ctrls[-1 - depth]

    # -- instruction dispatch ---------------------------------------------
    def validate_body(self) -> None:
        self.push_ctrl("func", BlockType((), self.func.type.results))
        self._validate_seq(self.func.body)
        self.pop_ctrl()

    def _validate_seq(self, body: list[Instr]) -> None:
        for ins in body:
            self._validate_instr(ins)

    def _validate_instr(self, ins: Instr) -> None:
        op = ins.op
        if op in CONST_OPS:
            value = ins.args[0]
            ty = CONST_OPS[op]
            if ty.is_int and not isinstance(value, int):
                raise ValidationError(f"{op} immediate must be int")
            if ty.is_float and not isinstance(value, (int, float)):
                raise ValidationError(f"{op} immediate must be numeric")
            if ty.is_vector and not _valid_v128_init(value):
                raise ValidationError(
                    f"{op} immediate must be 16 bytes or a 128-bit int"
                )
            self.push_val(ty)
            return
        if op in LOAD_OPS:
            self._require_memory(op)
            self._check_offset(ins)
            ty, _, _ = LOAD_OPS[op]
            self.pop_val(I32)
            self.push_val(ty)
            return
        if op in STORE_OPS:
            self._require_memory(op)
            self._check_offset(ins)
            ty, _ = STORE_OPS[op]
            self.pop_val(ty)
            self.pop_val(I32)
            return
        if op in ("memory.size", "memory.grow"):
            self._require_memory(op)
        if op in _ATOMIC_MEMARG:
            self._require_memory(op)
            self._check_offset(ins)
        if op in SIMD_LANE_IMM_OPS:
            lanes = SIMD_LANE_IMM_OPS[op]
            lane = ins.args[0] if ins.args else None
            if not isinstance(lane, int) or not 0 <= lane < lanes:
                raise ValidationError(
                    f"{self._where()}: {op} lane immediate must be in "
                    f"[0, {lanes})"
                )
        if op in INSTR_SIGS:
            pops, pushes = INSTR_SIGS[op]
            self.pop_vals(pops)
            self.push_vals(pushes)
            return

        handler = getattr(self, "_op_" + op.replace(".", "_"), None)
        if handler is None:
            raise ValidationError(f"{self._where()}: unknown instruction {op!r}")
        handler(ins)

    def _require_memory(self, op: str) -> None:
        if self.module.memory is None:
            raise ValidationError(f"{self._where()}: {op} requires a memory")

    def _check_offset(self, ins: Instr) -> None:
        offset = ins.args[0] if ins.args else 0
        if not isinstance(offset, int) or offset < 0:
            raise ValidationError(
                f"{self._where()}: memory offset must be a non-negative int"
            )

    # -- structured control -------------------------------------------------
    def _blocktype(self, ins: Instr) -> BlockType:
        bt = ins.args[0] if ins.args else BlockType()
        if not isinstance(bt, BlockType):
            raise ValidationError(f"{self._where()}: bad block type on {ins.op}")
        return bt

    def _op_block(self, ins: Instr) -> None:
        bt = self._blocktype(ins)
        self.pop_vals(bt.params)
        self.push_ctrl("block", bt)
        self._validate_seq(ins.args[1])
        frame = self.pop_ctrl()
        self.push_vals(frame.results)

    def _op_loop(self, ins: Instr) -> None:
        bt = self._blocktype(ins)
        self.pop_vals(bt.params)
        self.push_ctrl("loop", bt)
        self._validate_seq(ins.args[1])
        frame = self.pop_ctrl()
        self.push_vals(frame.results)

    def _op_if(self, ins: Instr) -> None:
        bt = self._blocktype(ins)
        self.pop_val(I32)
        self.pop_vals(bt.params)
        self.push_ctrl("if", bt)
        self._validate_seq(ins.args[1])
        self.pop_ctrl()
        then_else = ins.args[2] if len(ins.args) > 2 else []
        if bt.results and not then_else:
            raise ValidationError(
                f"{self._where()}: if with results requires an else branch"
            )
        self.push_ctrl("else", bt)
        self._validate_seq(then_else or [])
        frame = self.pop_ctrl()
        self.push_vals(frame.results)

    def _op_br(self, ins: Instr) -> None:
        frame = self._label(ins.args[0])
        self.pop_vals(frame.label_types)
        self.set_unreachable()

    def _op_br_if(self, ins: Instr) -> None:
        frame = self._label(ins.args[0])
        self.pop_val(I32)
        self.pop_vals(frame.label_types)
        self.push_vals(frame.label_types)

    def _op_br_table(self, ins: Instr) -> None:
        depths, default = ins.args
        default_frame = self._label(default)
        arity = default_frame.label_types
        self.pop_val(I32)
        for depth in depths:
            frame = self._label(depth)
            if frame.label_types != arity:
                raise ValidationError(
                    f"{self._where()}: br_table label arity mismatch"
                )
        self.pop_vals(arity)
        self.set_unreachable()

    def _op_return(self, ins: Instr) -> None:
        self.pop_vals(self.func.type.results)
        self.set_unreachable()

    def _op_unreachable(self, ins: Instr) -> None:
        self.set_unreachable()

    def _op_call(self, ins: Instr) -> None:
        index = ins.args[0]
        if not isinstance(index, int) or not 0 <= index < self.module.num_funcs:
            raise ValidationError(f"{self._where()}: call to invalid index {index}")
        ftype = self.module.func_type(index)
        self.pop_vals(ftype.params)
        self.push_vals(ftype.results)

    def _op_call_indirect(self, ins: Instr) -> None:
        if self.module.table is None:
            raise ValidationError(f"{self._where()}: call_indirect requires a table")
        ftype = ins.args[0]
        if not isinstance(ftype, FuncType):
            raise ValidationError(
                f"{self._where()}: call_indirect immediate must be a FuncType"
            )
        self.pop_val(I32)
        self.pop_vals(ftype.params)
        self.push_vals(ftype.results)

    # -- variables ------------------------------------------------------------
    def _local(self, ins: Instr) -> ValType:
        index = ins.args[0]
        if not isinstance(index, int) or not 0 <= index < len(self.locals):
            raise ValidationError(
                f"{self._where()}: invalid local index {index}"
            )
        return self.locals[index]

    def _op_local_get(self, ins: Instr) -> None:
        self.push_val(self._local(ins))

    def _op_local_set(self, ins: Instr) -> None:
        self.pop_val(self._local(ins))

    def _op_local_tee(self, ins: Instr) -> None:
        t = self._local(ins)
        self.pop_val(t)
        self.push_val(t)

    def _global(self, ins: Instr):
        index = ins.args[0]
        if not isinstance(index, int) or not 0 <= index < len(self.module.globals_):
            raise ValidationError(f"{self._where()}: invalid global index {index}")
        return self.module.globals_[index]

    def _op_global_get(self, ins: Instr) -> None:
        self.push_val(self._global(ins).type.valtype)

    def _op_global_set(self, ins: Instr) -> None:
        g = self._global(ins)
        if not g.type.mutable:
            raise ValidationError(f"{self._where()}: write to immutable global")
        self.pop_val(g.type.valtype)

    # -- parametric -------------------------------------------------------------
    def _op_drop(self, ins: Instr) -> None:
        self.pop_val()

    def _op_select(self, ins: Instr) -> None:
        self.pop_val(I32)
        t1 = self.pop_val()
        t2 = self.pop_val(t1)
        self.push_val(t1 if t1 is not None else t2)


def validate_module(module: Module) -> None:
    """Validate ``module``, raising :class:`ValidationError` on any defect."""
    # Globals: check init value shape.
    for i, g in enumerate(module.globals_):
        if g.type.valtype.is_int and not isinstance(g.init, int):
            raise ValidationError(f"global {i}: init value must be int")
        if g.type.valtype.is_float and not isinstance(g.init, (int, float)):
            raise ValidationError(f"global {i}: init value must be numeric")
        if g.type.valtype.is_vector and not _valid_v128_init(g.init):
            raise ValidationError(
                f"global {i}: init value must be 16 bytes or a 128-bit int"
            )

    # Exports: names unique, indices in range.
    seen: set[str] = set()
    for export in module.exports:
        if export.name in seen:
            raise ValidationError(f"duplicate export name {export.name!r}")
        seen.add(export.name)
        if export.kind == "func":
            if not 0 <= export.index < module.num_funcs:
                raise ValidationError(f"export {export.name!r}: bad func index")
        elif export.kind == "global":
            if not 0 <= export.index < len(module.globals_):
                raise ValidationError(f"export {export.name!r}: bad global index")
        elif export.kind == "memory":
            if module.memory is None:
                raise ValidationError(f"export {export.name!r}: no memory")
        else:
            raise ValidationError(f"export {export.name!r}: bad kind {export.kind}")

    # Data segments need a memory; element segments need a table.
    if module.data and module.memory is None:
        raise ValidationError("data segment without memory")
    if module.elements and module.table is None:
        raise ValidationError("element segment without table")
    for seg in module.elements:
        for idx in seg.func_indices:
            if not 0 <= idx < module.num_funcs:
                raise ValidationError(f"element segment references bad func {idx}")

    # Start function must be [] -> [].
    if module.start is not None:
        if not 0 <= module.start < module.num_funcs:
            raise ValidationError("start function index out of range")
        st = module.func_type(module.start)
        if st.params or st.results:
            raise ValidationError("start function must have type [] -> []")

    # Function bodies.
    n_imports = len(module.imports)
    for i in range(len(module.funcs)):
        _FuncValidator(module, n_imports + i).validate_body()
