"""Module model: the in-memory equivalent of a ``.wasm`` binary.

A :class:`Module` is produced either by the text assembler
(:mod:`repro.wasm.text`) or the minilang compiler, then validated
(:mod:`repro.wasm.validation`), code-generated (:mod:`repro.wasm.codegen`)
and instantiated (:mod:`repro.wasm.instance`). That pipeline mirrors the
compile → validate → codegen → link phases of §3.4 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import Instr
from .types import FuncType, GlobalType, MemoryType, TableType, ValType


@dataclass
class Function:
    """A function defined inside the module."""

    type: FuncType
    locals: list[ValType] = field(default_factory=list)
    body: list[Instr] = field(default_factory=list)
    name: str | None = None


@dataclass
class ImportedFunc:
    """A function imported from the host (the Faaslet host interface)."""

    module: str
    name: str
    type: FuncType


@dataclass
class Global:
    """A global variable with a constant initial value."""

    type: GlobalType
    init: int | float = 0


@dataclass
class DataSegment:
    """Bytes copied into linear memory at instantiation time."""

    offset: int
    data: bytes


@dataclass
class ElementSegment:
    """Function indices copied into the table at instantiation time."""

    offset: int
    func_indices: list[int] = field(default_factory=list)


@dataclass
class Export:
    """An export: ``kind`` is one of ``func``, ``memory``, ``global``."""

    name: str
    kind: str
    index: int


@dataclass
class Module:
    """A complete module. The function index space is imports first, then
    locally defined functions, as in WebAssembly."""

    imports: list[ImportedFunc] = field(default_factory=list)
    funcs: list[Function] = field(default_factory=list)
    memory: MemoryType | None = None
    table: TableType | None = None
    globals_: list[Global] = field(default_factory=list)
    exports: list[Export] = field(default_factory=list)
    data: list[DataSegment] = field(default_factory=list)
    elements: list[ElementSegment] = field(default_factory=list)
    start: int | None = None
    name: str | None = None

    # ------------------------------------------------------------------
    def func_type(self, index: int) -> FuncType:
        """Type of the function at ``index`` in the unified index space."""
        n_imports = len(self.imports)
        if index < n_imports:
            return self.imports[index].type
        return self.funcs[index - n_imports].type

    @property
    def num_funcs(self) -> int:
        return len(self.imports) + len(self.funcs)

    def export_map(self) -> dict[str, Export]:
        return {e.name: e for e in self.exports}

    def find_export(self, name: str, kind: str = "func") -> Export:
        for export in self.exports:
            if export.name == name and export.kind == kind:
                return export
        raise KeyError(f"no exported {kind} named {name!r}")


class ModuleBuilder:
    """Programmatic module construction, used by the minilang compiler and
    by tests that build modules without going through the text format."""

    def __init__(self, name: str | None = None):
        self.module = Module(name=name)
        self._func_names: dict[str, int] = {}

    def import_func(self, module: str, name: str, functype: FuncType) -> int:
        if self.module.funcs:
            raise ValueError("imports must be declared before defined functions")
        idx = len(self.module.imports)
        self.module.imports.append(ImportedFunc(module, name, functype))
        self._func_names[name] = idx
        return idx

    def add_memory(self, min_pages: int, max_pages: int | None = None) -> None:
        from .types import Limits

        self.module.memory = MemoryType(Limits(min_pages, max_pages))

    def add_table(self, min_size: int, max_size: int | None = None) -> None:
        from .types import Limits

        self.module.table = TableType(Limits(min_size, max_size))

    def add_global(
        self, valtype: ValType, init: int | float = 0, mutable: bool = True
    ) -> int:
        idx = len(self.module.globals_)
        self.module.globals_.append(Global(GlobalType(valtype, mutable), init))
        return idx

    def add_data(self, offset: int, data: bytes) -> None:
        self.module.data.append(DataSegment(offset, data))

    def add_function(
        self,
        name: str,
        functype: FuncType,
        locals_: list[ValType],
        body: list[Instr],
        export: bool = False,
    ) -> int:
        idx = self.module.num_funcs
        self.module.funcs.append(Function(functype, list(locals_), list(body), name))
        self._func_names[name] = idx
        if export:
            self.module.exports.append(Export(name, "func", idx))
        return idx

    def add_element(self, offset: int, func_indices: list[int]) -> None:
        self.module.elements.append(ElementSegment(offset, list(func_indices)))

    def func_index(self, name: str) -> int:
        return self._func_names[name]

    def set_start(self, index: int) -> None:
        self.module.start = index

    def build(self) -> Module:
        return self.module
