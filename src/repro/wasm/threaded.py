"""Tier-2 execution: closure-threaded basic blocks with fuel batching.

This is the repo's stand-in for WAVM's ahead-of-time code generation
(§3.4): instead of dispatching one ``(op, ...)`` tuple at a time through
the reference interpreter's ``if/elif`` chain, each
:class:`~repro.wasm.codegen.CompiledFunction` is lowered **once** into a
list of pre-bound Python closures — one per basic block — and executed by
a trivial dispatch loop::

    while pc >= 0:
        pc = ops[pc](stack, locals_, frame)

Three techniques carry the speedup:

* **Closure threading** — every block closure captures its immediates,
  operator callables (from :data:`~repro.wasm.ops.BINOPS`/``UNOPS``),
  float constants and typed single-page memory accessors (the struct
  packers from :mod:`repro.wasm.memory`) as pre-bound default arguments,
  so the hot path performs no dict lookups, no opcode tests and no
  immediate decoding.

* **Superinstruction fusion, generalised** — within a block the compiler
  runs a symbolic operand stack: ``local.get``/``const``/pure-operator
  results stay as Python *expressions* and are folded into their
  consumers, so ``local.get local.get i32.mul local.get i32.add i32.const
  i32.shl i32.add f64.load`` collapses into a single bound statement
  ``t0 = LD(mem, L[a] + (((L[i] * L[n] + L[j]) << 3) & M))`` with no
  operand-stack traffic at all. Anything that can trap or touch shared
  state (loads, stores, div/rem, float→int truncation, globals,
  ``memory.*``) is materialised eagerly, in flat-code order, so the
  sequence of observable effects and the trap points are identical to the
  reference tier.

* **Block-level fuel batching** — a prologue in each block closure charges
  the whole block's flat instruction count against the fuel budget in one
  step. When the remaining fuel cannot cover the block, it falls back to
  per-instruction metering over single-op closures so ``OutOfFuel`` fires
  at exactly the same instruction — with the same partial side effects and
  the same ``instructions_executed`` — as the reference tier.

Threaded code depends only on the *module* (function types for calls),
never on instance state: memory, globals, table and fuel arrive through
the per-call :class:`Frame`. One threaded body is therefore shared by
every instance of the module — the property the cluster-wide compiled
module cache relies on.

Trap semantics note: the reference interpreter does **not** flush its
local fuel/instruction counters when a trap propagates (only ``OutOfFuel``
and call boundaries flush). The threaded tier reproduces this exactly by
keeping counters in the frame and flushing only at the OutOfFuel path,
call boundaries and normal function exit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import (
    IndirectCallTypeMismatch,
    OutOfBoundsTableAccess,
    UndefinedElement,
    UnreachableExecuted,
)
from .futex import atomic_notify, atomic_wait32
from .instructions import (
    ATOMIC_CMPXCHG_OPS,
    ATOMIC_RMW_OPS,
    CONST_OPS,
    LOAD_OPS,
    STORE_OPS,
)
from .memory import TYPED_LOADS, TYPED_STORES
from .ops import BINOPS, UNOPS
from .simd import SIMD_EXTRACT_OPS, SIMD_REPLACE_OPS
from .values import MASK32


class Frame:
    """Per-call execution state handed to every threaded closure.

    Pure arithmetic never touches the frame; memory/global/control code
    reaches instance state through it, which is what keeps the threaded
    code itself instance-independent and shareable.
    """

    __slots__ = ("inst", "mem", "glb", "labels", "depth", "fuel", "executed")

    def __init__(self, inst, depth: int):
        self.inst = inst
        self.mem = inst.memory
        self.glb = inst.globals
        self.labels = []
        self.depth = depth
        self.fuel = inst._fuel
        self.executed = 0


@dataclass
class ThreadedCode:
    """One function's closure-threaded form."""

    #: One closure per basic block; index = threaded pc. Entry is pc 0.
    ops: list
    #: Flat-instruction count charged by each block's fuel prologue.
    costs: list
    #: ``blk@<flat_start>+<n>`` labels (profiling / debugging aid).
    mnemonics: list
    #: Number of flat instructions this code was threaded from.
    n_flat: int


# ----------------------------------------------------------------------
# Static control-flow analysis over flat code
# ----------------------------------------------------------------------


def _static_branch_targets(code) -> dict:
    """Resolve every br/br_if/br_table to its static flat-pc target(s).

    The label a branch refers to is fixed by the nesting of block/loop/if
    around it, so a single linear scan with a control stack resolves all
    targets (-1 = branch out of the function, i.e. return).
    """
    ctrl: list[int] = []
    targets: dict[int, tuple] = {}
    for pc, ins in enumerate(code):
        op = ins[0]
        if op == "block":
            ctrl.append(ins[1] + 1)
        elif op == "loop":
            ctrl.append(ins[1])
        elif op == "if":
            ctrl.append(ins[2] + 1)
        elif op == "end":
            ctrl.pop()
        elif op == "br" or op == "br_if":
            d = ins[1]
            targets[pc] = (ctrl[-1 - d] if d < len(ctrl) else -1,)
        elif op == "br_table":
            depths, default = ins[1], ins[2]
            targets[pc] = tuple(
                ctrl[-1 - d] if d < len(ctrl) else -1
                for d in tuple(depths) + (default,)
            )
    return targets


#: Opcodes that may divert control or re-enter the runtime; they always
#: terminate the basic block they appear in (the instruction after them
#: is a leader), so a block's pre-charged fuel never covers skipped code
#: and fuel is always synced to the instance around calls.
_BLOCK_ENDERS = frozenset(
    ["if", "else", "br", "br_if", "br_table", "call", "call_indirect",
     "return", "unreachable",
     # wait32 can suspend the guest thread and re-enter the scheduler, so
     # it gets the same fuel-handshake treatment as a call.
     "memory.atomic.wait32"]
)


def _find_leaders(code, targets: dict) -> set:
    n = len(code)
    leaders = {0}
    for pc, ins in enumerate(code):
        op = ins[0]
        if op == "block":
            leaders.add(ins[1] + 1)
        elif op == "loop":
            leaders.add(ins[1])
        elif op == "if":
            leaders.add(ins[1])
            leaders.add(ins[2] + 1)
        elif op == "else":
            leaders.add(ins[1])
        elif op in ("br", "br_if", "br_table"):
            for t in targets.get(pc, ()):
                if t >= 0:
                    leaders.add(t)
        if op in _BLOCK_ENDERS:
            leaders.add(pc + 1)
    return {l for l in leaders if l < n}


# ----------------------------------------------------------------------
# Single-instruction closures (metered slow path)
#
# Each builder returns a closure (stack, locals_, frame) -> next_pc with
# immediates bound as default arguments. These mirror the reference
# interpreter one flat instruction at a time; the fuel fallback steps
# through them when a block cannot be charged wholesale.
# ----------------------------------------------------------------------


def _b_local_get(ins, nxt, ctx):
    def op(stack, locals_, frame, a=ins[1], nxt=nxt):
        stack.append(locals_[a])
        return nxt

    return op


def _b_local_set(ins, nxt, ctx):
    def op(stack, locals_, frame, a=ins[1], nxt=nxt):
        locals_[a] = stack.pop()
        return nxt

    return op


def _b_local_tee(ins, nxt, ctx):
    def op(stack, locals_, frame, a=ins[1], nxt=nxt):
        locals_[a] = stack[-1]
        return nxt

    return op


def _b_const(ins, nxt, ctx):
    def op(stack, locals_, frame, k=ins[1], nxt=nxt):
        stack.append(k)
        return nxt

    return op


def _b_bin(ins, nxt, ctx):
    def op(stack, locals_, frame, fn=BINOPS[ins[0]], nxt=nxt):
        rhs = stack.pop()
        stack[-1] = fn(stack[-1], rhs)
        return nxt

    return op


def _b_un(ins, nxt, ctx):
    def op(stack, locals_, frame, fn=UNOPS[ins[0]], nxt=nxt):
        stack[-1] = fn(stack[-1])
        return nxt

    return op


def _b_load(ins, nxt, ctx):
    def op(stack, locals_, frame, loader=TYPED_LOADS[ins[0]], off=ins[1], nxt=nxt):
        stack[-1] = loader(frame.mem, stack[-1] + off)
        return nxt

    return op


def _b_store(ins, nxt, ctx):
    def op(stack, locals_, frame, storer=TYPED_STORES[ins[0]], off=ins[1], nxt=nxt):
        value = stack.pop()
        storer(frame.mem, stack.pop() + off, value)
        return nxt

    return op


def _b_simd_extract(ins, nxt, ctx):
    def op(stack, locals_, frame, fn=SIMD_EXTRACT_OPS[ins[0]], lane=ins[1],
           nxt=nxt):
        stack[-1] = fn(stack[-1], lane)
        return nxt

    return op


def _b_simd_replace(ins, nxt, ctx):
    def op(stack, locals_, frame, fn=SIMD_REPLACE_OPS[ins[0]], lane=ins[1],
           nxt=nxt):
        x = stack.pop()
        stack[-1] = fn(stack[-1], x, lane)
        return nxt

    return op


def _b_atomic_rmw(ins, nxt, ctx):
    _ty, size, kind = ATOMIC_RMW_OPS[ins[0]]

    def op(stack, locals_, frame, size=size, kind=kind, off=ins[1], nxt=nxt):
        operand = stack.pop()
        stack.append(
            frame.mem.atomic_rmw(stack.pop() + off, operand, size, kind)
        )
        return nxt

    return op


def _b_atomic_cmpxchg(ins, nxt, ctx):
    _ty, size = ATOMIC_CMPXCHG_OPS[ins[0]]

    def op(stack, locals_, frame, size=size, off=ins[1], nxt=nxt):
        replacement = stack.pop()
        expected = stack.pop()
        stack.append(
            frame.mem.atomic_cmpxchg(
                stack.pop() + off, expected, replacement, size
            )
        )
        return nxt

    return op


def _b_atomic_wait32(ins, nxt, ctx):
    def op(stack, locals_, frame, off=ins[1], nxt=nxt):
        inst = frame.inst
        expected = stack.pop()
        addr = stack.pop() + off
        # Same fuel handshake as a call: the runtime may park this guest
        # thread inside the helper.
        inst._fuel = frame.fuel
        inst.instructions_executed += frame.executed
        frame.executed = 0
        stack.append(atomic_wait32(inst, frame.mem, addr, expected))
        frame.fuel = inst._fuel
        return nxt

    return op


def _b_atomic_notify(ins, nxt, ctx):
    def op(stack, locals_, frame, off=ins[1], nxt=nxt):
        count = stack.pop()
        stack.append(
            atomic_notify(frame.inst, frame.mem, stack.pop() + off, count)
        )
        return nxt

    return op


def _b_drop(ins, nxt, ctx):
    def op(stack, locals_, frame, nxt=nxt):
        stack.pop()
        return nxt

    return op


def _b_select(ins, nxt, ctx):
    def op(stack, locals_, frame, nxt=nxt):
        cond = stack.pop()
        b = stack.pop()
        if not cond:
            stack[-1] = b
        return nxt

    return op


def _b_global_get(ins, nxt, ctx):
    def op(stack, locals_, frame, g=ins[1], nxt=nxt):
        stack.append(frame.glb[g].value)
        return nxt

    return op


def _b_global_set(ins, nxt, ctx):
    def op(stack, locals_, frame, g=ins[1], nxt=nxt):
        frame.glb[g].value = stack.pop()
        return nxt

    return op


def _b_memory_size(ins, nxt, ctx):
    def op(stack, locals_, frame, nxt=nxt):
        stack.append(frame.mem.size_pages)
        return nxt

    return op


def _b_memory_grow(ins, nxt, ctx):
    def op(stack, locals_, frame, nxt=nxt):
        stack.append(frame.mem.grow(stack.pop()) & MASK32)
        return nxt

    return op


def _b_nop(ins, nxt, ctx):
    def op(stack, locals_, frame, nxt=nxt):
        return nxt

    return op


def _b_unreachable(ins, nxt, ctx):
    def op(stack, locals_, frame):
        raise UnreachableExecuted("unreachable executed")

    return op


def _b_return(ins, nxt, ctx):
    def op(stack, locals_, frame):
        return -1

    return op


def _b_block(ins, nxt, ctx):
    # ("block", end_pc, results_arity, params_arity)
    def op(stack, locals_, frame, tgt=ctx.flat2t[ins[1] + 1], arity=ins[2],
           params=ins[3], nxt=nxt):
        frame.labels.append((tgt, arity, len(stack) - params))
        return nxt

    return op


def _b_loop(ins, nxt, ctx):
    # ("loop", self_pc, params_arity) — the branch target is the loop
    # head's own block, so every iteration re-runs its fuel prologue.
    def op(stack, locals_, frame, tgt=ctx.flat2t[ins[1]], params=ins[2], nxt=nxt):
        frame.labels.append((tgt, params, len(stack) - params))
        return nxt

    return op


def _b_if(ins, nxt, ctx):
    # ("if", false_pc, end_pc, results_arity, params_arity)
    def op(stack, locals_, frame, false_t=ctx.flat2t[ins[1]],
           tgt=ctx.flat2t[ins[2] + 1], arity=ins[3], params=ins[4], nxt=nxt):
        cond = stack.pop()
        frame.labels.append((tgt, arity, len(stack) - params))
        if cond:
            return nxt
        return false_t

    return op


def _b_else(ins, nxt, ctx):
    def op(stack, locals_, frame, end_t=ctx.flat2t[ins[1]]):
        return end_t

    return op


def _b_end(ins, nxt, ctx):
    def op(stack, locals_, frame, nxt=nxt):
        frame.labels.pop()
        return nxt

    return op


def _do_branch(stack, labels, d):
    target, arity, height = labels[-1 - d]
    if arity:
        transferred = stack[-arity:]
        del stack[height:]
        stack.extend(transferred)
    else:
        del stack[height:]
    del labels[len(labels) - 1 - d:]
    return target


def _b_br(ins, nxt, ctx):
    def op(stack, locals_, frame, d=ins[1]):
        labels = frame.labels
        if d >= len(labels):
            return -1
        return _do_branch(stack, labels, d)

    return op


def _b_br_if(ins, nxt, ctx):
    def op(stack, locals_, frame, d=ins[1], nxt=nxt):
        if not stack.pop():
            return nxt
        labels = frame.labels
        if d >= len(labels):
            return -1
        return _do_branch(stack, labels, d)

    return op


def _b_br_table(ins, nxt, ctx):
    def op(stack, locals_, frame, depths=ins[1], default=ins[2]):
        i = stack.pop()
        d = depths[i] if i < len(depths) else default
        labels = frame.labels
        if d >= len(labels):
            return -1
        return _do_branch(stack, labels, d)

    return op


def _b_call(ins, nxt, ctx):
    callee = ins[1]

    def op(stack, locals_, frame, callee=callee,
           n=len(ctx.module.func_type(callee).params), nxt=nxt):
        inst = frame.inst
        inst._fuel = frame.fuel
        inst.instructions_executed += frame.executed
        frame.executed = 0
        if n:
            call_args = stack[-n:]
            del stack[-n:]
        else:
            call_args = []
        stack.extend(inst._call(callee, call_args, frame.depth + 1))
        frame.fuel = inst._fuel
        return nxt

    return op


def _b_call_indirect(ins, nxt, ctx):
    expected = ins[1]

    def op(stack, locals_, frame, expected=expected, n=len(expected.params), nxt=nxt):
        inst = frame.inst
        i = stack.pop()
        table = inst.table
        if table is None or i >= len(table):
            raise OutOfBoundsTableAccess(f"table index {i} out of bounds")
        callee = table[i]
        if callee is None:
            raise UndefinedElement(f"uninitialised table element {i}")
        if isinstance(callee, tuple):
            actual = callee[1].module.func_type(callee[2])
        else:
            actual = inst.module.func_type(callee)
        if actual != expected:
            raise IndirectCallTypeMismatch(
                f"indirect call type mismatch: {actual} != {expected}"
            )
        if n:
            call_args = stack[-n:]
            del stack[-n:]
        else:
            call_args = []
        inst._fuel = frame.fuel
        inst.instructions_executed += frame.executed
        frame.executed = 0
        if isinstance(callee, tuple):
            stack.extend(callee[1]._call(callee[2], call_args, frame.depth + 1))
        else:
            stack.extend(inst._call(callee, call_args, frame.depth + 1))
        frame.fuel = inst._fuel
        return nxt

    return op


_CONTROL_BUILDERS = {
    "block": _b_block,
    "loop": _b_loop,
    "if": _b_if,
    "else": _b_else,
    "end": _b_end,
    "br": _b_br,
    "br_if": _b_br_if,
    "br_table": _b_br_table,
    "call": _b_call,
    "call_indirect": _b_call_indirect,
}

_MISC_BUILDERS = {
    "local.get": _b_local_get,
    "local.set": _b_local_set,
    "local.tee": _b_local_tee,
    "drop": _b_drop,
    "select": _b_select,
    "global.get": _b_global_get,
    "global.set": _b_global_set,
    "memory.size": _b_memory_size,
    "memory.grow": _b_memory_grow,
    "nop": _b_nop,
    "unreachable": _b_unreachable,
    "return": _b_return,
}


def _build_sub(ins, nxt, ctx):
    op = ins[0]
    b = _MISC_BUILDERS.get(op) or _CONTROL_BUILDERS.get(op)
    if b is not None:
        return b(ins, nxt, ctx)
    if op in CONST_OPS:
        return _b_const(ins, nxt, ctx)
    if op in BINOPS:
        return _b_bin(ins, nxt, ctx)
    if op in UNOPS:
        return _b_un(ins, nxt, ctx)
    if op in LOAD_OPS:
        return _b_load(ins, nxt, ctx)
    if op in STORE_OPS:
        return _b_store(ins, nxt, ctx)
    if op in SIMD_EXTRACT_OPS:
        return _b_simd_extract(ins, nxt, ctx)
    if op in SIMD_REPLACE_OPS:
        return _b_simd_replace(ins, nxt, ctx)
    if op in ATOMIC_RMW_OPS:
        return _b_atomic_rmw(ins, nxt, ctx)
    if op in ATOMIC_CMPXCHG_OPS:
        return _b_atomic_cmpxchg(ins, nxt, ctx)
    if op == "memory.atomic.wait32":
        return _b_atomic_wait32(ins, nxt, ctx)
    if op == "memory.atomic.notify":
        return _b_atomic_notify(ins, nxt, ctx)
    raise NotImplementedError(f"cannot thread opcode {op!r}")


def _make_slow(subs):
    """Per-instruction metering fallback for a block.

    Entered only when ``0 <= frame.fuel < block cost``, so — with no
    refuel hook installed — it always ends in ``OutOfFuel`` before the
    block's last instruction runs, reproducing the reference tier's
    charge-then-execute accounting: the failing instruction is counted,
    its effects never happen, and every effectful instruction before it
    ran in flat order. When the instance carries a ``_refuel_hook`` (the
    guest-thread scheduler) the exhaustion point instead becomes a
    preemption point: ``Instance._refuel`` grants a fresh quantum and the
    loop carries on, possibly reaching the end of the block — the final
    sub-closure's return value is then the next threaded pc, exactly as
    the fast path would have returned. Non-final sub return values remain
    meaningless and are ignored; control transfers only sit at block ends.
    """

    def slow(stack, locals_, frame, subs=subs, last=len(subs) - 1):
        inst = frame.inst
        i = 0
        while True:
            frame.executed += 1
            fuel = frame.fuel
            if fuel is not None:
                fuel -= 1
                if fuel < 0:
                    # Raises OutOfFuel unless a refuel hook grants more.
                    frame.fuel = inst._refuel(frame.executed)
                    frame.executed = 0
                else:
                    frame.fuel = fuel
            r = subs[i](stack, locals_, frame)
            if i == last:
                return r
            i += 1

    return slow


# ----------------------------------------------------------------------
# Block compiler: symbolic operand stack → one closure per basic block
# ----------------------------------------------------------------------

_M32 = "4294967295"
_M64 = "18446744073709551615"
_S32 = "2147483648"
_S64 = "9223372036854775808"


def _signed(e: str, bias: str) -> str:
    return f"(({e} ^ {bias}) - {bias})"


def _cmp(a: str, b: str, sym: str) -> str:
    return f"(1 if {a} {sym} {b} else 0)"


def _int_templates(mask: str, sbias: str, shift: int) -> dict:
    # Exact transliterations of ops.py: operands are canonical unsigned
    # ints, so `% bits` on shift counts equals `& (bits-1)`.
    return {
        "add": lambda a, b: f"(({a} + {b}) & {mask})",
        "sub": lambda a, b: f"(({a} - {b}) & {mask})",
        "mul": lambda a, b: f"(({a} * {b}) & {mask})",
        "and": lambda a, b: f"({a} & {b})",
        "or": lambda a, b: f"({a} | {b})",
        "xor": lambda a, b: f"({a} ^ {b})",
        "shl": lambda a, b: f"(({a} << ({b} & {shift})) & {mask})",
        "shr_u": lambda a, b: f"({a} >> ({b} & {shift}))",
        "eq": lambda a, b: _cmp(a, b, "=="),
        "ne": lambda a, b: _cmp(a, b, "!="),
        "lt_u": lambda a, b: _cmp(a, b, "<"),
        "gt_u": lambda a, b: _cmp(a, b, ">"),
        "le_u": lambda a, b: _cmp(a, b, "<="),
        "ge_u": lambda a, b: _cmp(a, b, ">="),
        "lt_s": lambda a, b: _cmp(_signed(a, sbias), _signed(b, sbias), "<"),
        "gt_s": lambda a, b: _cmp(_signed(a, sbias), _signed(b, sbias), ">"),
        "le_s": lambda a, b: _cmp(_signed(a, sbias), _signed(b, sbias), "<="),
        "ge_s": lambda a, b: _cmp(_signed(a, sbias), _signed(b, sbias), ">="),
    }


#: op → callable(expr, ...) -> expr. Only ops whose semantics are an exact
#: transliteration of ops.py are inlined; everything else calls the bound
#: BINOPS/UNOPS function.
_INLINE_BINOPS: dict = {}
for _name, _tpl in _int_templates(_M32, _S32, 31).items():
    _INLINE_BINOPS[f"i32.{_name}"] = _tpl
for _name, _tpl in _int_templates(_M64, _S64, 63).items():
    _INLINE_BINOPS[f"i64.{_name}"] = _tpl
for _name, _sym in (("eq", "=="), ("ne", "!="), ("lt", "<"), ("gt", ">"),
                    ("le", "<="), ("ge", ">=")):
    # Comparisons never round, so f32 and f64 share the inline form.
    _INLINE_BINOPS[f"f32.{_name}"] = (
        lambda a, b, _sym=_sym: _cmp(a, b, _sym)
    )
    _INLINE_BINOPS[f"f64.{_name}"] = _INLINE_BINOPS[f"f32.{_name}"]
for _name, _sym in (("add", "+"), ("sub", "-"), ("mul", "*")):
    # f64 arithmetic is raw IEEE double — exactly Python float arithmetic.
    # f32 needs the to_f32 rounding call, so it is not inlined; f64.div
    # has zero-divisor special cases, ditto.
    _INLINE_BINOPS[f"f64.{_name}"] = (
        lambda a, b, _sym=_sym: f"({a} {_sym} {b})"
    )

_INLINE_UNOPS: dict = {
    "i32.eqz": lambda a: f"(0 if {a} else 1)",
    "i64.eqz": lambda a: f"(0 if {a} else 1)",
    "f32.neg": lambda a: f"(-{a})",
    "f64.neg": lambda a: f"(-{a})",
    "f32.abs": lambda a: f"abs({a})",
    "f64.abs": lambda a: f"abs({a})",
    "i32.wrap_i64": lambda a: f"({a} & {_M32})",
    "i64.extend_i32_u": lambda a: f"({a} & {_M32})",
    "i64.extend_i32_s": lambda a: f"({_signed(a, _S32)} & {_M64})",
    "f64.convert_i32_s": lambda a: f"float({_signed(a, _S32)})",
    "f64.convert_i32_u": lambda a: f"float({a} & {_M32})",
    "f64.convert_i64_s": lambda a: f"float({_signed(a, _S64)})",
    "f64.convert_i64_u": lambda a: f"float({a} & {_M64})",
    "f64.promote_f32": lambda a: f"({a})",
}

#: Operators that can trap; their results are materialised eagerly so the
#: trap fires in flat-code order relative to stores and other effects.
_TRAPPING_OPS = frozenset(
    [f"{t}.{o}" for t in ("i32", "i64")
     for o in ("div_s", "div_u", "rem_s", "rem_u")]
    + [f"{t}.trunc_f{s}_{g}" for t in ("i32", "i64")
       for s in (32, 64) for g in ("s", "u")]
)


class _Ctx:
    __slots__ = ("flat2t", "module")

    def __init__(self, flat2t, module):
        self.flat2t = flat2t
        self.module = module


class _BlockCompiler:
    """Compile one basic block's flat instructions to Python source.

    Maintains a symbolic operand stack of (pure) expression strings; the
    real list-based stack is only touched for values crossing block
    boundaries and around control instructions, and the invariant is that
    real entries always sit *below* every symbolic entry. Each symbolic
    entry tracks which local indices it references so a ``local.set`` can
    spill (materialise) entries that would otherwise read the new value.
    """

    def __init__(self, bind, ctx, next_block):
        self.bind = bind  # obj -> bound parameter name
        self.ctx = ctx
        self.next_block = next_block
        self.lines: list[str] = []
        self.sym: list[tuple[str, frozenset]] = []
        self.n_temp = 0
        self.uses_mem = False
        self.uses_lab = False
        self.uses_glb = False

    # -- helpers -------------------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append(line)

    def temp(self) -> str:
        name = f"_t{self.n_temp}"
        self.n_temp += 1
        return name

    def push(self, expr: str, locals_used: frozenset = frozenset()) -> None:
        self.sym.append((expr, locals_used))

    def pop(self) -> tuple[str, frozenset]:
        if self.sym:
            return self.sym.pop()
        t = self.temp()
        self.emit(f"{t} = stack.pop()")
        return (t, frozenset())

    def materialize(self, expr: str) -> str:
        """Evaluate ``expr`` now into a temp (effects happen in order)."""
        t = self.temp()
        self.emit(f"{t} = {expr}")
        return t

    def spill_local(self, index: int) -> None:
        """Materialise pending entries that read local ``index`` before it
        is overwritten."""
        for i, (expr, used) in enumerate(self.sym):
            if index in used:
                self.sym[i] = (self.materialize(expr), frozenset())

    def flush(self) -> None:
        """Push all symbolic entries onto the real stack, in order."""
        if not self.sym:
            return
        if len(self.sym) == 1:
            self.emit(f"stack.append({self.sym[0][0]})")
        else:
            self.emit(f"stack.extend(({', '.join(e for e, _ in self.sym)}))")
        self.sym.clear()

    def addr(self, base: str, off: int) -> str:
        return f"{base} + {off}" if off else base

    def label_height(self, params: int) -> str:
        return f"len(stack) - {params}" if params else "len(stack)"

    # -- per-instruction lowering --------------------------------------
    def lower(self, ins) -> bool:
        """Lower one flat instruction; returns True if it emitted the
        block's return (i.e. it was a control transfer)."""
        op = ins[0]
        if op == "local.get":
            self.push(f"L[{ins[1]}]", frozenset((ins[1],)))
        elif op == "local.set":
            e, _ = self.pop()
            self.spill_local(ins[1])
            self.emit(f"L[{ins[1]}] = {e}")
        elif op == "local.tee":
            e, used = self.pop()
            self.spill_local(ins[1])
            if e.startswith("_t"):
                self.emit(f"L[{ins[1]}] = {e}")
                self.push(e, used)
            else:
                t = self.materialize(e)
                self.emit(f"L[{ins[1]}] = {t}")
                self.push(t, frozenset())
        elif op in CONST_OPS:
            k = ins[1]
            if isinstance(k, (float, bytes)):
                # Bind float/v128 objects instead of repr-ing them: exact
                # for every value including nan, -0.0 and inf, and keeps
                # 16-byte vector literals out of the generated source.
                self.push(self.bind(k))
            else:
                self.push(repr(k))
        elif op in BINOPS:
            b, bu = self.pop()
            a, au = self.pop()
            tpl = _INLINE_BINOPS.get(op)
            if tpl is not None:
                self.push(tpl(a, b), au | bu)
            elif op in _TRAPPING_OPS:
                self.push(self.materialize(f"{self.bind(BINOPS[op])}({a}, {b})"))
            else:
                self.push(f"{self.bind(BINOPS[op])}({a}, {b})", au | bu)
        elif op in UNOPS:
            a, au = self.pop()
            tpl = _INLINE_UNOPS.get(op)
            if tpl is not None:
                self.push(tpl(a), au)
            elif op in _TRAPPING_OPS:
                self.push(self.materialize(f"{self.bind(UNOPS[op])}({a})"))
            else:
                self.push(f"{self.bind(UNOPS[op])}({a})", au)
        elif op in LOAD_OPS:
            self.uses_mem = True
            a, _ = self.pop()
            self.push(self.materialize(
                f"{self.bind(TYPED_LOADS[op])}(mem, {self.addr(a, ins[1])})"
            ))
        elif op in STORE_OPS:
            self.uses_mem = True
            v, _ = self.pop()
            a, _ = self.pop()
            self.emit(
                f"{self.bind(TYPED_STORES[op])}(mem, {self.addr(a, ins[1])}, {v})"
            )
        elif op in SIMD_EXTRACT_OPS:
            a, au = self.pop()
            self.push(
                f"{self.bind(SIMD_EXTRACT_OPS[op])}({a}, {ins[1]})", au
            )
        elif op in SIMD_REPLACE_OPS:
            x, xu = self.pop()
            a, au = self.pop()
            self.push(
                f"{self.bind(SIMD_REPLACE_OPS[op])}({a}, {x}, {ins[1]})",
                au | xu,
            )
        elif op in ATOMIC_RMW_OPS:
            _ty, size, kind = ATOMIC_RMW_OPS[op]
            self.uses_mem = True
            v, _ = self.pop()
            a, _ = self.pop()
            self.push(self.materialize(
                f"mem.atomic_rmw({self.addr(a, ins[1])}, {v}, {size}, {kind!r})"
            ))
        elif op in ATOMIC_CMPXCHG_OPS:
            _ty, size = ATOMIC_CMPXCHG_OPS[op]
            self.uses_mem = True
            r, _ = self.pop()
            e, _ = self.pop()
            a, _ = self.pop()
            self.push(self.materialize(
                f"mem.atomic_cmpxchg({self.addr(a, ins[1])}, {e}, {r}, {size})"
            ))
        elif op == "memory.atomic.notify":
            self.uses_mem = True
            c, _ = self.pop()
            a, _ = self.pop()
            self.push(self.materialize(
                f"{self.bind(atomic_notify)}"
                f"(frame.inst, mem, {self.addr(a, ins[1])}, {c})"
            ))
        elif op == "memory.atomic.wait32":
            # Block ender with the call-style fuel handshake: the runtime
            # may park this guest thread inside the helper.
            self.uses_mem = True
            e, _ = self.pop()
            a, _ = self.pop()
            addr = self.materialize(self.addr(a, ins[1]))
            exp = e if e.startswith("_t") or e.isdigit() else self.materialize(e)
            self.flush()
            self.emit("inst = frame.inst")
            self.emit("inst._fuel = frame.fuel")
            self.emit("inst.instructions_executed += frame.executed")
            self.emit("frame.executed = 0")
            self.emit(
                f"stack.append({self.bind(atomic_wait32)}"
                f"(inst, mem, {addr}, {exp}))"
            )
            self.emit("frame.fuel = inst._fuel")
            self.emit(f"return {self.next_block}")
            return True
        elif op == "drop":
            if self.sym:
                self.sym.pop()
            else:
                self.emit("del stack[-1]")
        elif op == "select":
            c, cu = self.pop()
            b, bu = self.pop()
            a, au = self.pop()
            self.push(f"({a} if {c} else {b})", au | bu | cu)
        elif op == "global.get":
            self.uses_glb = True
            self.push(self.materialize(f"G[{ins[1]}].value"))
        elif op == "global.set":
            self.uses_glb = True
            e, _ = self.pop()
            self.emit(f"G[{ins[1]}].value = {e}")
        elif op == "memory.size":
            self.uses_mem = True
            self.push(self.materialize("mem.size_pages"))
        elif op == "memory.grow":
            self.uses_mem = True
            e, _ = self.pop()
            self.push(self.materialize(f"mem.grow({e}) & {_M32}"))
        elif op == "nop":
            pass
        elif op == "block":
            self.uses_lab = True
            self.flush()
            tgt = self.ctx.flat2t[ins[1] + 1]
            self.emit(f"lab.append(({tgt}, {ins[2]}, {self.label_height(ins[3])}))")
        elif op == "loop":
            self.uses_lab = True
            self.flush()
            tgt = self.ctx.flat2t[ins[1]]
            self.emit(f"lab.append(({tgt}, {ins[2]}, {self.label_height(ins[2])}))")
        elif op == "end":
            self.uses_lab = True
            self.emit("lab.pop()")
        elif op == "if":
            self.uses_lab = True
            c, _ = self.pop()
            self.flush()
            tgt = self.ctx.flat2t[ins[2] + 1]
            self.emit(f"lab.append(({tgt}, {ins[3]}, {self.label_height(ins[4])}))")
            self.emit(
                f"return {self.next_block} if {c} else {self.ctx.flat2t[ins[1]]}"
            )
            return True
        elif op == "else":
            self.flush()
            self.emit(f"return {self.ctx.flat2t[ins[1]]}")
            return True
        elif op == "br":
            self.uses_lab = True
            self.flush()
            self.emit(f"if len(lab) <= {ins[1]}: return -1")
            self.emit(f"return {self.bind(_do_branch)}(stack, lab, {ins[1]})")
            return True
        elif op == "br_if":
            self.uses_lab = True
            c, _ = self.pop()
            self.flush()
            self.emit(f"if {c}:")
            self.emit(f"    if len(lab) <= {ins[1]}: return -1")
            self.emit(f"    return {self.bind(_do_branch)}(stack, lab, {ins[1]})")
            self.emit(f"return {self.next_block}")
            return True
        elif op == "br_table":
            self.uses_lab = True
            idx, _ = self.pop()
            self.flush()
            depths = tuple(ins[1])
            self.emit(f"_i = {idx}")
            self.emit(
                f"_d = {self.bind(depths)}[_i] if _i < {len(depths)} else {ins[2]}"
            )
            self.emit("if len(lab) <= _d: return -1")
            self.emit(f"return {self.bind(_do_branch)}(stack, lab, _d)")
            return True
        elif op == "return":
            self.flush()
            self.emit("return -1")
            return True
        elif op == "unreachable":
            self.emit(
                f"raise {self.bind(UnreachableExecuted)}('unreachable executed')"
            )
            return True
        elif op == "call":
            n = len(self.ctx.module.func_type(ins[1]).params)
            self.emit("inst = frame.inst")
            self.emit("inst._fuel = frame.fuel")
            self.emit("inst.instructions_executed += frame.executed")
            self.emit("frame.executed = 0")
            if len(self.sym) >= n:
                # Arguments are still symbolic: pass them straight to the
                # callee without a round trip through the operand stack.
                args = "[" + ", ".join(
                    e for e, _ in self.sym[len(self.sym) - n:]
                ) + "]"
                del self.sym[len(self.sym) - n:]
                self.flush()
            else:
                self.flush()
                if n:
                    self.emit(f"_a = stack[-{n}:]")
                    self.emit(f"del stack[-{n}:]")
                    args = "_a"
                else:
                    args = "[]"
            self.emit(
                f"stack.extend(inst._call({ins[1]}, {args}, frame.depth + 1))"
            )
            self.emit("frame.fuel = inst._fuel")
            self.emit(f"return {self.next_block}")
            return True
        elif op == "call_indirect":
            # Rare and heavyweight: delegate to the single-op closure,
            # which performs the table/type checks and the fuel handshake.
            self.flush()
            sub = _b_call_indirect(ins, self.next_block, self.ctx)
            self.emit(f"return {self.bind(sub)}(stack, L, frame)")
            return True
        else:  # pragma: no cover - validation admits only known ops
            raise NotImplementedError(f"cannot thread opcode {op!r}")
        return False


def _compile_block(block_id, code, start, end, ctx, intern):
    """Generate source for one basic block closure named ``_blk<id>``."""
    bound: dict[int, str] = {}  # id(obj) -> local param name
    params: list[str] = []

    def bind(obj) -> str:
        key = id(obj)
        name = bound.get(key)
        if name is None:
            gname = intern(obj)
            name = f"_c{len(bound)}"
            bound[key] = name
            params.append(f"{name}={gname}")
        return name

    cost = end - start
    next_block = ctx.flat2t.get(end, -1)  # -1: the block ends in a transfer
    bc = _BlockCompiler(bind, ctx, next_block)
    ended = False
    for pc in range(start, end):
        ended = bc.lower(code[pc])
    if not ended:
        bc.flush()
        bc.emit(f"return {next_block}")

    # Subs are bound with the block's true successor so that, after a
    # refuel-hook preemption, the slow path can run the block to completion
    # and return the correct next threaded pc.
    subs = [_build_sub(code[pc], next_block, ctx) for pc in range(start, end)]
    slow_name = bind(_make_slow(subs))

    header = [
        f"def _blk{block_id}(stack, L, frame, {', '.join(params)}):",
        "    fuel = frame.fuel",
        "    if fuel is None:",
        f"        frame.executed += {cost}",
        f"    elif fuel >= {cost}:",
        f"        frame.fuel = fuel - {cost}",
        f"        frame.executed += {cost}",
        "    else:",
        f"        return {slow_name}(stack, L, frame)",
    ]
    if bc.uses_mem:
        header.append("    mem = frame.mem")
    if bc.uses_lab:
        header.append("    lab = frame.labels")
    if bc.uses_glb:
        header.append("    G = frame.glb")
    return "\n".join(header + ["    " + line for line in bc.lines])


def thread_function(fn, module) -> ThreadedCode:
    """Lower one flat-compiled function to closure-threaded block code."""
    code = fn.code
    n = len(code)
    targets = _static_branch_targets(code)
    leaders = sorted(_find_leaders(code, targets))
    flat2t = {flat_pc: block_id for block_id, flat_pc in enumerate(leaders)}
    ctx = _Ctx(flat2t, module)

    ns: dict = {}

    def intern(obj) -> str:
        name = f"_g{len(ns)}"
        ns[name] = obj
        return name

    sources = []
    costs = []
    mnemonics = []
    for block_id, start in enumerate(leaders):
        end = leaders[block_id + 1] if block_id + 1 < len(leaders) else n
        sources.append(_compile_block(block_id, code, start, end, ctx, intern))
        costs.append(end - start)
        mnemonics.append(f"blk@{start}+{end - start}")

    exec(compile("\n\n".join(sources), f"<threaded:{fn.name}>", "exec"), ns)
    ops = [ns[f"_blk{block_id}"] for block_id in range(len(leaders))]
    return ThreadedCode(ops, costs, mnemonics, n)
