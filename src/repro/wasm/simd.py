"""v128 lane kernels for the vector ISA.

A v128 value travels through the VM as an immutable 16-byte ``bytes``
string — interpretation-agnostic raw bits, exactly like the spec's v128.
Each lane-wise operator unpacks the bits under its shape (``i32x4`` or
``f64x2``), applies the scalar rule per lane, and repacks.

Two interchangeable kernel backends are provided:

* ``struct`` (default) — precompiled :class:`struct.Struct` codecs plus
  scalar Python arithmetic. At 16-byte width this beats NumPy ~3-4x:
  ``frombuffer``/``tobytes`` round-trip overhead dominates 2-4 lane math.
* ``numpy`` — NumPy element-wise kernels over ``frombuffer`` views. Kept
  both as the reference oracle for differential tests and for
  experimentation with wider vector shapes, selectable via the
  ``REPRO_SIMD_BACKEND`` environment variable.

Both backends are bit-identical on every op (a property test pins this),
so the choice is invisible to guests.
"""

from __future__ import annotations

import os
import struct
from typing import Callable

from .values import V128_ZERO, float_max, float_min

_I32X4 = struct.Struct("<4I")
_F64X2 = struct.Struct("<2d")
_I32X4_S = struct.Struct("<4i")

_M32 = 0xFFFFFFFF
_S32 = 0x80000000

#: Lanes per shape, used by validation to bound lane immediates.
LANE_COUNTS = {"i32x4": 4, "f64x2": 2}


def canon_v128(value) -> bytes:
    """Canonicalise a v128 immediate to 16 little-endian bytes.

    Accepts ``bytes``/``bytearray`` of length 16 or a non-negative int
    below 2**128 (the text format spells v128 constants as one wide hex
    integer).
    """
    if isinstance(value, (bytes, bytearray)):
        if len(value) != 16:
            raise ValueError(f"v128 constant must be 16 bytes, got {len(value)}")
        return bytes(value)
    if isinstance(value, int):
        if not 0 <= value < (1 << 128):
            raise ValueError("v128 constant out of 128-bit range")
        return value.to_bytes(16, "little")
    raise ValueError(f"cannot canonicalise {type(value).__name__} as v128")


def v128_to_int(value: bytes) -> int:
    """The text-format spelling of a v128 constant: one 128-bit integer."""
    return int.from_bytes(value, "little")


def i32x4(*lanes: int) -> bytes:
    """Build a v128 from four i32 lane values (test/bench convenience)."""
    return _I32X4.pack(*(v & _M32 for v in lanes))


def f64x2(*lanes: float) -> bytes:
    """Build a v128 from two f64 lane values."""
    return _F64X2.pack(*lanes)


def i32x4_lanes(value: bytes) -> tuple[int, ...]:
    """Split a v128 into its four unsigned i32 lanes."""
    return _I32X4.unpack(value)


def f64x2_lanes(value: bytes) -> tuple[float, ...]:
    """Split a v128 into its two f64 lanes."""
    return _F64X2.unpack(value)


# ----------------------------------------------------------------------
# struct backend
# ----------------------------------------------------------------------


def _s_i32x4_add(a: bytes, b: bytes) -> bytes:
    a0, a1, a2, a3 = _I32X4.unpack(a)
    b0, b1, b2, b3 = _I32X4.unpack(b)
    return _I32X4.pack(
        (a0 + b0) & _M32, (a1 + b1) & _M32, (a2 + b2) & _M32, (a3 + b3) & _M32
    )


def _s_i32x4_sub(a: bytes, b: bytes) -> bytes:
    a0, a1, a2, a3 = _I32X4.unpack(a)
    b0, b1, b2, b3 = _I32X4.unpack(b)
    return _I32X4.pack(
        (a0 - b0) & _M32, (a1 - b1) & _M32, (a2 - b2) & _M32, (a3 - b3) & _M32
    )


def _s_i32x4_mul(a: bytes, b: bytes) -> bytes:
    a0, a1, a2, a3 = _I32X4.unpack(a)
    b0, b1, b2, b3 = _I32X4.unpack(b)
    return _I32X4.pack(
        (a0 * b0) & _M32, (a1 * b1) & _M32, (a2 * b2) & _M32, (a3 * b3) & _M32
    )


def _s_i32x4_min_s(a: bytes, b: bytes) -> bytes:
    a0, a1, a2, a3 = _I32X4_S.unpack(a)
    b0, b1, b2, b3 = _I32X4_S.unpack(b)
    return _I32X4_S.pack(min(a0, b0), min(a1, b1), min(a2, b2), min(a3, b3))


def _s_i32x4_max_s(a: bytes, b: bytes) -> bytes:
    a0, a1, a2, a3 = _I32X4_S.unpack(a)
    b0, b1, b2, b3 = _I32X4_S.unpack(b)
    return _I32X4_S.pack(max(a0, b0), max(a1, b1), max(a2, b2), max(a3, b3))


def _s_f64x2_add(a: bytes, b: bytes) -> bytes:
    a0, a1 = _F64X2.unpack(a)
    b0, b1 = _F64X2.unpack(b)
    return _F64X2.pack(a0 + b0, a1 + b1)


def _s_f64x2_sub(a: bytes, b: bytes) -> bytes:
    a0, a1 = _F64X2.unpack(a)
    b0, b1 = _F64X2.unpack(b)
    return _F64X2.pack(a0 - b0, a1 - b1)


def _s_f64x2_mul(a: bytes, b: bytes) -> bytes:
    a0, a1 = _F64X2.unpack(a)
    b0, b1 = _F64X2.unpack(b)
    return _F64X2.pack(a0 * b0, a1 * b1)


def _s_f64x2_min(a: bytes, b: bytes) -> bytes:
    a0, a1 = _F64X2.unpack(a)
    b0, b1 = _F64X2.unpack(b)
    return _F64X2.pack(float_min(a0, b0), float_min(a1, b1))


def _s_f64x2_max(a: bytes, b: bytes) -> bytes:
    a0, a1 = _F64X2.unpack(a)
    b0, b1 = _F64X2.unpack(b)
    return _F64X2.pack(float_max(a0, b0), float_max(a1, b1))


def _s_i32x4_splat(x: int) -> bytes:
    x &= _M32
    return _I32X4.pack(x, x, x, x)


def _s_f64x2_splat(x: float) -> bytes:
    return _F64X2.pack(x, x)


def _s_i32x4_neg(a: bytes) -> bytes:
    a0, a1, a2, a3 = _I32X4.unpack(a)
    return _I32X4.pack((-a0) & _M32, (-a1) & _M32, (-a2) & _M32, (-a3) & _M32)


def _s_f64x2_neg(a: bytes) -> bytes:
    a0, a1 = _F64X2.unpack(a)
    return _F64X2.pack(-a0, -a1)


def _s_i32x4_extract(v: bytes, lane: int) -> int:
    return _I32X4.unpack(v)[lane]


def _s_f64x2_extract(v: bytes, lane: int) -> float:
    return _F64X2.unpack(v)[lane]


def _s_i32x4_replace(v: bytes, x: int, lane: int) -> bytes:
    lanes = list(_I32X4.unpack(v))
    lanes[lane] = x & _M32
    return _I32X4.pack(*lanes)


def _s_f64x2_replace(v: bytes, x: float, lane: int) -> bytes:
    lanes = list(_F64X2.unpack(v))
    lanes[lane] = x
    return _F64X2.pack(*lanes)


_STRUCT_BINOPS: dict[str, Callable] = {
    "i32x4.add": _s_i32x4_add,
    "i32x4.sub": _s_i32x4_sub,
    "i32x4.mul": _s_i32x4_mul,
    "i32x4.min_s": _s_i32x4_min_s,
    "i32x4.max_s": _s_i32x4_max_s,
    "f64x2.add": _s_f64x2_add,
    "f64x2.sub": _s_f64x2_sub,
    "f64x2.mul": _s_f64x2_mul,
    "f64x2.min": _s_f64x2_min,
    "f64x2.max": _s_f64x2_max,
}

_STRUCT_UNOPS: dict[str, Callable] = {
    "i32x4.splat": _s_i32x4_splat,
    "f64x2.splat": _s_f64x2_splat,
    "i32x4.neg": _s_i32x4_neg,
    "f64x2.neg": _s_f64x2_neg,
}

_STRUCT_EXTRACT: dict[str, Callable] = {
    "i32x4.extract_lane": _s_i32x4_extract,
    "f64x2.extract_lane": _s_f64x2_extract,
}

_STRUCT_REPLACE: dict[str, Callable] = {
    "i32x4.replace_lane": _s_i32x4_replace,
    "f64x2.replace_lane": _s_f64x2_replace,
}


# ----------------------------------------------------------------------
# numpy backend (reference oracle; selectable with REPRO_SIMD_BACKEND)
# ----------------------------------------------------------------------


def _numpy_tables():
    import numpy as np

    u32 = np.dtype("<u4")
    i32 = np.dtype("<i4")
    f64 = np.dtype("<f8")

    def _bin(dtype, fn):
        def kernel(a, b):
            with np.errstate(all="ignore"):
                out = fn(np.frombuffer(a, dtype), np.frombuffer(b, dtype))
            return out.astype(dtype, copy=False).tobytes()

        return kernel

    def _nan_aware(fn, picker):
        # wasm min/max propagate NaN; numpy's minimum/maximum do too.
        def kernel(a, b):
            x = np.frombuffer(a, f64)
            y = np.frombuffer(b, f64)
            with np.errstate(all="ignore"):
                out = picker(x, y)
                # Spec-style signed-zero handling: min(-0, +0) == -0 etc.
                both_zero = (x == 0) & (y == 0)
                if both_zero.any():
                    signs = np.signbit(x) | np.signbit(y) if fn == "min" else (
                        np.signbit(x) & np.signbit(y)
                    )
                    zeros = np.where(signs, -0.0, 0.0)
                    out = np.where(both_zero, zeros, out)
            return out.tobytes()

        return kernel

    binops = {
        "i32x4.add": _bin(u32, lambda a, b: a + b),
        "i32x4.sub": _bin(u32, lambda a, b: a - b),
        "i32x4.mul": _bin(u32, lambda a, b: a * b),
        "i32x4.min_s": _bin(i32, np.minimum),
        "i32x4.max_s": _bin(i32, np.maximum),
        "f64x2.add": _bin(f64, lambda a, b: a + b),
        "f64x2.sub": _bin(f64, lambda a, b: a - b),
        "f64x2.mul": _bin(f64, lambda a, b: a * b),
        "f64x2.min": _nan_aware("min", np.minimum),
        "f64x2.max": _nan_aware("max", np.maximum),
    }

    def _splat(dtype, lanes):
        def kernel(x):
            return np.full(lanes, x, dtype).tobytes()

        return kernel

    unops = {
        "i32x4.splat": lambda x: np.full(4, x & _M32, u32).tobytes(),
        "f64x2.splat": _splat(f64, 2),
        "i32x4.neg": lambda a: (
            (-np.frombuffer(a, u32)).astype(u32, copy=False).tobytes()
        ),
        "f64x2.neg": lambda a: (-np.frombuffer(a, f64)).tobytes(),
    }

    extract = {
        "i32x4.extract_lane": lambda v, lane: int(np.frombuffer(v, u32)[lane]),
        "f64x2.extract_lane": lambda v, lane: float(np.frombuffer(v, f64)[lane]),
    }

    def _replace(dtype, mask=None):
        def kernel(v, x, lane):
            arr = np.frombuffer(v, dtype).copy()
            arr[lane] = (x & _M32) if mask else x
            return arr.tobytes()

        return kernel

    replace = {
        "i32x4.replace_lane": _replace(u32, mask=True),
        "f64x2.replace_lane": _replace(f64),
    }
    return binops, unops, extract, replace


def make_tables(backend: str = "struct"):
    """Return ``(binops, unops, extract, replace)`` kernel tables."""
    if backend == "struct":
        return _STRUCT_BINOPS, _STRUCT_UNOPS, _STRUCT_EXTRACT, _STRUCT_REPLACE
    if backend == "numpy":
        try:
            return _numpy_tables()
        except ImportError:  # pragma: no cover - numpy is baked into the image
            return _STRUCT_BINOPS, _STRUCT_UNOPS, _STRUCT_EXTRACT, _STRUCT_REPLACE
    raise ValueError(f"unknown SIMD backend {backend!r}")


SIMD_BINOPS, SIMD_UNOPS, SIMD_EXTRACT_OPS, SIMD_REPLACE_OPS = make_tables(
    os.environ.get("REPRO_SIMD_BACKEND", "struct")
)

#: Every SIMD mnemonic, including the memory and const forms handled
#: elsewhere — used for profile roll-ups and the simd.ops metric.
SIMD_OPS = (
    frozenset(SIMD_BINOPS)
    | frozenset(SIMD_UNOPS)
    | frozenset(SIMD_EXTRACT_OPS)
    | frozenset(SIMD_REPLACE_OPS)
    | {"v128.const", "v128.load", "v128.store"}
)


__all__ = [
    "LANE_COUNTS",
    "SIMD_BINOPS",
    "SIMD_EXTRACT_OPS",
    "SIMD_OPS",
    "SIMD_REPLACE_OPS",
    "SIMD_UNOPS",
    "V128_ZERO",
    "canon_v128",
    "f64x2",
    "f64x2_lanes",
    "i32x4",
    "i32x4_lanes",
    "make_tables",
    "v128_to_int",
]
