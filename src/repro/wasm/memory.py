"""Linear memory with a page table, copy-on-write and shared-region mapping.

This is the mechanism behind two of the paper's central claims:

* **SFI memory safety** (§2.2): guest code addresses a single linear byte
  array starting at offset zero; every access is bounds-checked and traps
  with :class:`OutOfBoundsMemoryAccess` on violation.

* **Faaslet shared regions** (§3.3, Fig. 2): memory is organised as a table
  of 64 KiB pages, each a ``memoryview`` into some backing buffer. Mapping a
  shared region appends pages whose views alias a *common* backing
  ``bytearray``, so two Faaslets see each other's writes with genuine
  zero-copy semantics while each still addresses its own dense linear
  address space.

* **Proto-Faaslet restore** (§5.2): a snapshot freezes its pages; a restored
  memory initially aliases them read-only and copies a page only on first
  write (copy-on-write), which is what makes restores take microseconds
  rather than milliseconds.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass

from .errors import OutOfBoundsMemoryAccess, UnalignedAtomicAccess
from .types import MAX_PAGES, PAGE_SIZE, Limits, MemoryType

#: One process-wide lock serialising read-modify-write atomics. Guest
#: threads inside a Faaslet are cooperatively scheduled (never truly
#: concurrent), but shared regions can be mapped by several instances that
#: embedders may drive from different OS threads — a single global lock
#: makes cross-instance rmw on shared pages linearizable and is
#: uncontended (~no cost) everywhere else.
_ATOMIC_LOCK = threading.Lock()

#: One immutable all-zero page shared by every restored memory. Pages whose
#: digest is :data:`ZERO_DIGEST` are never shipped or stored; restores alias
#: this view copy-on-write (the software analogue of the kernel zero page).
_ZERO_BYTES = bytes(PAGE_SIZE)
ZERO_PAGE = memoryview(_ZERO_BYTES)

#: Digest of the all-zero page (the elision sentinel in manifests).
ZERO_DIGEST = hashlib.blake2b(_ZERO_BYTES, digest_size=16).hexdigest()


def page_digest(view: "bytes | bytearray | memoryview") -> str:
    """Content digest of one 64 KiB page (32 hex chars, blake2b-128).

    All-zero pages short-circuit to :data:`ZERO_DIGEST` via a memcmp-speed
    comparison — the common case for heap pages a guest grew but never
    touched — so zero-page elision costs no hashing.
    """
    if view == _ZERO_BYTES:
        return ZERO_DIGEST
    return hashlib.blake2b(view, digest_size=16).hexdigest()

_STRUCTS = {
    ("i32", 4): struct.Struct("<I"),
    ("i64", 8): struct.Struct("<Q"),
    ("f32", 4): struct.Struct("<f"),
    ("f64", 8): struct.Struct("<d"),
}

_U16 = struct.Struct("<H")
_I16 = struct.Struct("<h")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_U64 = struct.Struct("<Q")
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")


@dataclass(slots=True)
class Page:
    """One 64 KiB page of linear memory.

    ``view`` always has length :data:`PAGE_SIZE`. ``writable`` is False for
    copy-on-write pages (they alias a frozen snapshot and must be copied
    before the first store). ``shared`` marks pages that alias a
    :class:`~repro.faaslet.sharing.SharedRegion` backing buffer; these are
    never copied, so writes propagate to every mapper.

    A shared page may additionally be *write-protected* for dirty tracking
    (``writable`` False with ``notify`` set): the first store after each
    protection cycle takes the slow path, invokes ``notify`` — which marks
    the page's byte range dirty in the owning region — and un-protects the
    page, the software analogue of Faasm's ``mprotect``-based dirty-page
    tracking. Subsequent stores run at full speed until the next
    re-protection (state push).
    """

    view: memoryview
    writable: bool
    shared: bool
    notify: object = None


def _fresh_page() -> Page:
    return Page(memoryview(bytearray(PAGE_SIZE)), writable=True, shared=False)


def _page_notifier(on_write, start: int, end: int):
    """Bind one page's region byte range into a zero-argument fault hook."""

    def notify() -> None:
        on_write(start, end)

    return notify


class LinearMemory:
    """A growable, bounds-checked linear memory backed by a page table."""

    def __init__(self, memtype: MemoryType | None = None):
        self.memtype = memtype or MemoryType(Limits(1))
        self.pages: list[Page] = [
            _fresh_page() for _ in range(self.memtype.limits.minimum)
        ]
        #: Number of pages copied due to COW faults (metric for §5.2).
        self.cow_faults = 0

    # ------------------------------------------------------------------
    # Size management
    # ------------------------------------------------------------------
    @property
    def size_pages(self) -> int:
        return len(self.pages)

    @property
    def size_bytes(self) -> int:
        return len(self.pages) * PAGE_SIZE

    def grow(self, delta_pages: int) -> int:
        """Grow by ``delta_pages``; returns the old size in pages, or -1 if
        the maximum (or the 32-bit address space) would be exceeded."""
        if delta_pages < 0:
            return -1
        new_size = len(self.pages) + delta_pages
        maximum = self.memtype.limits.maximum
        if maximum is not None and new_size > maximum:
            return -1
        if new_size > MAX_PAGES:
            return -1
        old = len(self.pages)
        self.pages.extend(_fresh_page() for _ in range(delta_pages))
        return old

    # ------------------------------------------------------------------
    # Shared regions and copy-on-write
    # ------------------------------------------------------------------
    def map_shared_pages(self, backing: bytearray, on_write=None) -> int:
        """Map ``backing`` (a multiple of PAGE_SIZE) as shared pages appended
        to the end of memory. Returns the base address of the mapping.

        This implements the remap step of §3.3: the function's linear byte
        array is extended and the new pages alias common process memory.

        With ``on_write`` (a callable taking the ``(start, end)`` byte range
        of a page *within the region*), the mapped pages start
        write-protected: the first guest store to each page reports that
        page's range dirty and unprotects it — the dirty-page tracking the
        local state tier uses for delta pushes (§4.2).
        """
        if len(backing) % PAGE_SIZE != 0:
            raise ValueError("shared region size must be a multiple of PAGE_SIZE")
        n_pages = len(backing) // PAGE_SIZE
        maximum = self.memtype.limits.maximum
        if maximum is not None and len(self.pages) + n_pages > maximum:
            raise MemoryError("shared mapping exceeds memory maximum")
        base = len(self.pages) * PAGE_SIZE
        whole = memoryview(backing)
        for i in range(n_pages):
            view = whole[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
            if on_write is None:
                self.pages.append(Page(view, writable=True, shared=True))
            else:
                start = i * PAGE_SIZE
                notify = _page_notifier(on_write, start, start + PAGE_SIZE)
                self.pages.append(
                    Page(view, writable=False, shared=True, notify=notify)
                )
        return base

    def freeze_pages(self) -> list[memoryview]:
        """Make every private page read-only and return the page views.

        Used when taking a Proto-Faaslet snapshot: the snapshot and any
        memory restored from it share the frozen pages until a write occurs.
        Shared-region pages are excluded (snapshots capture private state).
        """
        views: list[memoryview] = []
        for page in self.pages:
            if page.shared:
                raise ValueError("cannot snapshot memory with mapped shared regions")
            page.writable = False
            views.append(page.view)
        return views

    def freeze_with_digests(self) -> tuple[list[memoryview], list[str]]:
        """Freeze every private page and return ``(views, digests)``.

        The snapshot data plane's capture entry point: digests are computed
        here, at freeze time, while the pages are known-quiescent, so the
        manifest's content addresses are stable for the snapshot's lifetime
        (frozen pages are copy-on-write — writers materialise a private
        copy, never mutate the frozen bytes).
        """
        views = self.freeze_pages()
        return views, [page_digest(v) for v in views]

    @classmethod
    def from_frozen_pages(
        cls, views: list[memoryview], memtype: MemoryType
    ) -> "LinearMemory":
        """Build a memory whose pages alias ``views`` copy-on-write."""
        mem = cls.__new__(cls)
        mem.memtype = memtype
        mem.pages = [Page(v, writable=False, shared=False) for v in views]
        mem.cow_faults = 0
        return mem

    def _materialise(self, page_idx: int) -> Page:
        """Handle a write to a protected page (a "page fault").

        COW pages are copied before the write. Write-protected *shared*
        pages are never copied: the fault marks the page dirty in its
        region (via ``notify``) and lifts the protection, after which
        stores hit the shared backing directly until re-protection.
        """
        page = self.pages[page_idx]
        if page.shared:
            page.writable = True
            if page.notify is not None:
                page.notify()
            return page
        fresh = memoryview(bytearray(page.view))
        page = Page(fresh, writable=True, shared=False)
        self.pages[page_idx] = page
        self.cow_faults += 1
        return page

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------
    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > len(self.pages) * PAGE_SIZE:
            raise OutOfBoundsMemoryAccess(addr, size, len(self.pages) * PAGE_SIZE)

    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``addr``."""
        self._check(addr, size)
        page_idx, offset = divmod(addr, PAGE_SIZE)
        if offset + size <= PAGE_SIZE:
            return bytes(self.pages[page_idx].view[offset : offset + size])
        chunks = []
        remaining = size
        while remaining > 0:
            take = min(PAGE_SIZE - offset, remaining)
            chunks.append(bytes(self.pages[page_idx].view[offset : offset + take]))
            remaining -= take
            page_idx += 1
            offset = 0
        return b"".join(chunks)

    def read_into(self, addr: int, dest: memoryview) -> None:
        """Copy ``len(dest)`` bytes starting at ``addr`` straight into
        ``dest`` (page by page, no intermediate ``bytes`` objects) — the
        zero-copy path the state syscalls use to move guest data into a
        shared region."""
        size = len(dest)
        self._check(addr, size)
        page_idx, offset = divmod(addr, PAGE_SIZE)
        pos = 0
        while pos < size:
            take = min(PAGE_SIZE - offset, size - pos)
            dest[pos : pos + take] = self.pages[page_idx].view[offset : offset + take]
            pos += take
            page_idx += 1
            offset = 0

    def write(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        """Write ``data`` starting at ``addr``."""
        size = len(data)
        self._check(addr, size)
        page_idx, offset = divmod(addr, PAGE_SIZE)
        data = memoryview(data)
        pos = 0
        while pos < size:
            page = self.pages[page_idx]
            if not page.writable:
                page = self._materialise(page_idx)
            take = min(PAGE_SIZE - offset, size - pos)
            page.view[offset : offset + take] = data[pos : pos + take]
            pos += take
            page_idx += 1
            offset = 0

    def fill(self, addr: int, value: int, size: int) -> None:
        """Set ``size`` bytes starting at ``addr`` to ``value``."""
        self.write(addr, bytes([value & 0xFF]) * size)

    def read_cstring(self, addr: int, max_len: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string (for host-interface paths)."""
        out = bytearray()
        while len(out) < max_len:
            b = self.read(addr + len(out), 1)
            if b == b"\x00":
                return bytes(out)
            out += b
        raise OutOfBoundsMemoryAccess(addr, max_len, self.size_bytes)

    # ------------------------------------------------------------------
    # Typed access (used by the interpreter's load/store ops)
    # ------------------------------------------------------------------
    def load_int(self, addr: int, size: int, signed: bool) -> int:
        self._check(addr, size)
        page_idx, offset = divmod(addr, PAGE_SIZE)
        if offset + size <= PAGE_SIZE:
            raw = self.pages[page_idx].view[offset : offset + size]
            value = int.from_bytes(raw, "little", signed=signed)
        else:
            value = int.from_bytes(self.read(addr, size), "little", signed=signed)
        return value

    def store_int(self, addr: int, value: int, size: int) -> None:
        self._check(addr, size)
        page_idx, offset = divmod(addr, PAGE_SIZE)
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if offset + size <= PAGE_SIZE:
            page = self.pages[page_idx]
            if not page.writable:
                page = self._materialise(page_idx)
            page.view[offset : offset + size] = data
        else:
            self.write(addr, data)

    def load_float(self, addr: int, size: int) -> float:
        self._check(addr, size)
        st = _STRUCTS[("f32", 4)] if size == 4 else _STRUCTS[("f64", 8)]
        page_idx, offset = divmod(addr, PAGE_SIZE)
        if offset + size <= PAGE_SIZE:
            return st.unpack_from(self.pages[page_idx].view, offset)[0]
        return st.unpack(self.read(addr, size))[0]

    def store_float(self, addr: int, value: float, size: int) -> None:
        self._check(addr, size)
        st = _STRUCTS[("f32", 4)] if size == 4 else _STRUCTS[("f64", 8)]
        page_idx, offset = divmod(addr, PAGE_SIZE)
        if offset + size <= PAGE_SIZE:
            page = self.pages[page_idx]
            if not page.writable:
                page = self._materialise(page_idx)
            st.pack_into(page.view, offset, value)
        else:
            self.write(addr, st.pack(value))

    # ------------------------------------------------------------------
    # Contiguous-page fast paths (threaded-tier API)
    # ------------------------------------------------------------------
    # Each accessor handles the common case — a well-aligned access that
    # falls inside a single page — with one divmod, one bounds comparison
    # and a pre-compiled struct (un)packer, and falls back to the generic
    # bounds-checked path for page-straddling or out-of-range addresses
    # (which re-raises :class:`OutOfBoundsMemoryAccess` with the exact
    # semantics of the reference interpreter). Values are canonical: loads
    # return unsigned ints / Python floats, stores accept canonical values.

    def load_i32(self, addr: int) -> int:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 4 and page_idx < len(self.pages):
                return _U32.unpack_from(self.pages[page_idx].view, offset)[0]
        return self.load_int(addr, 4, False)

    def load_i64(self, addr: int) -> int:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 8 and page_idx < len(self.pages):
                return _U64.unpack_from(self.pages[page_idx].view, offset)[0]
        return self.load_int(addr, 8, False)

    def load_f32(self, addr: int) -> float:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 4 and page_idx < len(self.pages):
                return _F32.unpack_from(self.pages[page_idx].view, offset)[0]
        return self.load_float(addr, 4)

    def load_f64(self, addr: int) -> float:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 8 and page_idx < len(self.pages):
                return _F64.unpack_from(self.pages[page_idx].view, offset)[0]
        return self.load_float(addr, 8)

    def load_i32_8s(self, addr: int) -> int:
        if 0 <= addr < len(self.pages) * PAGE_SIZE:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            b = self.pages[page_idx].view[offset]
            return b if b < 0x80 else 0xFFFFFF00 + b
        return self.load_int(addr, 1, True) & 0xFFFFFFFF

    def load_i32_8u(self, addr: int) -> int:
        if 0 <= addr < len(self.pages) * PAGE_SIZE:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            return self.pages[page_idx].view[offset]
        return self.load_int(addr, 1, False)

    def load_i32_16s(self, addr: int) -> int:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 2 and page_idx < len(self.pages):
                return _I16.unpack_from(self.pages[page_idx].view, offset)[0] & 0xFFFFFFFF
        return self.load_int(addr, 2, True) & 0xFFFFFFFF

    def load_i32_16u(self, addr: int) -> int:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 2 and page_idx < len(self.pages):
                return _U16.unpack_from(self.pages[page_idx].view, offset)[0]
        return self.load_int(addr, 2, False)

    def load_i64_32s(self, addr: int) -> int:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 4 and page_idx < len(self.pages):
                value = _I32.unpack_from(self.pages[page_idx].view, offset)[0]
                return value & 0xFFFFFFFFFFFFFFFF
        return self.load_int(addr, 4, True) & 0xFFFFFFFFFFFFFFFF

    def load_i64_32u(self, addr: int) -> int:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 4 and page_idx < len(self.pages):
                return _U32.unpack_from(self.pages[page_idx].view, offset)[0]
        return self.load_int(addr, 4, False)

    def store_i32(self, addr: int, value: int) -> None:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 4 and page_idx < len(self.pages):
                page = self.pages[page_idx]
                if page.writable:
                    _U32.pack_into(page.view, offset, value)
                    return
        self.store_int(addr, value, 4)

    def store_i64(self, addr: int, value: int) -> None:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 8 and page_idx < len(self.pages):
                page = self.pages[page_idx]
                if page.writable:
                    _U64.pack_into(page.view, offset, value)
                    return
        self.store_int(addr, value, 8)

    def store_f32(self, addr: int, value: float) -> None:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 4 and page_idx < len(self.pages):
                page = self.pages[page_idx]
                if page.writable:
                    _F32.pack_into(page.view, offset, value)
                    return
        self.store_float(addr, value, 4)

    def store_f64(self, addr: int, value: float) -> None:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 8 and page_idx < len(self.pages):
                page = self.pages[page_idx]
                if page.writable:
                    _F64.pack_into(page.view, offset, value)
                    return
        self.store_float(addr, value, 8)

    def store_i32_8(self, addr: int, value: int) -> None:
        if 0 <= addr < len(self.pages) * PAGE_SIZE:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            page = self.pages[page_idx]
            if page.writable:
                page.view[offset] = value & 0xFF
                return
        self.store_int(addr, value, 1)

    def store_i32_16(self, addr: int, value: int) -> None:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 2 and page_idx < len(self.pages):
                page = self.pages[page_idx]
                if page.writable:
                    _U16.pack_into(page.view, offset, value & 0xFFFF)
                    return
        self.store_int(addr, value, 2)

    def store_i64_32(self, addr: int, value: int) -> None:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 4 and page_idx < len(self.pages):
                page = self.pages[page_idx]
                if page.writable:
                    _U32.pack_into(page.view, offset, value & 0xFFFFFFFF)
                    return
        self.store_int(addr, value, 4)

    def load_v128(self, addr: int) -> bytes:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 16 and page_idx < len(self.pages):
                return bytes(self.pages[page_idx].view[offset : offset + 16])
        self._check(addr, 16)
        return self.read(addr, 16)

    def store_v128(self, addr: int, value: bytes) -> None:
        if addr >= 0:
            page_idx, offset = divmod(addr, PAGE_SIZE)
            if offset <= PAGE_SIZE - 16 and page_idx < len(self.pages):
                page = self.pages[page_idx]
                if page.writable:
                    page.view[offset : offset + 16] = value
                    return
        self._check(addr, 16)
        self.write(addr, value)

    # ------------------------------------------------------------------
    # Atomics (sequentially consistent; unaligned accesses trap)
    # ------------------------------------------------------------------
    def _check_aligned(self, addr: int, size: int) -> None:
        if addr % size:
            raise UnalignedAtomicAccess(addr, size)

    def atomic_load_i32(self, addr: int) -> int:
        self._check_aligned(addr, 4)
        return self.load_i32(addr)

    def atomic_load_i64(self, addr: int) -> int:
        self._check_aligned(addr, 8)
        return self.load_i64(addr)

    def atomic_store_i32(self, addr: int, value: int) -> None:
        self._check_aligned(addr, 4)
        self.store_i32(addr, value)

    def atomic_store_i64(self, addr: int, value: int) -> None:
        self._check_aligned(addr, 8)
        self.store_i64(addr, value)

    def atomic_rmw(self, addr: int, operand: int, size: int, kind: str) -> int:
        """Atomically apply ``kind`` at ``addr``; returns the old value.

        The bounds/alignment checks run *before* the lock is taken so traps
        cannot leave it held.
        """
        self._check_aligned(addr, size)
        self._check(addr, size)
        mask = (1 << (8 * size)) - 1
        with _ATOMIC_LOCK:
            old = self.load_int(addr, size, False)
            if kind == "add":
                new = (old + operand) & mask
            elif kind == "sub":
                new = (old - operand) & mask
            elif kind == "and":
                new = old & operand
            elif kind == "or":
                new = old | operand
            elif kind == "xor":
                new = old ^ operand
            elif kind == "xchg":
                new = operand & mask
            else:  # pragma: no cover - table-driven callers
                raise ValueError(f"unknown rmw kind {kind!r}")
            self.store_int(addr, new, size)
        return old

    def atomic_cmpxchg(
        self, addr: int, expected: int, replacement: int, size: int
    ) -> int:
        """Atomic compare-exchange; returns the value observed at ``addr``."""
        self._check_aligned(addr, size)
        self._check(addr, size)
        with _ATOMIC_LOCK:
            old = self.load_int(addr, size, False)
            if old == expected:
                self.store_int(addr, replacement, size)
        return old

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_private_bytes(self) -> int:
        """Bytes of private memory this instance uniquely owns (RSS-like).

        COW pages still aliasing a snapshot and shared-region pages are not
        counted, mirroring how PSS/RSS differ for containers in Tab. 3.
        """
        return sum(
            PAGE_SIZE for p in self.pages if p.writable and not p.shared
        )


#: op mnemonic -> unbound fast-path accessor, consumed by the threaded
#: code generator (closures capture the function once, at compile time).
TYPED_LOADS = {
    "i32.load": LinearMemory.load_i32,
    "i64.load": LinearMemory.load_i64,
    "f32.load": LinearMemory.load_f32,
    "f64.load": LinearMemory.load_f64,
    "i32.load8_s": LinearMemory.load_i32_8s,
    "i32.load8_u": LinearMemory.load_i32_8u,
    "i32.load16_s": LinearMemory.load_i32_16s,
    "i32.load16_u": LinearMemory.load_i32_16u,
    "i64.load32_s": LinearMemory.load_i64_32s,
    "i64.load32_u": LinearMemory.load_i64_32u,
    "v128.load": LinearMemory.load_v128,
    "i32.atomic.load": LinearMemory.atomic_load_i32,
    "i64.atomic.load": LinearMemory.atomic_load_i64,
}

TYPED_STORES = {
    "i32.store": LinearMemory.store_i32,
    "i64.store": LinearMemory.store_i64,
    "f32.store": LinearMemory.store_f32,
    "f64.store": LinearMemory.store_f64,
    "i32.store8": LinearMemory.store_i32_8,
    "i32.store16": LinearMemory.store_i32_16,
    "i64.store32": LinearMemory.store_i64_32,
    "v128.store": LinearMemory.store_v128,
    "i32.atomic.store": LinearMemory.atomic_store_i32,
    "i64.atomic.store": LinearMemory.atomic_store_i64,
}
