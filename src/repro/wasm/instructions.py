"""Instruction set of the virtual ISA.

Instructions are represented as immutable :class:`Instr` nodes. Structured
control (``block``, ``loop``, ``if``) nests child instruction sequences
inside the node; the code-generation pass (:mod:`repro.wasm.codegen`)
flattens this into linear code with resolved branch targets, mirroring the
paper's trusted code-generation phase (§3.4).

The module also defines static typing metadata (:data:`INSTR_SIGS`) consumed
by the validator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import F32, F64, I32, I64, V128, ValType


@dataclass(frozen=True)
class Instr:
    """A single instruction: an opcode mnemonic plus immediate arguments."""

    op: str
    args: tuple = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.args:
            return self.op
        return f"{self.op} {' '.join(map(repr, self.args))}"


@dataclass(frozen=True)
class BlockType:
    """Result typing of a structured control block.

    Like post-MVP WebAssembly we allow parameters as well as results, which
    the minilang compiler uses for expression-carrying blocks.
    """

    params: tuple[ValType, ...] = ()
    results: tuple[ValType, ...] = ()


EMPTY_BLOCK = BlockType()


def _binops(prefix: str, ty: ValType, names: list[str]) -> dict:
    return {f"{prefix}.{n}": ((ty, ty), (ty,)) for n in names}


def _relops(prefix: str, ty: ValType, names: list[str]) -> dict:
    return {f"{prefix}.{n}": ((ty, ty), (I32,)) for n in names}


def _unops(prefix: str, ty: ValType, names: list[str]) -> dict:
    return {f"{prefix}.{n}": ((ty,), (ty,)) for n in names}


_INT_BIN = [
    "add", "sub", "mul", "div_s", "div_u", "rem_s", "rem_u",
    "and", "or", "xor", "shl", "shr_s", "shr_u", "rotl", "rotr",
]
_INT_REL = ["eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u", "ge_s", "ge_u"]
_INT_UN = ["clz", "ctz", "popcnt"]
_FLT_BIN = ["add", "sub", "mul", "div", "min", "max", "copysign"]
_FLT_REL = ["eq", "ne", "lt", "gt", "le", "ge"]
_FLT_UN = ["abs", "neg", "sqrt", "ceil", "floor", "trunc", "nearest"]

#: op -> ((pop types...), (push types...)) for monomorphic instructions.
INSTR_SIGS: dict[str, tuple[tuple[ValType, ...], tuple[ValType, ...]]] = {}
INSTR_SIGS.update(_binops("i32", I32, _INT_BIN))
INSTR_SIGS.update(_binops("i64", I64, _INT_BIN))
INSTR_SIGS.update(_relops("i32", I32, _INT_REL))
INSTR_SIGS.update(_relops("i64", I64, _INT_REL))
INSTR_SIGS.update(_unops("i32", I32, _INT_UN))
INSTR_SIGS.update(_unops("i64", I64, _INT_UN))
INSTR_SIGS.update(_binops("f32", F32, _FLT_BIN))
INSTR_SIGS.update(_binops("f64", F64, _FLT_BIN))
INSTR_SIGS.update(_relops("f32", F32, _FLT_REL))
INSTR_SIGS.update(_relops("f64", F64, _FLT_REL))
INSTR_SIGS.update(_unops("f32", F32, _FLT_UN))
INSTR_SIGS.update(_unops("f64", F64, _FLT_UN))
INSTR_SIGS.update(
    {
        "i32.eqz": ((I32,), (I32,)),
        "i64.eqz": ((I64,), (I32,)),
        # Conversions.
        "i32.wrap_i64": ((I64,), (I32,)),
        "i64.extend_i32_s": ((I32,), (I64,)),
        "i64.extend_i32_u": ((I32,), (I64,)),
        "f32.convert_i32_s": ((I32,), (F32,)),
        "f32.convert_i32_u": ((I32,), (F32,)),
        "f32.convert_i64_s": ((I64,), (F32,)),
        "f32.convert_i64_u": ((I64,), (F32,)),
        "f64.convert_i32_s": ((I32,), (F64,)),
        "f64.convert_i32_u": ((I32,), (F64,)),
        "f64.convert_i64_s": ((I64,), (F64,)),
        "f64.convert_i64_u": ((I64,), (F64,)),
        "i32.trunc_f32_s": ((F32,), (I32,)),
        "i32.trunc_f32_u": ((F32,), (I32,)),
        "i32.trunc_f64_s": ((F64,), (I32,)),
        "i32.trunc_f64_u": ((F64,), (I32,)),
        "i64.trunc_f32_s": ((F32,), (I64,)),
        "i64.trunc_f32_u": ((F32,), (I64,)),
        "i64.trunc_f64_s": ((F64,), (I64,)),
        "i64.trunc_f64_u": ((F64,), (I64,)),
        "f32.demote_f64": ((F64,), (F32,)),
        "f64.promote_f32": ((F32,), (F64,)),
        "i32.reinterpret_f32": ((F32,), (I32,)),
        "f32.reinterpret_i32": ((I32,), (F32,)),
        "i64.reinterpret_f64": ((F64,), (I64,)),
        "f64.reinterpret_i64": ((I64,), (F64,)),
        # Memory operators (address popped as i32; offset is an immediate).
        "i32.load": ((I32,), (I32,)),
        "i64.load": ((I32,), (I64,)),
        "f32.load": ((I32,), (F32,)),
        "f64.load": ((I32,), (F64,)),
        "i32.load8_s": ((I32,), (I32,)),
        "i32.load8_u": ((I32,), (I32,)),
        "i32.load16_s": ((I32,), (I32,)),
        "i32.load16_u": ((I32,), (I32,)),
        "i64.load32_s": ((I32,), (I64,)),
        "i64.load32_u": ((I32,), (I64,)),
        "i32.store": ((I32, I32), ()),
        "i64.store": ((I32, I64), ()),
        "f32.store": ((I32, F32), ()),
        "f64.store": ((I32, F64), ()),
        "i32.store8": ((I32, I32), ()),
        "i32.store16": ((I32, I32), ()),
        "i64.store32": ((I32, I64), ()),
        "memory.size": ((), (I32,)),
        "memory.grow": ((I32,), (I32,)),
        "nop": ((), ()),
    }
)

# -- vector ISA (v128, i32x4/f64x2 lane shapes) -------------------------------

_SIMD_I32X4_BIN = ["add", "sub", "mul", "min_s", "max_s"]
_SIMD_F64X2_BIN = ["add", "sub", "mul", "min", "max"]

INSTR_SIGS.update(_binops("i32x4", V128, _SIMD_I32X4_BIN))
INSTR_SIGS.update(_binops("f64x2", V128, _SIMD_F64X2_BIN))
INSTR_SIGS.update(
    {
        "i32x4.neg": ((V128,), (V128,)),
        "f64x2.neg": ((V128,), (V128,)),
        "i32x4.splat": ((I32,), (V128,)),
        "f64x2.splat": ((F64,), (V128,)),
        "i32x4.extract_lane": ((V128,), (I32,)),
        "f64x2.extract_lane": ((V128,), (F64,)),
        "i32x4.replace_lane": ((V128, I32), (V128,)),
        "f64x2.replace_lane": ((V128, F64), (V128,)),
        "v128.load": ((I32,), (V128,)),
        "v128.store": ((I32, V128), ()),
    }
)

#: Lane-indexed SIMD ops: mnemonic -> lane count its immediate must respect.
SIMD_LANE_IMM_OPS = {
    "i32x4.extract_lane": 4,
    "i32x4.replace_lane": 4,
    "f64x2.extract_lane": 2,
    "f64x2.replace_lane": 2,
}

# -- shared-memory atomics ----------------------------------------------------

_RMW_KINDS = ["add", "sub", "and", "or", "xor", "xchg"]

#: Atomic read-modify-write: op -> (value type, access size, rmw kind).
ATOMIC_RMW_OPS: dict[str, tuple[ValType, int, str]] = {}
for _kind in _RMW_KINDS:
    ATOMIC_RMW_OPS[f"i32.atomic.rmw.{_kind}"] = (I32, 4, _kind)
    ATOMIC_RMW_OPS[f"i64.atomic.rmw.{_kind}"] = (I64, 8, _kind)

#: Atomic compare-exchange: op -> (value type, access size).
ATOMIC_CMPXCHG_OPS: dict[str, tuple[ValType, int]] = {
    "i32.atomic.rmw.cmpxchg": (I32, 4),
    "i64.atomic.rmw.cmpxchg": (I64, 8),
}

#: Futex-style ops over linear memory (offset immediate like loads).
ATOMIC_WAIT_NOTIFY_OPS: dict[str, tuple[int, int]] = {
    # op -> (access size, operand count besides the address)
    "memory.atomic.wait32": (4, 1),
    "memory.atomic.notify": (4, 1),
}

for _op, (_ty, _size, _kind) in ATOMIC_RMW_OPS.items():
    INSTR_SIGS[_op] = ((I32, _ty), (_ty,))
for _op, (_ty, _size) in ATOMIC_CMPXCHG_OPS.items():
    INSTR_SIGS[_op] = ((I32, _ty, _ty), (_ty,))
INSTR_SIGS["memory.atomic.wait32"] = ((I32, I32), (I32,))
INSTR_SIGS["memory.atomic.notify"] = ((I32, I32), (I32,))
INSTR_SIGS["i32.atomic.load"] = ((I32,), (I32,))
INSTR_SIGS["i64.atomic.load"] = ((I32,), (I64,))
INSTR_SIGS["i32.atomic.store"] = ((I32, I32), ())
INSTR_SIGS["i64.atomic.store"] = ((I32, I64), ())

#: (kind, size_bytes, signed) metadata for memory instructions.
LOAD_OPS: dict[str, tuple[ValType, int, bool]] = {
    "i32.load": (I32, 4, False),
    "i64.load": (I64, 8, False),
    "f32.load": (F32, 4, False),
    "f64.load": (F64, 8, False),
    "i32.load8_s": (I32, 1, True),
    "i32.load8_u": (I32, 1, False),
    "i32.load16_s": (I32, 2, True),
    "i32.load16_u": (I32, 2, False),
    "i64.load32_s": (I64, 4, True),
    "i64.load32_u": (I64, 4, False),
    "v128.load": (V128, 16, False),
    "i32.atomic.load": (I32, 4, False),
    "i64.atomic.load": (I64, 8, False),
}

STORE_OPS: dict[str, tuple[ValType, int]] = {
    "i32.store": (I32, 4),
    "i64.store": (I64, 8),
    "f32.store": (F32, 4),
    "f64.store": (F64, 8),
    "i32.store8": (I32, 1),
    "i32.store16": (I32, 2),
    "i64.store32": (I64, 4),
    "v128.store": (V128, 16),
    "i32.atomic.store": (I32, 4),
    "i64.atomic.store": (I64, 8),
}

CONST_OPS: dict[str, ValType] = {
    "i32.const": I32,
    "i64.const": I64,
    "f32.const": F32,
    "f64.const": F64,
    "v128.const": V128,
}

#: Every atomic mnemonic (sequentially-consistent accesses; unaligned traps).
ATOMIC_OPS = (
    frozenset(ATOMIC_RMW_OPS)
    | frozenset(ATOMIC_CMPXCHG_OPS)
    | frozenset(ATOMIC_WAIT_NOTIFY_OPS)
    | {"i32.atomic.load", "i64.atomic.load", "i32.atomic.store", "i64.atomic.store"}
)

#: Ops that carry a static byte-offset immediate over linear memory.
MEMARG_OPS = (
    frozenset(LOAD_OPS)
    | frozenset(STORE_OPS)
    | frozenset(ATOMIC_RMW_OPS)
    | frozenset(ATOMIC_CMPXCHG_OPS)
    | frozenset(ATOMIC_WAIT_NOTIFY_OPS)
)

#: Instructions requiring bespoke validator handling.
CONTROL_OPS = {
    "block", "loop", "if", "br", "br_if", "br_table", "return",
    "call", "call_indirect", "unreachable",
    "drop", "select", "local.get", "local.set", "local.tee",
    "global.get", "global.set",
}

ALL_OPS = set(INSTR_SIGS) | set(CONST_OPS) | CONTROL_OPS

_CONTROL_FAMILY = frozenset(
    {"block", "loop", "if", "else", "end", "br", "br_if", "br_table",
     "return", "call", "call_indirect", "unreachable", "nop", "drop",
     "select"}
)


def op_family(op: str) -> str:
    """Coarse opcode family for dispatch-profile rollups.

    Families: ``simd`` (v128 values, lane ops, vector loads/stores),
    ``atomic`` (rmw/cmpxchg/wait/notify and atomic accesses), ``memory``
    (plain loads/stores, size/grow), ``var`` (locals/globals), ``const``,
    ``control`` and ``numeric`` (everything else: scalar arithmetic,
    comparisons, conversions).
    """
    if op.startswith(("v128", "i32x4.", "f64x2.")):
        return "simd"
    if ".atomic." in op or op.startswith("memory.atomic."):
        return "atomic"
    if op.startswith(("local.", "global.")):
        return "var"
    if ".load" in op or ".store" in op or op in ("memory.size", "memory.grow"):
        return "memory"
    if op in CONST_OPS:
        return "const"
    if op in _CONTROL_FAMILY:
        return "control"
    return "numeric"


def instr(op: str, *args) -> Instr:
    """Convenience constructor that checks the mnemonic exists."""
    if op not in ALL_OPS:
        raise ValueError(f"unknown instruction {op!r}")
    return Instr(op, tuple(args))
