"""Futex-style wait/notify semantics shared by both execution tiers.

``memory.atomic.wait32`` / ``memory.atomic.notify`` are how guest threads
block on and wake each other through shared linear memory (the Wasm
threads proposal's futex pair). The actual parking/waking policy lives in
the intra-Faaslet guest-thread runtime (:mod:`repro.faaslet.threads`),
which installs itself on the instance as ``_thread_runtime``; outside a
parallel region the semantics degrade deterministically:

* ``wait32`` with no runtime never blocks: it returns 1 ("not-equal") if
  the value at ``addr`` differs from ``expected``, else 2 ("timed-out"),
  i.e. an immediate-timeout futex. Both tiers share this code path so the
  differential tests see identical results.
* ``notify`` with no runtime wakes nobody and returns 0.

Return codes follow the threads proposal: 0 = woken, 1 = not-equal,
2 = timed-out.
"""

from __future__ import annotations

WAIT_WOKEN = 0
WAIT_NOT_EQUAL = 1
WAIT_TIMED_OUT = 2


def atomic_wait32(inst, mem, addr: int, expected: int) -> int:
    """Block until notified if ``mem[addr] == expected`` (runtime present).

    The caller must have synced fuel/instruction counters to ``inst``
    before calling — the runtime suspends the guest thread here and the
    scheduler reads those counters for fuel-fair accounting.
    """
    mem._check_aligned(addr, 4)
    mem._check(addr, 4)
    runtime = getattr(inst, "_thread_runtime", None)
    if runtime is not None:
        return runtime.wait32(inst, addr, expected)
    if mem.load_int(addr, 4, False) != expected:
        return WAIT_NOT_EQUAL
    return WAIT_TIMED_OUT


def atomic_notify(inst, mem, addr: int, count: int) -> int:
    """Wake up to ``count`` waiters parked on ``addr``; returns woken count."""
    mem._check_aligned(addr, 4)
    mem._check(addr, 4)
    runtime = getattr(inst, "_thread_runtime", None)
    if runtime is not None:
        return runtime.notify(inst, addr, count)
    return 0
