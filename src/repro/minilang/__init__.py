"""``repro.minilang`` — a small typed language compiled to the wasm VM.

Minilang is this repository's stand-in for the paper's LLVM toolchain
(§3.4 phase 1). Guest functions — including the Polybench kernels of
Fig. 9a and the guest halves of several examples — are written in a C-like
language and compiled to ``repro.wasm`` modules, which then pass through the
same trusted validation and code-generation pipeline as hand-written
modules.

Typical use::

    from repro.minilang import build

    module = build('''
        export int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
    ''')
"""

from repro.wasm import validate_module
from repro.wasm.module import Module

from .codegen import compile_program, compile_source, wasm_type
from .errors import LexError, MinilangError, SyntaxErrorML, TypeErrorML
from .lexer import Token, tokenize
from .parser import parse


def build(source: str, name: str | None = None) -> Module:
    """Compile and validate minilang source, returning a ready module.

    This runs the full untrusted-compile → trusted-validate pipeline; the
    returned module is safe to instantiate.
    """
    module = compile_source(source, name)
    validate_module(module)
    return module


__all__ = [
    "LexError",
    "MinilangError",
    "SyntaxErrorML",
    "Token",
    "TypeErrorML",
    "build",
    "compile_program",
    "compile_source",
    "parse",
    "tokenize",
    "wasm_type",
]
