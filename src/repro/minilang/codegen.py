"""Code generation: minilang AST → ``repro.wasm`` module.

The generated module uses a simple bump allocator (``__alloc``) for ``new``
arrays, growing linear memory on demand and trapping on out-of-memory.
Array accesses lower to bounds-checked wasm loads/stores, so any indexing
error becomes an SFI trap rather than a silent corruption — exactly the
property Faaslets rely on (§2.2).
"""

from __future__ import annotations

from repro.wasm import BlockType, FuncType, Instr, ModuleBuilder
from repro.wasm.module import Module
from repro.wasm.types import F64, I32, I64, V128, ValType

from . import ast
from .errors import TypeErrorML
from .parser import parse

#: Byte offset where the guest heap starts (below it: scratch/data area).
HEAP_BASE = 1024

_SCALAR_TO_WASM = {"int": I32, "long": I64, "float": F64}

#: One-argument float builtins mapped straight to wasm operators.
_FLOAT_UNARY_BUILTINS = {
    "sqrt": "f64.sqrt",
    "fabs": "f64.abs",
    "floor": "f64.floor",
    "ceil": "f64.ceil",
    "trunc": "f64.trunc",
    "round": "f64.nearest",
}

_FLOAT_BINARY_BUILTINS = {"fmin": "f64.min", "fmax": "f64.max"}

_ARITH = {"+": "add", "-": "sub", "*": "mul"}
_INT_CMP = {"==": "eq", "!=": "ne", "<": "lt_s", "<=": "le_s", ">": "gt_s", ">=": "ge_s"}
_FLT_CMP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}


def wasm_type(t: ast.Type) -> ValType:
    """Lower a minilang type to its wasm representation (arrays are i32
    addresses)."""
    if t.is_array:
        return I32
    return _SCALAR_TO_WASM[t.name]


def _walk_stmts(stmts: list[ast.Stmt]):
    """Yield every statement in ``stmts``, recursing into nested blocks."""
    for s in stmts:
        yield s
        if isinstance(s, ast.If):
            yield from _walk_stmts(s.then_body)
            yield from _walk_stmts(s.else_body)
        elif isinstance(s, (ast.While, ast.ParallelFor)):
            yield from _walk_stmts(s.body)
        elif isinstance(s, ast.For):
            if s.init is not None:
                yield from _walk_stmts([s.init])
            if s.step is not None:
                yield from _walk_stmts([s.step])
            yield from _walk_stmts(s.body)


def _stmt_exprs(s: ast.Stmt) -> list[ast.Expr | None]:
    """The expressions directly held by one statement (no recursion)."""
    if isinstance(s, ast.VarDecl):
        return [s.init]
    if isinstance(s, ast.Assign):
        return [s.target, s.value]
    if isinstance(s, (ast.If, ast.While)):
        return [s.cond]
    if isinstance(s, ast.For):
        return [s.cond]
    if isinstance(s, ast.ParallelFor):
        return [s.lo, s.hi, s.nthreads]
    if isinstance(s, ast.Return):
        return [s.value]
    if isinstance(s, ast.ExprStmt):
        return [s.expr]
    return []


def _expr_vars(e: ast.Expr | None, out: list[str]) -> None:
    """Collect variable names referenced by ``e`` (in evaluation order)."""
    if e is None:
        return
    if isinstance(e, ast.Var):
        out.append(e.name)
    elif isinstance(e, ast.Unary):
        _expr_vars(e.operand, out)
    elif isinstance(e, ast.Binary):
        _expr_vars(e.lhs, out)
        _expr_vars(e.rhs, out)
    elif isinstance(e, ast.Cast):
        _expr_vars(e.operand, out)
    elif isinstance(e, ast.Call):
        for a in e.args:
            _expr_vars(a, out)
    elif isinstance(e, ast.Index):
        _expr_vars(e.array, out)
        _expr_vars(e.index, out)
    elif isinstance(e, ast.NewArray):
        _expr_vars(e.length, out)


def _uses_parallel_for(program: ast.Program) -> bool:
    return any(
        isinstance(s, ast.ParallelFor)
        for f in program.funcs
        for s in _walk_stmts(f.body)
    )


# ----------------------------------------------------------------------
# Vector intrinsics: v128 library functions
# ----------------------------------------------------------------------

_F_ARR = ast.Type("float", is_array=True)
_I_ARR = ast.Type("int", is_array=True)

#: name -> (minilang parameter types, return type). Each lowers to a call
#: into a lazily-emitted library function whose hot loop runs on v128
#: values (f64x2 / i32x4 lanes) with a scalar tail for the remainder.
_VEC_BUILTINS = {
    "vec_add_f": ([_F_ARR, _F_ARR, _F_ARR, ast.INT], ast.VOID),
    "vec_mul_f": ([_F_ARR, _F_ARR, _F_ARR, ast.INT], ast.VOID),
    "vec_axpy_f": ([ast.FLOAT, _F_ARR, _F_ARR, ast.INT], ast.VOID),
    "vec_dot_f": ([_F_ARR, _F_ARR, ast.INT], ast.FLOAT),
    "vec_add_i": ([_I_ARR, _I_ARR, _I_ARR, ast.INT], ast.VOID),
    "vec_min_i": ([_I_ARR, _I_ARR, _I_ARR, ast.INT], ast.VOID),
    "vec_axpy_i": ([ast.INT, _I_ARR, _I_ARR, ast.INT], ast.VOID),
}


def _advance(locals_: tuple[int, ...], delta: int) -> list[Instr]:
    out = []
    for idx in locals_:
        out += [
            Instr("local.get", (idx,)),
            Instr("i32.const", (delta,)),
            Instr("i32.add"),
            Instr("local.set", (idx,)),
        ]
    return out


def _count_loop(ptr: int, end: int, body: list[Instr]) -> Instr:
    """``while (ptr < end) body`` as a block/loop pair."""
    return Instr(
        "block",
        (
            BlockType(),
            [
                Instr(
                    "loop",
                    (
                        BlockType(),
                        [
                            Instr("local.get", (ptr,)),
                            Instr("local.get", (end,)),
                            Instr("i32.ge_u"),
                            Instr("br_if", (1,)),
                            *body,
                            Instr("br", (0,)),
                        ],
                    ),
                )
            ],
        ),
    )


def _set_end(base: int, n: int, lanes: int, shift: int, end: int) -> list[Instr]:
    """``end = base + ((n & -lanes) << shift)`` (lanes=1 for the full end)."""
    out = [Instr("local.get", (base,)), Instr("local.get", (n,))]
    if lanes > 1:
        out += [Instr("i32.const", (-lanes,)), Instr("i32.and")]
    out += [
        Instr("i32.const", (shift,)),
        Instr("i32.shl"),
        Instr("i32.add"),
        Instr("local.set", (end,)),
    ]
    return out


def _build_vec_elementwise(simd_op: str, esize: int, scalar: list[Instr]):
    """out[i] = a[i] <op> b[i] — params (a, b, out, n), pointer-walking."""
    lanes = 16 // esize
    shift = esize.bit_length() - 1
    A, B, O, N = 0, 1, 2, 3
    PA, PB, PO, END = 4, 5, 6, 7
    body = [
        Instr("local.get", (A,)), Instr("local.set", (PA,)),
        Instr("local.get", (B,)), Instr("local.set", (PB,)),
        Instr("local.get", (O,)), Instr("local.set", (PO,)),
        *_set_end(A, N, lanes, shift, END),
        _count_loop(PA, END, [
            Instr("local.get", (PO,)),
            Instr("local.get", (PA,)), Instr("v128.load", (0,)),
            Instr("local.get", (PB,)), Instr("v128.load", (0,)),
            Instr(simd_op),
            Instr("v128.store", (0,)),
            *_advance((PA, PB, PO), 16),
        ]),
        *_set_end(A, N, 1, shift, END),
        _count_loop(PA, END, [*scalar, *_advance((PA, PB, PO), esize)]),
    ]
    locals_ = [I32, I32, I32, I32]
    if simd_op == "i32x4.min_s":
        locals_ += [I32, I32]  # scalar-min temporaries
    return FuncType((I32, I32, I32, I32), ()), locals_, body


def _scalar_binop(ty: str, op_body: list[Instr], esize: int) -> list[Instr]:
    """``*out = *a <op> *b`` with the operator given as instructions."""
    PA, PB, PO = 4, 5, 6
    return [
        Instr("local.get", (PO,)),
        Instr("local.get", (PA,)), Instr(f"{ty}.load", (0,)),
        Instr("local.get", (PB,)), Instr(f"{ty}.load", (0,)),
        *op_body,
        Instr(f"{ty}.store", (0,)),
    ]


def _build_vec_axpy(prefix: str, ty: str, esize: int):
    """y[i] = y[i] + alpha * x[i] — params (alpha, x, y, n)."""
    lanes = 16 // esize
    shift = esize.bit_length() - 1
    AL, X, Y, N = 0, 1, 2, 3
    PX, PY, END, VS = 4, 5, 6, 7
    body = [
        Instr("local.get", (AL,)), Instr(f"{prefix}.splat"), Instr("local.set", (VS,)),
        Instr("local.get", (X,)), Instr("local.set", (PX,)),
        Instr("local.get", (Y,)), Instr("local.set", (PY,)),
        *_set_end(X, N, lanes, shift, END),
        _count_loop(PX, END, [
            Instr("local.get", (PY,)),
            Instr("local.get", (PY,)), Instr("v128.load", (0,)),
            Instr("local.get", (VS,)),
            Instr("local.get", (PX,)), Instr("v128.load", (0,)),
            Instr(f"{prefix}.mul"),
            Instr(f"{prefix}.add"),
            Instr("v128.store", (0,)),
            *_advance((PX, PY), 16),
        ]),
        *_set_end(X, N, 1, shift, END),
        _count_loop(PX, END, [
            Instr("local.get", (PY,)),
            Instr("local.get", (PY,)), Instr(f"{ty}.load", (0,)),
            Instr("local.get", (AL,)),
            Instr("local.get", (PX,)), Instr(f"{ty}.load", (0,)),
            Instr(f"{ty}.mul"),
            Instr(f"{ty}.add"),
            Instr(f"{ty}.store", (0,)),
            *_advance((PX, PY), esize),
        ]),
    ]
    alpha_vt = I32 if ty == "i32" else F64
    return FuncType((alpha_vt, I32, I32, I32), ()), [I32, I32, I32, V128], body


def _build_vec_dot_f():
    """sum(a[i] * b[i]) -> f64 — params (a, b, n)."""
    A, B, N = 0, 1, 2
    PA, PB, END, ACC, S = 3, 4, 5, 6, 7
    body = [
        Instr("v128.const", (bytes(16),)), Instr("local.set", (ACC,)),
        Instr("local.get", (A,)), Instr("local.set", (PA,)),
        Instr("local.get", (B,)), Instr("local.set", (PB,)),
        *_set_end(A, N, 2, 3, END),
        _count_loop(PA, END, [
            Instr("local.get", (ACC,)),
            Instr("local.get", (PA,)), Instr("v128.load", (0,)),
            Instr("local.get", (PB,)), Instr("v128.load", (0,)),
            Instr("f64x2.mul"),
            Instr("f64x2.add"),
            Instr("local.set", (ACC,)),
            *_advance((PA, PB), 16),
        ]),
        Instr("local.get", (ACC,)), Instr("f64x2.extract_lane", (0,)),
        Instr("local.get", (ACC,)), Instr("f64x2.extract_lane", (1,)),
        Instr("f64.add"),
        Instr("local.set", (S,)),
        *_set_end(A, N, 1, 3, END),
        _count_loop(PA, END, [
            Instr("local.get", (S,)),
            Instr("local.get", (PA,)), Instr("f64.load", (0,)),
            Instr("local.get", (PB,)), Instr("f64.load", (0,)),
            Instr("f64.mul"),
            Instr("f64.add"),
            Instr("local.set", (S,)),
            *_advance((PA, PB), 8),
        ]),
        Instr("local.get", (S,)),
    ]
    return FuncType((I32, I32, I32), (F64,)), [I32, I32, I32, V128, F64], body


def _build_vec_func(name: str):
    if name == "vec_add_f":
        return _build_vec_elementwise(
            "f64x2.add", 8, _scalar_binop("f64", [Instr("f64.add")], 8)
        )
    if name == "vec_mul_f":
        return _build_vec_elementwise(
            "f64x2.mul", 8, _scalar_binop("f64", [Instr("f64.mul")], 8)
        )
    if name == "vec_add_i":
        return _build_vec_elementwise(
            "i32x4.add", 4, _scalar_binop("i32", [Instr("i32.add")], 4)
        )
    if name == "vec_min_i":
        # Scalar i32 min: select(t1, t2, t1 < t2) through two temporaries.
        PA, PB, PO, T1, T2 = 4, 5, 6, 8, 9
        scalar = [
            Instr("local.get", (PA,)), Instr("i32.load", (0,)), Instr("local.set", (T1,)),
            Instr("local.get", (PB,)), Instr("i32.load", (0,)), Instr("local.set", (T2,)),
            Instr("local.get", (PO,)),
            Instr("local.get", (T1,)), Instr("local.get", (T2,)),
            Instr("local.get", (T1,)), Instr("local.get", (T2,)), Instr("i32.lt_s"),
            Instr("select"),
            Instr("i32.store", (0,)),
        ]
        return _build_vec_elementwise("i32x4.min_s", 4, scalar)
    if name == "vec_axpy_f":
        return _build_vec_axpy("f64x2", "f64", 8)
    if name == "vec_axpy_i":
        return _build_vec_axpy("i32x4", "i32", 4)
    assert name == "vec_dot_f", name
    return _build_vec_dot_f()


class _FuncContext:
    def __init__(self, func: ast.FuncDef):
        self.func = func
        self.local_types: list[ValType] = []
        self.scopes: list[dict[str, tuple[int, ast.Type]]] = [{}]
        self.n_params = len(func.params)
        #: Current number of enclosing labels while emitting.
        self.depth = 0
        #: Stack of (break_level, continue_level) for enclosing loops.
        self.loops: list[tuple[int, int]] = []

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, vtype: ast.Type, line: int) -> int:
        if name in self.scopes[-1]:
            raise TypeErrorML(f"redeclaration of {name!r}", line)
        index = self.n_params + len(self.local_types)
        self.local_types.append(wasm_type(vtype))
        self.scopes[-1][name] = (index, vtype)
        return index

    def lookup(self, name: str) -> tuple[int, ast.Type] | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None


class Compiler:
    """Compiles a minilang :class:`~repro.minilang.ast.Program` to a wasm
    module (not yet validated — validation is the trusted phase)."""

    def __init__(self, program: ast.Program, module_name: str | None = None):
        self.program = program
        self.builder = ModuleBuilder(module_name)
        #: name -> (index, FuncType, return minilang Type, param minilang Types)
        self.funcs: dict[str, tuple[int, ast.Type, list[ast.Type]]] = {}
        self.globals: dict[str, tuple[int, ast.Type]] = {}
        self.heap_global = 0
        #: Interned string literals: bytes -> data-segment address.
        self._strings: dict[bytes, int] = {}
        self._data_cursor = 16  # low addresses reserved for string data
        #: Synthetic functions queued during emission (outlined parallel_for
        #: workers and the vector library), emitted after all user functions
        #: so their pre-assigned indices line up. Entries are either
        #: ("ast", FuncDef) or ("raw", name, FuncType, locals, body).
        self._synthetics: list[tuple] = []
        self._synthetic_base = 0
        #: Function indices placed in the table (parallel_for spawn targets).
        self._elem_funcs: list[int] = []
        #: Lazily-instantiated vector-library functions: name -> func index.
        self._vec_lib: dict[str, int] = {}
        self._pf_count = 0

    # ------------------------------------------------------------------
    def compile(self) -> Module:
        self.builder.add_memory(1, None)
        self.heap_global = self.builder.add_global(I32, HEAP_BASE, mutable=True)

        for decl in self.program.globals:
            if decl.name in self.globals:
                raise TypeErrorML(f"duplicate global {decl.name!r}", decl.line)
            idx = self.builder.add_global(
                wasm_type(decl.type), decl.init, mutable=True
            )
            self.globals[decl.name] = (idx, decl.type)

        for ext in self.program.externs:
            ftype = FuncType(
                tuple(wasm_type(t) for t in ext.param_types),
                () if ext.return_type.name == "void" else (wasm_type(ext.return_type),),
            )
            idx = self.builder.import_func("env", ext.name, ftype)
            self.funcs[ext.name] = (idx, ext.return_type, list(ext.param_types))

        # parallel_for lowers to the guest-thread host calls; import them
        # implicitly (before any defined function) if the program did not
        # declare them itself.
        if _uses_parallel_for(self.program):
            for name, ftype, ptypes in (
                ("thread_spawn", FuncType((I32, I32), (I32,)), [ast.INT, ast.INT]),
                ("thread_join", FuncType((I32,), (I32,)), [ast.INT]),
            ):
                if name not in self.funcs:
                    idx = self.builder.import_func("env", name, ftype)
                    self.funcs[name] = (idx, ast.INT, ptypes)

        alloc_idx = self._emit_alloc()
        self.funcs["__alloc"] = (alloc_idx, ast.INT, [ast.INT])

        # Declare all user functions first so forward references work.
        declared: list[tuple[ast.FuncDef, int]] = []
        next_index = self.builder.module.num_funcs
        for func in self.program.funcs:
            if func.name in self.funcs:
                raise TypeErrorML(f"duplicate function {func.name!r}", func.line)
            self.funcs[func.name] = (
                next_index + len(declared),
                func.return_type,
                [p.type for p in func.params],
            )
            declared.append((func, next_index + len(declared)))

        self._synthetic_base = next_index + len(declared)
        for func, _ in declared:
            self._emit_func(func)

        # Emit queued synthetics (a synthetic may queue more — e.g. a
        # vec_* call inside an outlined parallel_for body).
        qi = 0
        while qi < len(self._synthetics):
            entry = self._synthetics[qi]
            if entry[0] == "ast":
                self._emit_func(entry[1])
            else:
                _, name, ftype, locals_, body = entry
                self.builder.add_function(name, ftype, locals_, body)
            qi += 1
        if self._elem_funcs:
            self.builder.add_table(len(self._elem_funcs), len(self._elem_funcs))
            self.builder.add_element(0, list(self._elem_funcs))

        # String data lives below the heap: if the literals outgrew the
        # default heap base, move the heap start up (the heap global's init
        # is only read at instantiation).
        if self._data_cursor > HEAP_BASE:
            aligned = (self._data_cursor + 7) & ~7
            self.builder.module.globals_[self.heap_global].init = aligned
        return self.builder.build()

    def _intern_string(self, value: bytes) -> int:
        """Place a NUL-terminated copy of ``value`` in a data segment."""
        addr = self._strings.get(value)
        if addr is None:
            addr = self._data_cursor
            self.builder.add_data(addr, value + b"\x00")
            self._data_cursor += len(value) + 1
            self._strings[value] = addr
        return addr

    # ------------------------------------------------------------------
    def _emit_alloc(self) -> int:
        """Emit the bump allocator: ``__alloc(bytes: int) -> int``."""
        body = [
            # bytes = (bytes + 7) & ~7
            Instr("local.get", (0,)),
            Instr("i32.const", (7,)),
            Instr("i32.add"),
            Instr("i32.const", (-8,)),
            Instr("i32.and"),
            Instr("local.set", (0,)),
            # addr = heap
            Instr("global.get", (self.heap_global,)),
            Instr("local.set", (1,)),
            # heap = addr + bytes
            Instr("local.get", (1,)),
            Instr("local.get", (0,)),
            Instr("i32.add",),
            Instr("local.tee", (2,)),
            Instr("global.set", (self.heap_global,)),
            # needed = (heap + 65535) >> 16
            Instr("local.get", (2,)),
            Instr("i32.const", (65535,)),
            Instr("i32.add"),
            Instr("i32.const", (16,)),
            Instr("i32.shr_u"),
            Instr("local.set", (3,)),
            Instr(
                "block",
                (
                    BlockType(),
                    [
                        Instr("local.get", (3,)),
                        Instr("memory.size"),
                        Instr("i32.le_s"),
                        Instr("br_if", (0,)),
                        Instr("local.get", (3,)),
                        Instr("memory.size"),
                        Instr("i32.sub"),
                        Instr("memory.grow"),
                        Instr("i32.const", (-1,)),
                        Instr("i32.ne"),
                        Instr("br_if", (0,)),
                        Instr("unreachable"),
                    ],
                ),
            ),
            Instr("local.get", (1,)),
        ]
        return self.builder.add_function(
            "__alloc", FuncType((I32,), (I32,)), [I32, I32, I32], body
        )

    # ------------------------------------------------------------------
    def _emit_func(self, func: ast.FuncDef) -> None:
        ctx = _FuncContext(func)
        for i, param in enumerate(func.params):
            if ctx.lookup(param.name) is not None:
                raise TypeErrorML(f"duplicate parameter {param.name!r}", func.line)
            ctx.scopes[0][param.name] = (i, param.type)
        out: list[Instr] = []
        self._gen_stmts(ctx, func.body, out)
        if func.return_type.name != "void" or func.return_type.is_array:
            # A well-typed program returns before reaching here; reaching the
            # end of a non-void function is a trap (missing return).
            out.append(Instr("unreachable"))
        ftype = FuncType(
            tuple(wasm_type(p.type) for p in func.params),
            ()
            if (func.return_type.name == "void" and not func.return_type.is_array)
            else (wasm_type(func.return_type),),
        )
        self.builder.add_function(
            func.name, ftype, ctx.local_types, out, export=func.exported
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _gen_stmts(self, ctx: _FuncContext, stmts: list[ast.Stmt], out: list[Instr]) -> None:
        for stmt in stmts:
            self._gen_stmt(ctx, stmt, out)

    def _gen_stmt(self, ctx: _FuncContext, stmt: ast.Stmt, out: list[Instr]) -> None:
        if isinstance(stmt, ast.VarDecl):
            index = ctx.declare(stmt.name, stmt.type, stmt.line)
            if stmt.init is not None:
                itype = self._gen_expr(ctx, stmt.init, out)
                self._coerce(itype, stmt.type, out, stmt.line)
            else:
                zero = {
                    I32: Instr("i32.const", (0,)),
                    I64: Instr("i64.const", (0,)),
                    F64: Instr("f64.const", (0.0,)),
                }[wasm_type(stmt.type)]
                out.append(zero)
            out.append(Instr("local.set", (index,)))
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(ctx, stmt, out)
        elif isinstance(stmt, ast.If):
            self._gen_cond(ctx, stmt.cond, out)
            then_body: list[Instr] = []
            else_body: list[Instr] = []
            ctx.depth += 1
            ctx.push_scope()
            self._gen_stmts(ctx, stmt.then_body, then_body)
            ctx.pop_scope()
            ctx.push_scope()
            self._gen_stmts(ctx, stmt.else_body, else_body)
            ctx.pop_scope()
            ctx.depth -= 1
            out.append(Instr("if", (BlockType(), then_body, else_body)))
        elif isinstance(stmt, ast.While):
            self._gen_while(ctx, stmt, out)
        elif isinstance(stmt, ast.For):
            self._gen_for(ctx, stmt, out)
        elif isinstance(stmt, ast.ParallelFor):
            self._gen_parallel_for(ctx, stmt, out)
        elif isinstance(stmt, ast.Return):
            rtype = ctx.func.return_type
            if stmt.value is None:
                if rtype.name != "void":
                    raise TypeErrorML("missing return value", stmt.line)
            else:
                if rtype.name == "void" and not rtype.is_array:
                    raise TypeErrorML("void function returns a value", stmt.line)
                vtype = self._gen_expr(ctx, stmt.value, out)
                self._coerce(vtype, rtype, out, stmt.line)
            out.append(Instr("return"))
        elif isinstance(stmt, ast.Break):
            if not ctx.loops:
                raise TypeErrorML("break outside a loop", stmt.line)
            break_level, _ = ctx.loops[-1]
            out.append(Instr("br", (ctx.depth - 1 - break_level,)))
        elif isinstance(stmt, ast.Continue):
            if not ctx.loops:
                raise TypeErrorML("continue outside a loop", stmt.line)
            _, continue_level = ctx.loops[-1]
            out.append(Instr("br", (ctx.depth - 1 - continue_level,)))
        elif isinstance(stmt, ast.ExprStmt):
            etype = self._gen_expr(ctx, stmt.expr, out)
            if etype.name != "void" or etype.is_array:
                out.append(Instr("drop"))
        else:  # pragma: no cover - parser emits only known nodes
            raise TypeErrorML(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _gen_assign(self, ctx: _FuncContext, stmt: ast.Assign, out: list[Instr]) -> None:
        target = stmt.target
        if isinstance(target, ast.Var):
            binding = ctx.lookup(target.name)
            if binding is not None:
                index, vtype = binding
                etype = self._gen_expr(ctx, stmt.value, out)
                self._coerce(etype, vtype, out, stmt.line)
                out.append(Instr("local.set", (index,)))
                return
            if target.name in self.globals:
                gidx, gtype = self.globals[target.name]
                etype = self._gen_expr(ctx, stmt.value, out)
                self._coerce(etype, gtype, out, stmt.line)
                out.append(Instr("global.set", (gidx,)))
                return
            raise TypeErrorML(f"undeclared variable {target.name!r}", stmt.line)
        assert isinstance(target, ast.Index)
        elem = self._gen_element_addr(ctx, target, out)
        etype = self._gen_expr(ctx, stmt.value, out)
        self._coerce(etype, elem, out, stmt.line)
        store = {"int": "i32.store", "long": "i64.store", "float": "f64.store"}[elem.name]
        out.append(Instr(store, (0,)))

    def _gen_while(self, ctx: _FuncContext, stmt: ast.While, out: list[Instr]) -> None:
        exit_level = ctx.depth
        loop_level = ctx.depth + 1
        ctx.depth += 2
        ctx.loops.append((exit_level, loop_level))
        ctx.push_scope()
        loop_body: list[Instr] = []
        self._gen_cond(ctx, stmt.cond, loop_body)
        loop_body.append(Instr("i32.eqz"))
        loop_body.append(Instr("br_if", (1,)))  # to exit block
        self._gen_stmts(ctx, stmt.body, loop_body)
        loop_body.append(Instr("br", (0,)))  # back to loop
        ctx.pop_scope()
        ctx.loops.pop()
        ctx.depth -= 2
        out.append(
            Instr("block", (BlockType(), [Instr("loop", (BlockType(), loop_body))]))
        )

    def _gen_for(self, ctx: _FuncContext, stmt: ast.For, out: list[Instr]) -> None:
        ctx.push_scope()
        if stmt.init is not None:
            self._gen_stmt(ctx, stmt.init, out)
        exit_level = ctx.depth
        loop_level = ctx.depth + 1
        cont_level = ctx.depth + 2
        loop_body: list[Instr] = []
        ctx.depth += 2
        if stmt.cond is not None:
            self._gen_cond(ctx, stmt.cond, loop_body)
            loop_body.append(Instr("i32.eqz"))
            loop_body.append(Instr("br_if", (1,)))
        inner: list[Instr] = []
        ctx.depth += 1
        ctx.loops.append((exit_level, cont_level))
        ctx.push_scope()
        self._gen_stmts(ctx, stmt.body, inner)
        ctx.pop_scope()
        ctx.loops.pop()
        ctx.depth -= 1
        loop_body.append(Instr("block", (BlockType(), inner)))
        if stmt.step is not None:
            self._gen_stmt(ctx, stmt.step, loop_body)
        loop_body.append(Instr("br", (0,)))
        ctx.depth -= 2
        ctx.pop_scope()
        out.append(
            Instr("block", (BlockType(), [Instr("loop", (BlockType(), loop_body))]))
        )

    # ------------------------------------------------------------------
    # parallel_for: fork-join parallel regions over guest threads
    # ------------------------------------------------------------------
    def _captured_vars(self, ctx: _FuncContext, stmt: ast.ParallelFor) -> list[tuple[str, ast.Type]]:
        """Enclosing locals the region body reads, in first-use order.

        Globals are shared through the instance and need no capture; names
        declared inside the body (or any loop variable) are region-private.
        """
        declared = {stmt.var}
        for s in _walk_stmts(stmt.body):
            if isinstance(s, ast.VarDecl):
                declared.add(s.name)
            elif isinstance(s, ast.ParallelFor):
                declared.add(s.var)
        refs: list[str] = []
        for s in _walk_stmts(stmt.body):
            for e in _stmt_exprs(s):
                _expr_vars(e, refs)
        captured: list[tuple[str, ast.Type]] = []
        seen: set[str] = set()
        for name in refs:
            if name in declared or name in seen:
                continue
            binding = ctx.lookup(name)
            if binding is None:
                continue  # a global (shared) or undeclared (errors in the worker)
            seen.add(name)
            captured.append((name, binding[1]))
        # A write to a captured scalar would die with the thread's private
        # copy — silently. Make it a compile error instead.
        for s in _walk_stmts(stmt.body):
            if isinstance(s, ast.Assign) and isinstance(s.target, ast.Var):
                if s.target.name in seen:
                    raise TypeErrorML(
                        f"cannot assign to captured variable {s.target.name!r} "
                        "inside parallel_for (captures are per-thread copies; "
                        "write results through a shared array)",
                        s.line,
                    )
        return captured

    def _gen_parallel_for(self, ctx: _FuncContext, stmt: ast.ParallelFor, out: list[Instr]) -> None:
        """Outline the body into a hidden worker ``(i32 argptr) -> void`` and
        emit spawn/join plumbing in the parent.

        The arg struct layout (8-byte slots so every type is aligned)::

            +0   i32 chunk_lo        +4   i32 chunk_hi
            +8+8j  captured value j  (i32/i64/f64; arrays as base address)
        """
        L = stmt.line
        captured = self._captured_vars(ctx, stmt)

        def V(name):
            return ast.Var(L, name)

        def I(v):
            return ast.IntLit(L, v)

        def B(op, a, b):
            return ast.Binary(L, op, a, b)

        def C(name, *args):
            return ast.Call(L, name, list(args))

        def at(arr, idx):
            return ast.Index(L, arr, I(idx))

        # --- the outlined worker -------------------------------------
        arg_words = C("iarr", V("__arg"))
        cap_decls: list[ast.Stmt] = []
        for j, (name, ctype) in enumerate(captured):
            if ctype.is_array:
                view = {"int": "iarr", "long": "larr", "float": "farr"}[ctype.name]
                init: ast.Expr = C(view, at(C("iarr", V("__arg")), 2 + 2 * j))
            elif ctype.name == "int":
                init = at(C("iarr", V("__arg")), 2 + 2 * j)
            elif ctype.name == "long":
                init = at(C("larr", V("__arg")), 1 + j)
            else:
                init = at(C("farr", V("__arg")), 1 + j)
            cap_decls.append(ast.VarDecl(L, ctype, name, init))
        worker_body: list[ast.Stmt] = [
            *cap_decls,
            ast.VarDecl(L, ast.INT, "__pf_hi", at(arg_words, 1)),
            ast.VarDecl(L, ast.INT, stmt.var, at(C("iarr", V("__arg")), 0)),
            ast.For(
                L,
                None,
                B("<", V(stmt.var), V("__pf_hi")),
                ast.Assign(L, V(stmt.var), B("+", V(stmt.var), I(1))),
                stmt.body,
            ),
        ]
        n = self._pf_count
        self._pf_count += 1
        wname = f"__pf_{n}"
        worker = ast.FuncDef(
            wname, ast.VOID, [ast.Param(ast.INT, "__arg")], worker_body, False, L
        )
        widx = self._synthetic_base + len(self._synthetics)
        self.funcs[wname] = (widx, ast.VOID, [ast.INT])
        self._synthetics.append(("ast", worker))
        elem_index = len(self._elem_funcs)
        self._elem_funcs.append(widx)

        # --- the parent-side spawn/join plumbing ---------------------
        s = f"__pf{n}"
        nt, lo, hi, ck = f"{s}_nt", f"{s}_lo", f"{s}_hi", f"{s}_ck"
        tids, t, arg, cl, ch = f"{s}_tids", f"{s}_t", f"{s}_arg", f"{s}_cl", f"{s}_ch"
        cap_stores: list[ast.Stmt] = []
        for j, (name, ctype) in enumerate(captured):
            if ctype.is_array:
                cap_stores.append(
                    ast.Assign(L, at(V(arg), 2 + 2 * j), C("ptr", V(name)))
                )
            elif ctype.name == "int":
                cap_stores.append(ast.Assign(L, at(V(arg), 2 + 2 * j), V(name)))
            else:
                view = {"long": "larr", "float": "farr"}[ctype.name]
                cap_stores.append(
                    ast.Assign(L, at(C(view, C("ptr", V(arg))), 1 + j), V(name))
                )
        plumbing: list[ast.Stmt] = [
            ast.VarDecl(L, ast.INT, nt, stmt.nthreads),
            ast.If(L, B("<", V(nt), I(1)), [ast.Assign(L, V(nt), I(1))], []),
            ast.VarDecl(L, ast.INT, lo, stmt.lo),
            ast.VarDecl(L, ast.INT, hi, stmt.hi),
            ast.If(L, B("<", V(hi), V(lo)), [ast.Assign(L, V(hi), V(lo))], []),
            # ck = ceil((hi - lo) / nt)
            ast.VarDecl(
                L, ast.INT, ck,
                B("/", B("-", B("+", B("-", V(hi), V(lo)), V(nt)), I(1)), V(nt)),
            ),
            ast.VarDecl(
                L, ast.Type("int", True), tids, ast.NewArray(L, ast.INT, V(nt))
            ),
            ast.For(
                L,
                ast.VarDecl(L, ast.INT, t, I(0)),
                B("<", V(t), V(nt)),
                ast.Assign(L, V(t), B("+", V(t), I(1))),
                [
                    ast.VarDecl(
                        L, ast.Type("int", True), arg,
                        ast.NewArray(L, ast.INT, I(2 + 2 * len(captured))),
                    ),
                    ast.VarDecl(L, ast.INT, cl, B("+", V(lo), B("*", V(t), V(ck)))),
                    ast.If(L, B(">", V(cl), V(hi)), [ast.Assign(L, V(cl), V(hi))], []),
                    ast.VarDecl(L, ast.INT, ch, B("+", V(cl), V(ck))),
                    ast.If(L, B(">", V(ch), V(hi)), [ast.Assign(L, V(ch), V(hi))], []),
                    ast.Assign(L, at(V(arg), 0), V(cl)),
                    ast.Assign(L, at(V(arg), 1), V(ch)),
                    *cap_stores,
                    ast.Assign(
                        L, ast.Index(L, V(tids), V(t)),
                        C("thread_spawn", I(elem_index), C("ptr", V(arg))),
                    ),
                ],
            ),
            ast.For(
                L,
                ast.VarDecl(L, ast.INT, t, I(0)),
                B("<", V(t), V(nt)),
                ast.Assign(L, V(t), B("+", V(t), I(1))),
                [ast.ExprStmt(L, C("thread_join", ast.Index(L, V(tids), V(t))))],
            ),
        ]
        ctx.push_scope()
        self._gen_stmts(ctx, plumbing, out)
        ctx.pop_scope()

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _gen_cond(self, ctx: _FuncContext, expr: ast.Expr, out: list[Instr]) -> None:
        """Evaluate a condition to an i32 truth value."""
        etype = self._gen_expr(ctx, expr, out)
        if etype.is_array:
            raise TypeErrorML("array used as a condition", expr.line)
        if etype.name == "long":
            out.append(Instr("i64.const", (0,)))
            out.append(Instr("i64.ne"))
        elif etype.name == "float":
            out.append(Instr("f64.const", (0.0,)))
            out.append(Instr("f64.ne"))
        elif etype.name != "int":
            raise TypeErrorML(f"{etype} used as a condition", expr.line)

    def _gen_expr(self, ctx: _FuncContext, expr: ast.Expr, out: list[Instr]) -> ast.Type:
        if isinstance(expr, ast.IntLit):
            out.append(Instr("i32.const", (expr.value,)))
            return ast.INT
        if isinstance(expr, ast.FloatLit):
            out.append(Instr("f64.const", (expr.value,)))
            return ast.FLOAT
        if isinstance(expr, ast.StrLit):
            out.append(Instr("i32.const", (self._intern_string(expr.value),)))
            return ast.INT
        if isinstance(expr, ast.Var):
            binding = ctx.lookup(expr.name)
            if binding is not None:
                index, vtype = binding
                out.append(Instr("local.get", (index,)))
                return vtype
            if expr.name in self.globals:
                gidx, gtype = self.globals[expr.name]
                out.append(Instr("global.get", (gidx,)))
                return gtype
            raise TypeErrorML(f"undeclared variable {expr.name!r}", expr.line)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(ctx, expr, out)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(ctx, expr, out)
        if isinstance(expr, ast.Cast):
            return self._gen_cast(ctx, expr, out)
        if isinstance(expr, ast.Call):
            return self._gen_call(ctx, expr, out)
        if isinstance(expr, ast.Index):
            elem = self._gen_element_addr(ctx, expr, out)
            load = {"int": "i32.load", "long": "i64.load", "float": "f64.load"}[elem.name]
            out.append(Instr(load, (0,)))
            return elem
        if isinstance(expr, ast.NewArray):
            ltype = self._gen_expr(ctx, expr.length, out)
            if ltype != ast.INT:
                raise TypeErrorML("array length must be int", expr.line)
            out.append(Instr("i32.const", (expr.element.element_size,)))
            out.append(Instr("i32.mul"))
            out.append(Instr("call", (self.funcs["__alloc"][0],)))
            return ast.Type(expr.element.name, is_array=True)
        raise TypeErrorML(f"unknown expression {type(expr).__name__}", expr.line)

    def _gen_element_addr(self, ctx: _FuncContext, expr: ast.Index, out: list[Instr]) -> ast.Type:
        atype = self._gen_expr(ctx, expr.array, out)
        if not atype.is_array:
            raise TypeErrorML(f"cannot index non-array type {atype}", expr.line)
        itype = self._gen_expr(ctx, expr.index, out)
        if itype != ast.INT:
            raise TypeErrorML("array index must be int", expr.line)
        size = atype.element_size
        if size == 8:
            out.append(Instr("i32.const", (3,)))
            out.append(Instr("i32.shl"))
        else:
            out.append(Instr("i32.const", (2,)))
            out.append(Instr("i32.shl"))
        out.append(Instr("i32.add"))
        return atype.element

    def _gen_unary(self, ctx: _FuncContext, expr: ast.Unary, out: list[Instr]) -> ast.Type:
        if expr.op == "-":
            # Constant-fold the common literal case for readability of output.
            if isinstance(expr.operand, ast.IntLit):
                out.append(Instr("i32.const", (-expr.operand.value,)))
                return ast.INT
            if isinstance(expr.operand, ast.FloatLit):
                out.append(Instr("f64.const", (-expr.operand.value,)))
                return ast.FLOAT
            sub: list[Instr] = []
            otype = self._gen_expr(ctx, expr.operand, sub)
            if otype == ast.FLOAT:
                out.extend(sub)
                out.append(Instr("f64.neg"))
            elif otype == ast.INT:
                out.append(Instr("i32.const", (0,)))
                out.extend(sub)
                out.append(Instr("i32.sub"))
            elif otype == ast.LONG:
                out.append(Instr("i64.const", (0,)))
                out.extend(sub)
                out.append(Instr("i64.sub"))
            else:
                raise TypeErrorML(f"cannot negate {otype}", expr.line)
            return otype
        if expr.op == "!":
            otype = self._gen_expr(ctx, expr.operand, out)
            if otype != ast.INT:
                raise TypeErrorML("! requires an int operand", expr.line)
            out.append(Instr("i32.eqz"))
            return ast.INT
        raise TypeErrorML(f"unknown unary operator {expr.op!r}", expr.line)

    def _gen_binary(self, ctx: _FuncContext, expr: ast.Binary, out: list[Instr]) -> ast.Type:
        if expr.op in ("&&", "||"):
            self._gen_cond(ctx, expr.lhs, out)
            rhs: list[Instr] = []
            ctx.depth += 1
            self._gen_cond(ctx, expr.rhs, rhs)
            ctx.depth -= 1
            bt = BlockType((), (I32,))
            if expr.op == "&&":
                out.append(Instr("if", (bt, rhs, [Instr("i32.const", (0,))])))
            else:
                out.append(Instr("if", (bt, [Instr("i32.const", (1,))], rhs)))
            return ast.INT

        lhs_code: list[Instr] = []
        rhs_code: list[Instr] = []
        ltype = self._gen_expr(ctx, expr.lhs, lhs_code)
        rtype = self._gen_expr(ctx, expr.rhs, rhs_code)
        if ltype.is_array or rtype.is_array:
            raise TypeErrorML("arithmetic on array values", expr.line)
        common = self._promote(ltype, rtype, expr.line)
        out.extend(lhs_code)
        self._coerce(ltype, common, out, expr.line)
        out.extend(rhs_code)
        self._coerce(rtype, common, out, expr.line)

        prefix = {"int": "i32", "long": "i64", "float": "f64"}[common.name]
        op = expr.op
        if op in _ARITH:
            out.append(Instr(f"{prefix}.{_ARITH[op]}"))
            return common
        if op == "/":
            out.append(Instr(f"{prefix}.div" if common == ast.FLOAT else f"{prefix}.div_s"))
            return common
        if op == "%":
            if common == ast.FLOAT:
                raise TypeErrorML("% is not defined for float", expr.line)
            out.append(Instr(f"{prefix}.rem_s"))
            return common
        cmp = _FLT_CMP if common == ast.FLOAT else _INT_CMP
        if op in cmp:
            out.append(Instr(f"{prefix}.{cmp[op]}"))
            return ast.INT
        raise TypeErrorML(f"unknown binary operator {op!r}", expr.line)

    def _gen_cast(self, ctx: _FuncContext, expr: ast.Cast, out: list[Instr]) -> ast.Type:
        otype = self._gen_expr(ctx, expr.operand, out)
        target = expr.target
        if otype.is_array or target.is_array:
            raise TypeErrorML("cannot cast array types", expr.line)
        if otype == target:
            return target
        conv = {
            ("int", "float"): "f64.convert_i32_s",
            ("int", "long"): "i64.extend_i32_s",
            ("long", "int"): "i32.wrap_i64",
            ("long", "float"): "f64.convert_i64_s",
            ("float", "int"): "i32.trunc_f64_s",
            ("float", "long"): "i64.trunc_f64_s",
        }.get((otype.name, target.name))
        if conv is None:
            raise TypeErrorML(f"cannot cast {otype} to {target}", expr.line)
        out.append(Instr(conv))
        return target

    def _gen_call(self, ctx: _FuncContext, expr: ast.Call, out: list[Instr]) -> ast.Type:
        if expr.name == "ptr":
            # ptr(arr): reinterpret an array as its raw base address, for
            # passing byte buffers through the host interface.
            if len(expr.args) != 1:
                raise TypeErrorML("ptr takes one argument", expr.line)
            atype = self._gen_expr(ctx, expr.args[0], out)
            if not atype.is_array:
                raise TypeErrorML("ptr requires an array argument", expr.line)
            return ast.INT
        if expr.name == "slen":
            # slen("literal"): compile-time length of a string literal.
            if len(expr.args) != 1 or not isinstance(expr.args[0], ast.StrLit):
                raise TypeErrorML("slen requires a string literal", expr.line)
            out.append(Instr("i32.const", (len(expr.args[0].value),)))
            return ast.INT
        if expr.name in ("farr", "iarr", "larr"):
            # farr/iarr/larr(addr): view a raw address (e.g. one returned by
            # get_state) as a float[]/int[]/long[] array.
            if len(expr.args) != 1:
                raise TypeErrorML(f"{expr.name} takes one argument", expr.line)
            atype = self._gen_expr(ctx, expr.args[0], out)
            if atype != ast.INT:
                raise TypeErrorML(f"{expr.name} requires an int address", expr.line)
            elem = {"farr": "float", "iarr": "int", "larr": "long"}[expr.name]
            return ast.Type(elem, is_array=True)
        if expr.name == "loadb":
            # loadb(addr): read one byte from linear memory.
            if len(expr.args) != 1:
                raise TypeErrorML("loadb takes one argument", expr.line)
            atype = self._gen_expr(ctx, expr.args[0], out)
            if atype != ast.INT:
                raise TypeErrorML("loadb requires an int address", expr.line)
            out.append(Instr("i32.load8_u", (0,)))
            return ast.INT
        if expr.name == "storeb":
            # storeb(addr, value): write one byte to linear memory.
            if len(expr.args) != 2:
                raise TypeErrorML("storeb takes two arguments", expr.line)
            for arg in expr.args:
                atype = self._gen_expr(ctx, arg, out)
                if atype != ast.INT:
                    raise TypeErrorML("storeb requires int arguments", expr.line)
            out.append(Instr("i32.store8", (0,)))
            return ast.VOID
        if expr.name in _FLOAT_UNARY_BUILTINS:
            if len(expr.args) != 1:
                raise TypeErrorML(f"{expr.name} takes one argument", expr.line)
            atype = self._gen_expr(ctx, expr.args[0], out)
            self._coerce(atype, ast.FLOAT, out, expr.line)
            out.append(Instr(_FLOAT_UNARY_BUILTINS[expr.name]))
            return ast.FLOAT
        if expr.name in _FLOAT_BINARY_BUILTINS:
            if len(expr.args) != 2:
                raise TypeErrorML(f"{expr.name} takes two arguments", expr.line)
            for arg in expr.args:
                atype = self._gen_expr(ctx, arg, out)
                self._coerce(atype, ast.FLOAT, out, expr.line)
            out.append(Instr(_FLOAT_BINARY_BUILTINS[expr.name]))
            return ast.FLOAT
        if expr.name in _VEC_BUILTINS:
            ptypes, rtype = _VEC_BUILTINS[expr.name]
            if len(expr.args) != len(ptypes):
                raise TypeErrorML(
                    f"{expr.name} expects {len(ptypes)} arguments, got "
                    f"{len(expr.args)}",
                    expr.line,
                )
            for arg, ptype in zip(expr.args, ptypes):
                atype = self._gen_expr(ctx, arg, out)
                if ptype.is_array:
                    if atype != ptype:
                        raise TypeErrorML(
                            f"{expr.name} expects {ptype}, got {atype}", expr.line
                        )
                else:
                    self._coerce(atype, ptype, out, expr.line)
            out.append(Instr("call", (self._vec_func(expr.name),)))
            return rtype

        if expr.name not in self.funcs:
            raise TypeErrorML(f"call to unknown function {expr.name!r}", expr.line)
        index, rtype, ptypes = self.funcs[expr.name]
        if len(expr.args) != len(ptypes):
            raise TypeErrorML(
                f"{expr.name} expects {len(ptypes)} arguments, got {len(expr.args)}",
                expr.line,
            )
        for arg, ptype in zip(expr.args, ptypes):
            atype = self._gen_expr(ctx, arg, out)
            self._coerce(atype, ptype, out, expr.line)
        out.append(Instr("call", (index,)))
        return rtype

    def _vec_func(self, name: str) -> int:
        """Queue (once) and return the index of a vector-library function."""
        idx = self._vec_lib.get(name)
        if idx is None:
            ftype, locals_, body = _build_vec_func(name)
            idx = self._synthetic_base + len(self._synthetics)
            self._synthetics.append(("raw", f"__{name}", ftype, locals_, body))
            self._vec_lib[name] = idx
        return idx

    # ------------------------------------------------------------------
    # Type coercion
    # ------------------------------------------------------------------
    def _promote(self, a: ast.Type, b: ast.Type, line: int) -> ast.Type:
        if a == b:
            return a
        names = {a.name, b.name}
        if "float" in names and names <= {"float", "int", "long"}:
            return ast.FLOAT
        if names == {"int", "long"}:
            return ast.LONG
        raise TypeErrorML(f"incompatible operand types {a} and {b}", line)

    def _coerce(self, src: ast.Type, dst: ast.Type, out: list[Instr], line: int) -> None:
        """Emit an implicit widening conversion, or fail."""
        if src == dst:
            return
        if src.is_array or dst.is_array:
            raise TypeErrorML(f"cannot convert {src} to {dst}", line)
        conv = {
            ("int", "long"): "i64.extend_i32_s",
            ("int", "float"): "f64.convert_i32_s",
            ("long", "float"): "f64.convert_i64_s",
        }.get((src.name, dst.name))
        if conv is None:
            raise TypeErrorML(
                f"cannot implicitly convert {src} to {dst} (use a cast)", line
            )
        out.append(Instr(conv))


def compile_program(program: ast.Program, name: str | None = None) -> Module:
    """Compile a parsed program to an (unvalidated) wasm module."""
    return Compiler(program, name).compile()


def compile_source(source: str, name: str | None = None) -> Module:
    """Compile minilang source text to an (unvalidated) wasm module."""
    return compile_program(parse(source), name)
