"""A small guest-side standard library for minilang functions.

The paper links guest functions against language-specific libraries
declaring the host interface and common helpers. :data:`PRELUDE` plays
that role here: prepend it to guest source (``with_stdlib``) to get the
full Tab. 2 extern declarations plus byte-buffer helpers (``memcpy``,
``memset``, ``streq``, ``itoa``, ``atoi``).
"""

from __future__ import annotations

#: Extern declarations for the full Tab. 2 host interface.
HOST_DECLS = """
extern int input_size();
extern int read_call_input(int buf, int len);
extern void write_call_output(int buf, int len);
extern int chain_call(int name_ptr, int name_len, int in_ptr, int in_len);
extern int await_call(int call_id);
extern int get_call_output_size(int call_id);
extern int get_call_output(int call_id, int buf, int len);

extern int get_state(int key_ptr, int key_len, int size);
extern int get_state_offset(int key_ptr, int key_len, int off, int len);
extern void set_state(int key_ptr, int key_len, int val_ptr, int val_len);
extern void set_state_offset(int key_ptr, int key_len, int val_ptr, int val_len, int off);
extern void push_state(int key_ptr, int key_len);
extern void pull_state(int key_ptr, int key_len);
extern void push_state_offset(int key_ptr, int key_len, int off, int len);
extern void pull_state_offset(int key_ptr, int key_len, int off, int len);
extern void append_state(int key_ptr, int key_len, int val_ptr, int val_len);
extern int state_size(int key_ptr, int key_len);
extern int prefetch_state(int key_ptr, int key_len);
extern void lock_state_read(int key_ptr, int key_len);
extern void unlock_state_read(int key_ptr, int key_len);
extern void lock_state_write(int key_ptr, int key_len);
extern void unlock_state_write(int key_ptr, int key_len);
extern void lock_state_global_read(int key_ptr, int key_len);
extern void unlock_state_global_read(int key_ptr, int key_len);
extern void lock_state_global_write(int key_ptr, int key_len);
extern void unlock_state_global_write(int key_ptr, int key_len);

extern int dlopen(int path_ptr, int path_len);
extern int dlsym(int handle, int name_ptr, int name_len);
extern int dlclose(int handle);

extern int sbrk(int delta);
extern int brk(int addr);
extern int mmap(int len);
extern int munmap(int addr, int len);

extern int open(int path_ptr, int path_len, int flags);
extern int close(int fd);
extern int dup(int fd);
extern int read(int fd, int buf, int len);
extern int write(int fd, int buf, int len);
extern int seek(int fd, int off, int whence);
extern int fstat_size(int path_ptr, int path_len);

extern int socket(int family, int type);
extern int connect(int fd, int host_ptr, int host_len, int port);
extern int bind(int fd, int host_ptr, int host_len, int port);
extern int nsend(int fd, int buf, int len);
extern int nrecv(int fd, int buf, int len);
extern int nclose(int fd);

extern long gettime();
extern int getrandom(int buf, int len);

extern int thread_spawn(int elem_index, int argptr);
extern int thread_join(int tid);
"""

#: Byte-buffer and conversion helpers.
HELPERS = """
void memcpy(int dst, int src, int n) {
    for (int i = 0; i < n; i = i + 1) { storeb(dst + i, loadb(src + i)); }
}

void memset_bytes(int dst, int value, int n) {
    for (int i = 0; i < n; i = i + 1) { storeb(dst + i, value); }
}

int streq(int a, int b, int n) {
    for (int i = 0; i < n; i = i + 1) {
        if (loadb(a + i) != loadb(b + i)) { return 0; }
    }
    return 1;
}

// Render v as decimal into buf; returns the number of bytes written.
int itoa(int v, int buf) {
    int len = 0;
    if (v < 0) { storeb(buf, 45); len = 1; v = 0 - v; }
    if (v == 0) { storeb(buf + len, 48); return len + 1; }
    int[] digits = new int[12];
    int nd = 0;
    while (v > 0) { digits[nd] = v % 10; v = v / 10; nd = nd + 1; }
    while (nd > 0) {
        nd = nd - 1;
        storeb(buf + len, 48 + digits[nd]);
        len = len + 1;
    }
    return len;
}

// Parse a decimal integer from buf[0..n).
int atoi(int buf, int n) {
    int v = 0;
    int sign = 1;
    int i = 0;
    if (n > 0 && loadb(buf) == 45) { sign = 0 - 1; i = 1; }
    while (i < n) {
        int c = loadb(buf + i);
        if (c < 48 || c > 57) { return sign * v; }
        v = v * 10 + (c - 48);
        i = i + 1;
    }
    return sign * v;
}

// Write the call output as the decimal rendering of v.
void output_int(int v) {
    int[] buf = new int[4];
    int n = itoa(v, ptr(buf));
    write_call_output(ptr(buf), n);
}

// Read the whole call input into a fresh buffer; returns its address
// (length available via input_size()).
int read_input_buffer() {
    int n = input_size();
    int[] buf = new int[(n + 4) / 4];
    read_call_input(ptr(buf), n);
    return ptr(buf);
}
"""

PRELUDE = HOST_DECLS + HELPERS


def with_stdlib(source: str) -> str:
    """Prepend the guest standard library to ``source``."""
    return PRELUDE + "\n" + source
