"""Recursive-descent parser for minilang.

Grammar sketch::

    program   := (extern | global | funcdef)*
    extern    := "extern" type IDENT "(" [type ("," type)*] ")" ";"
    global    := "global" type IDENT "=" literal ";"
    funcdef   := ["export"] type IDENT "(" params ")" block
    params    := [type IDENT ("," type IDENT)*]
    type      := ("int" | "long" | "float" | "void") ["[" "]"]
    block     := "{" stmt* "}"
    stmt      := vardecl | assign | if | while | for | parallel_for | return
               | "break" ";" | "continue" ";" | expr ";"
    parallel_for := "parallel_for" "(" "int" IDENT "=" expr ";" expr ";" expr ")" block
    expr      := logical-or with C-like precedence, unary -/!, casts,
                 calls, indexing, "new" type "[" expr "]"
"""

from __future__ import annotations

from . import ast
from .errors import SyntaxErrorML
from .lexer import Token, tokenize

_SCALARS = {"int", "long", "float", "void"}


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind: str, value=None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value=None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            found = self.peek()
            want = value if value is not None else kind
            raise SyntaxErrorML(
                f"expected {want!r}, found {found.value!r}", found.line
            )
        return tok

    def at_type(self) -> bool:
        tok = self.peek()
        return tok.kind == "keyword" and tok.value in _SCALARS

    # -- top level -----------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.peek().kind != "eof":
            if self.accept("keyword", "extern"):
                program.externs.append(self._extern())
            elif self.accept("keyword", "global"):
                program.globals.append(self._global())
            else:
                program.funcs.append(self._funcdef())
        return program

    def _type(self) -> ast.Type:
        tok = self.expect("keyword")
        if tok.value not in _SCALARS:
            raise SyntaxErrorML(f"expected a type, found {tok.value!r}", tok.line)
        is_array = False
        if self.accept("op", "["):
            self.expect("op", "]")
            is_array = True
        if is_array and tok.value == "void":
            raise SyntaxErrorML("void[] is not a type", tok.line)
        return ast.Type(tok.value, is_array)

    def _extern(self) -> ast.ExternDecl:
        rtype = self._type()
        name = self.expect("ident")
        self.expect("op", "(")
        param_types: list[ast.Type] = []
        if not self.accept("op", ")"):
            while True:
                param_types.append(self._type())
                # Parameter name is optional in extern declarations.
                self.accept("ident")
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        self.expect("op", ";")
        return ast.ExternDecl(str(name.value), rtype, param_types, name.line)

    def _global(self) -> ast.GlobalDecl:
        gtype = self._type()
        if gtype.is_array:
            raise SyntaxErrorML("globals must be scalar", self.peek().line)
        name = self.expect("ident")
        self.expect("op", "=")
        sign = -1 if self.accept("op", "-") else 1
        lit = self.next()
        if lit.kind not in ("int", "float"):
            raise SyntaxErrorML("global initialiser must be a literal", lit.line)
        self.expect("op", ";")
        return ast.GlobalDecl(gtype, str(name.value), sign * lit.value, name.line)

    def _funcdef(self) -> ast.FuncDef:
        exported = bool(self.accept("keyword", "export"))
        rtype = self._type()
        name = self.expect("ident")
        self.expect("op", "(")
        params: list[ast.Param] = []
        if not self.accept("op", ")"):
            while True:
                ptype = self._type()
                pname = self.expect("ident")
                params.append(ast.Param(ptype, str(pname.value)))
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        body = self._block()
        return ast.FuncDef(str(name.value), rtype, params, body, exported, name.line)

    # -- statements ------------------------------------------------------------
    def _block(self) -> list[ast.Stmt]:
        self.expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self._stmt())
        return stmts

    def _stmt(self) -> ast.Stmt:
        tok = self.peek()
        if self.at_type():
            return self._vardecl()
        if tok.kind == "keyword":
            if tok.value == "if":
                return self._if()
            if tok.value == "while":
                return self._while()
            if tok.value == "for":
                return self._for()
            if tok.value == "parallel_for":
                return self._parallel_for()
            if tok.value == "return":
                self.next()
                value = None
                if not self.accept("op", ";"):
                    value = self._expr()
                    self.expect("op", ";")
                return ast.Return(tok.line, value)
            if tok.value == "break":
                self.next()
                self.expect("op", ";")
                return ast.Break(tok.line)
            if tok.value == "continue":
                self.next()
                self.expect("op", ";")
                return ast.Continue(tok.line)
        return self._simple_stmt(require_semi=True)

    def _vardecl(self) -> ast.VarDecl:
        line = self.peek().line
        vtype = self._type()
        name = self.expect("ident")
        init = None
        if self.accept("op", "="):
            init = self._expr()
        self.expect("op", ";")
        return ast.VarDecl(line, vtype, str(name.value), init)

    def _simple_stmt(self, require_semi: bool) -> ast.Stmt:
        """An assignment or expression statement (used in for-clauses too)."""
        line = self.peek().line
        if self.at_type():
            # Declaration inside a for-init clause.
            vtype = self._type()
            name = self.expect("ident")
            init = None
            if self.accept("op", "="):
                init = self._expr()
            if require_semi:
                self.expect("op", ";")
            return ast.VarDecl(line, vtype, str(name.value), init)
        expr = self._expr()
        if self.accept("op", "="):
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise SyntaxErrorML("invalid assignment target", line)
            value = self._expr()
            if require_semi:
                self.expect("op", ";")
            return ast.Assign(line, expr, value)
        for compound in ("+=", "-=", "*=", "/=", "%="):
            if self.accept("op", compound):
                if not isinstance(expr, (ast.Var, ast.Index)):
                    raise SyntaxErrorML("invalid assignment target", line)
                rhs = self._expr()
                if require_semi:
                    self.expect("op", ";")
                # Desugar: `a op= b` -> `a = a op b`. For Index targets the
                # address sub-expressions are re-evaluated; minilang has no
                # side-effecting sub-expressions other than calls, which are
                # rare in subscripts, so this matches user expectations.
                value = ast.Binary(line, compound[0], expr, rhs)
                return ast.Assign(line, expr, value)
        if require_semi:
            self.expect("op", ";")
        return ast.ExprStmt(line, expr)

    def _if(self) -> ast.If:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        then_body = self._block()
        else_body: list[ast.Stmt] = []
        if self.accept("keyword", "else"):
            if self.peek().kind == "keyword" and self.peek().value == "if":
                else_body = [self._if()]
            else:
                else_body = self._block()
        return ast.If(line, cond, then_body, else_body)

    def _while(self) -> ast.While:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        return ast.While(line, cond, self._block())

    def _for(self) -> ast.For:
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init = None
        if not self.accept("op", ";"):
            init = self._simple_stmt(require_semi=False)
            self.expect("op", ";")
        cond = None
        if not self.accept("op", ";"):
            cond = self._expr()
            self.expect("op", ";")
        step = None
        if not self.accept("op", ")"):
            step = self._simple_stmt(require_semi=False)
            self.expect("op", ")")
        return ast.For(line, init, cond, step, self._block())

    def _parallel_for(self) -> ast.ParallelFor:
        """``parallel_for (int i = lo; hi; nthreads) block``"""
        line = self.expect("keyword", "parallel_for").line
        self.expect("op", "(")
        self.expect("keyword", "int")
        name = self.expect("ident")
        self.expect("op", "=")
        lo = self._expr()
        self.expect("op", ";")
        hi = self._expr()
        self.expect("op", ";")
        nthreads = self._expr()
        self.expect("op", ")")
        body = self._block()
        return ast.ParallelFor(line, str(name.value), lo, hi, nthreads, body)

    # -- expressions (precedence climbing) ----------------------------------------
    def _expr(self) -> ast.Expr:
        return self._or()

    def _or(self) -> ast.Expr:
        lhs = self._and()
        while self.peek().kind == "op" and self.peek().value == "||":
            line = self.next().line
            lhs = ast.Binary(line, "||", lhs, self._and())
        return lhs

    def _and(self) -> ast.Expr:
        lhs = self._equality()
        while self.peek().kind == "op" and self.peek().value == "&&":
            line = self.next().line
            lhs = ast.Binary(line, "&&", lhs, self._equality())
        return lhs

    def _equality(self) -> ast.Expr:
        lhs = self._relational()
        while self.peek().kind == "op" and self.peek().value in ("==", "!="):
            op = self.next()
            lhs = ast.Binary(op.line, str(op.value), lhs, self._relational())
        return lhs

    def _relational(self) -> ast.Expr:
        lhs = self._additive()
        while self.peek().kind == "op" and self.peek().value in ("<", "<=", ">", ">="):
            op = self.next()
            lhs = ast.Binary(op.line, str(op.value), lhs, self._additive())
        return lhs

    def _additive(self) -> ast.Expr:
        lhs = self._multiplicative()
        while self.peek().kind == "op" and self.peek().value in ("+", "-"):
            op = self.next()
            lhs = ast.Binary(op.line, str(op.value), lhs, self._multiplicative())
        return lhs

    def _multiplicative(self) -> ast.Expr:
        lhs = self._unary()
        while self.peek().kind == "op" and self.peek().value in ("*", "/", "%"):
            op = self.next()
            lhs = ast.Binary(op.line, str(op.value), lhs, self._unary())
        return lhs

    def _unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.value == "-":
            self.next()
            return ast.Unary(tok.line, "-", self._unary())
        if tok.kind == "op" and tok.value == "!":
            self.next()
            return ast.Unary(tok.line, "!", self._unary())
        # Cast: "(" type ")" unary — only when the parenthesised token is a type.
        if (
            tok.kind == "op"
            and tok.value == "("
            and self.peek(1).kind == "keyword"
            and self.peek(1).value in _SCALARS
            and self.peek(2).kind == "op"
            and self.peek(2).value == ")"
        ):
            self.next()
            target = self._type()
            self.expect("op", ")")
            return ast.Cast(tok.line, target, self._unary())
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.value == "[":
                self.next()
                index = self._expr()
                self.expect("op", "]")
                expr = ast.Index(tok.line, expr, index)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        tok = self.next()
        if tok.kind == "int":
            return ast.IntLit(tok.line, int(tok.value))
        if tok.kind == "float":
            return ast.FloatLit(tok.line, float(tok.value))
        if tok.kind == "string":
            return ast.StrLit(tok.line, bytes(tok.value))
        if tok.kind == "keyword" and tok.value in ("true", "false"):
            return ast.IntLit(tok.line, 1 if tok.value == "true" else 0)
        if tok.kind == "keyword" and tok.value == "new":
            elem_tok = self.expect("keyword")
            if elem_tok.value not in ("int", "long", "float"):
                raise SyntaxErrorML(
                    f"cannot allocate array of {elem_tok.value!r}", elem_tok.line
                )
            element = ast.Type(str(elem_tok.value))
            self.expect("op", "[")
            length = self._expr()
            self.expect("op", "]")
            return ast.NewArray(tok.line, element, length)
        if tok.kind == "ident":
            if self.accept("op", "("):
                args: list[ast.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self._expr())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                return ast.Call(tok.line, str(tok.value), args)
            return ast.Var(tok.line, str(tok.value))
        if tok.kind == "op" and tok.value == "(":
            expr = self._expr()
            self.expect("op", ")")
            return expr
        raise SyntaxErrorML(f"unexpected token {tok.value!r}", tok.line)


def parse(source: str) -> ast.Program:
    """Parse minilang source into an AST."""
    return Parser(tokenize(source)).parse_program()
