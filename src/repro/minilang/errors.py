"""Errors raised by the minilang toolchain."""

from __future__ import annotations


class MinilangError(Exception):
    """Base class for minilang toolchain errors."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LexError(MinilangError):
    """The source text contained an invalid token."""


class SyntaxErrorML(MinilangError):
    """The token stream did not match the grammar."""


class TypeErrorML(MinilangError):
    """A semantic/type error (undeclared name, type mismatch, bad call)."""
