"""Abstract syntax tree for minilang."""

from __future__ import annotations

from dataclasses import dataclass, field

# ----------------------------------------------------------------------
# Types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """A minilang type: ``int`` (i32), ``long`` (i64), ``float`` (f64),
    ``void``, or an array of a scalar element type."""

    name: str  # "int", "long", "float", "void"
    is_array: bool = False

    def __str__(self) -> str:
        return f"{self.name}[]" if self.is_array else self.name

    @property
    def element(self) -> "Type":
        if not self.is_array:
            raise ValueError(f"{self} is not an array type")
        return Type(self.name)

    @property
    def element_size(self) -> int:
        return {"int": 4, "long": 8, "float": 8}[self.name]


INT = Type("int")
LONG = Type("long")
FLOAT = Type("float")
VOID = Type("void")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StrLit(Expr):
    """A string literal: evaluates to the i32 address of its NUL-terminated
    bytes, interned in a data segment."""

    value: bytes = b""


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # "-", "!"
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass
class Cast(Expr):
    target: Type = INT
    operand: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    array: Expr | None = None
    index: Expr | None = None


@dataclass
class NewArray(Expr):
    element: Type = INT
    length: Expr | None = None


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class VarDecl(Stmt):
    type: Type = INT
    name: str = ""
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    target: Expr | None = None  # Var or Index
    value: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class ParallelFor(Stmt):
    """``parallel_for (int i = lo; hi; nthreads) { body }`` — a fork-join
    parallel region. The body is outlined into a hidden worker function;
    the half-open range ``[lo, hi)`` is split into ``nthreads`` contiguous
    chunks, each executed by a guest thread over the shared linear memory.
    Enclosing scalars are captured by value (read-only inside the body);
    arrays are shared through their base address."""

    var: str = ""
    lo: Expr | None = None
    hi: Expr | None = None
    nthreads: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------


@dataclass
class Param:
    type: Type
    name: str


@dataclass
class FuncDef:
    name: str
    return_type: Type
    params: list[Param]
    body: list[Stmt]
    exported: bool = False
    line: int = 0


@dataclass
class ExternDecl:
    """A host-interface import: ``extern int foo(int, int);``
    imported from the ``env`` module."""

    name: str
    return_type: Type
    param_types: list[Type]
    line: int = 0


@dataclass
class GlobalDecl:
    type: Type
    name: str
    init: int | float = 0
    line: int = 0


@dataclass
class Program:
    externs: list[ExternDecl] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
    funcs: list[FuncDef] = field(default_factory=list)
