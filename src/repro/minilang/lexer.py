"""Lexer for minilang, the small typed language compiled to the wasm VM.

Minilang plays the role of the paper's C/C++ front end (§3.4 phase 1): the
Polybench kernels of Fig. 9a and the guest sides of several examples are
written in it and compiled, validated and executed inside Faaslets.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import LexError

KEYWORDS = {
    "int", "long", "float", "void",
    "if", "else", "while", "for", "return", "break", "continue",
    "new", "export", "extern", "global", "true", "false",
    "parallel_for",
}

#: Multi-character operators, longest first.
_OPERATORS = [
    "&&", "||", "==", "!=", "<=", ">=",
    "+=", "-=", "*=", "/=", "%=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "int", "float", "string", "ident", "keyword", "op", "eof"
    value: str | int | float | bytes
    line: int


def tokenize(source: str) -> list[Token]:
    """Convert minilang source text into a token list (ending with eof)."""
    tokens: list[Token] = []
    i, n, line = 0, len(source), 1
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r":
            i += 1
        elif source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
        elif source.startswith("/*", i):
            end = source.find("*/", i)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
        elif c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and (source[j] in "0123456789abcdefABCDEF_"):
                    j += 1
                tokens.append(Token("int", int(source[i:j].replace("_", ""), 16), line))
                i = j
                continue
            while j < n and (source[j].isdigit() or source[j] == "_"):
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and (source[j].isdigit() or source[j] == "_"):
                    j += 1
            if j < n and source[j] in "eE":
                is_float = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j].replace("_", "")
            if is_float:
                tokens.append(Token("float", float(text), line))
            else:
                tokens.append(Token("int", int(text), line))
            i = j
        elif c == '"':
            j = i + 1
            out = bytearray()
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    esc = source[j + 1] if j + 1 < n else ""
                    mapped = {"n": b"\n", "t": b"\t", "0": b"\x00",
                              '"': b'"', "\\": b"\\"}.get(esc)
                    if mapped is None:
                        raise LexError(f"bad escape \\{esc}", line)
                    out += mapped
                    j += 2
                else:
                    if source[j] == "\n":
                        raise LexError("unterminated string literal", line)
                    out += source[j].encode("utf-8")
                    j += 1
            if j >= n:
                raise LexError("unterminated string literal", line)
            tokens.append(Token("string", bytes(out), line))
            i = j + 1
        elif c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            i = j
        else:
            for op in _OPERATORS:
                if source.startswith(op, i):
                    tokens.append(Token("op", op, line))
                    i += len(op)
                    break
            else:
                raise LexError(f"unexpected character {c!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
