"""The Faaslet host interface (Tab. 2).

This is the trusted virtualisation layer between guest code and the host:
every function here runs outside the sandbox's memory-safety bounds and is
therefore written defensively — guest-supplied pointers/lengths are only
ever dereferenced through the linear memory's bounds-checked accessors, and
failures surface to the guest as ``-1`` returns (POSIX style) rather than
host exceptions.

All functions are imported by guests from the ``env`` module. Pointer-typed
guest arguments are i32 offsets into the Faaslet's linear memory; byte
arrays are (ptr, len) pairs, matching the paper's byte-array-everywhere
design ("avoids the need to serialise and copy data as it passes through
the API").
"""

from __future__ import annotations

import logging
import struct

from repro.faaslet.netns import NetworkPolicyError
from repro.state.kv import StateKeyError
from repro.telemetry import span
from repro.wasm import FuncType, HostFunc
from repro.wasm.types import I32, I64
from repro.wasm.values import to_signed32

from .filesystem import FilesystemError

logger = logging.getLogger(__name__)

_I32 = I32
_U32 = struct.Struct("<I")


def _read_str(faaslet, ptr: int, length: int) -> str:
    return faaslet.instance.memory.read(ptr, length).decode("utf-8")


def _read_bytes(faaslet, ptr: int, length: int) -> bytes:
    return faaslet.instance.memory.read(ptr, length)


def _write_bytes(faaslet, ptr: int, data: bytes) -> None:
    faaslet.instance.memory.write(ptr, data)


def build_host_imports(faaslet) -> dict[tuple[str, str], HostFunc]:
    """Build the full Tab. 2 import set bound to one Faaslet.

    The ``faaslet`` is duck-typed: it must expose ``instance`` (wasm
    instance), ``env`` (a :class:`~repro.host.environment.FaasletEnvironment`),
    ``netns``, ``filesystem``, call-context fields (``input_data``,
    ``output_data``) and the region-mapping helper ``map_state_region``.
    """
    env = faaslet.env
    imports: dict[tuple[str, str], HostFunc] = {}

    def export(name: str, params, results):
        """Decorator registering a host function under ``env.<name>``."""

        def wrap(fn):
            imports[("env", name)] = HostFunc(
                "env", name, FuncType(tuple(params), tuple(results)), fn
            )
            return fn

        return wrap

    # ------------------------------------------------------------------
    # Standard calls: input/output and chaining
    # ------------------------------------------------------------------
    @export("input_size", (), (I32,))
    def input_size():
        return len(faaslet.input_data)

    @export("read_call_input", (I32, I32), (I32,))
    def read_call_input(ptr, length):
        data = faaslet.input_data[:length]
        _write_bytes(faaslet, ptr, data)
        return len(data)

    @export("write_call_output", (I32, I32), ())
    def write_call_output(ptr, length):
        faaslet.output_data += _read_bytes(faaslet, ptr, length)

    @export("chain_call", (I32, I32, I32, I32), (I32,))
    def chain_call(name_ptr, name_len, in_ptr, in_len):
        name = _read_str(faaslet, name_ptr, name_len)
        payload = _read_bytes(faaslet, in_ptr, in_len)
        try:
            return env.chain_call(name, payload)
        except Exception:
            logger.exception("chain_call(%s) failed", name)
            return -1

    @export("await_call", (I32,), (I32,))
    def await_call(call_id):
        try:
            return env.await_call(to_signed32(call_id))
        except Exception:
            logger.exception("await_call(%s) failed", call_id)
            return -1

    @export("get_call_output_size", (I32,), (I32,))
    def get_call_output_size(call_id):
        try:
            return len(env.get_call_output(to_signed32(call_id)))
        except Exception:
            return -1

    @export("get_call_output", (I32, I32, I32), (I32,))
    def get_call_output(call_id, ptr, length):
        try:
            data = env.get_call_output(to_signed32(call_id))[:length]
        except Exception:
            return -1
        _write_bytes(faaslet, ptr, data)
        return len(data)

    # ------------------------------------------------------------------
    # State API
    # ------------------------------------------------------------------
    def _key(ptr, length) -> str:
        return _read_str(faaslet, ptr, length)

    def _access(key: str, mode: str, start: int, end: int) -> None:
        """Record a byte-range touch for the trace miner's access
        profiles. Tracing off: one ContextVar read (span() is a no-op);
        mapped-region accesses after the first map never come through
        here, so this rides the per-call host-interface rate."""
        sp = span("state.access", key=key, mode=mode)
        if sp.recording:
            with sp:
                sp.set_attr("ranges", [(start, end)])

    @export("get_state", (I32, I32, I32), (I32,))
    def get_state(kptr, klen, size):
        """Map the state value's shared region into this Faaslet's memory
        and return the guest address of the value (§3.3 + §4.2)."""
        key = _key(kptr, klen)
        try:
            base = faaslet.map_state_region(key, size or None)
        except StateKeyError:
            return -1
        _access(key, "read", 0, size or env.state.tier.replica(key).value_size)
        return base

    @export("get_state_offset", (I32, I32, I32, I32), (I32,))
    def get_state_offset(kptr, klen, offset, length):
        key = _key(kptr, klen)
        try:
            env.state.tier.pull_chunk(key, offset, length)
            base = faaslet.map_state_region(key, None, pull=False)
        except StateKeyError:
            return -1
        _access(key, "read", offset, offset + length)
        return base + offset

    @export("set_state", (I32, I32, I32, I32), ())
    def set_state(kptr, klen, vptr, vlen):
        key = _key(kptr, klen)
        # Zero-copy: guest pages stream straight into the replica's shared
        # region (no intermediate bytes object for the whole value).
        env.state.set_state_from_memory(
            key, faaslet.instance.memory, vptr, vlen, size=vlen
        )
        _access(key, "write", 0, vlen)

    @export("set_state_offset", (I32, I32, I32, I32, I32), ())
    def set_state_offset(kptr, klen, vptr, vlen, offset):
        key = _key(kptr, klen)
        env.state.set_state_from_memory(
            key, faaslet.instance.memory, vptr, vlen, offset=offset
        )
        _access(key, "write", offset, offset + vlen)

    @export("push_state", (I32, I32), ())
    def push_state(kptr, klen):
        env.state.push_state(_key(kptr, klen))

    @export("push_state_offset", (I32, I32, I32, I32), ())
    def push_state_offset(kptr, klen, offset, length):
        env.state.push_state_offset(_key(kptr, klen), offset, length)

    @export("pull_state", (I32, I32), ())
    def pull_state(kptr, klen):
        env.state.pull_state(_key(kptr, klen))

    @export("pull_state_offset", (I32, I32, I32, I32), ())
    def pull_state_offset(kptr, klen, offset, length):
        env.state.pull_state_offset(_key(kptr, klen), offset, length)

    @export("append_state", (I32, I32, I32, I32), ())
    def append_state(kptr, klen, vptr, vlen):
        env.state.append_state(_key(kptr, klen), _read_bytes(faaslet, vptr, vlen))

    @export("state_size", (I32, I32), (I32,))
    def state_size(kptr, klen):
        try:
            return env.state.state_size(_key(kptr, klen))
        except StateKeyError:
            return -1

    @export("prefetch_state", (I32, I32), (I32,))
    def prefetch_state(kptr, klen):
        # Guest-directed delivery hint (DESIGN.md §10): start pulling the
        # key in the background so a later get_state finds it resident.
        # Advisory — returns 1 if a prefetch was started, 0 otherwise
        # (delivery off, key unknown, or env without a prefetcher).
        prefetcher = getattr(env, "prefetcher", None)
        if prefetcher is None:
            return 0
        return 1 if prefetcher.hint(_key(kptr, klen)) else 0

    for lock_name in (
        "lock_state_read",
        "unlock_state_read",
        "lock_state_write",
        "unlock_state_write",
        "lock_state_global_read",
        "unlock_state_global_read",
        "lock_state_global_write",
        "unlock_state_global_write",
    ):
        def _make_lock(method_name):
            method = getattr(env.state, method_name)

            def lock_fn(kptr, klen):
                method(_key(kptr, klen))

            return lock_fn

        imports[("env", lock_name)] = HostFunc(
            "env", lock_name, FuncType((I32, I32), ()), _make_lock(lock_name)
        )

    # ------------------------------------------------------------------
    # Dynamic linking
    # ------------------------------------------------------------------
    @export("dlopen", (I32, I32), (I32,))
    def dlopen(path_ptr, path_len):
        path = _read_str(faaslet, path_ptr, path_len)
        try:
            return faaslet.dlopen(path)
        except Exception:
            logger.exception("dlopen(%s) failed", path)
            return -1

    @export("dlsym", (I32, I32, I32), (I32,))
    def dlsym(handle, name_ptr, name_len):
        name = _read_str(faaslet, name_ptr, name_len)
        try:
            return faaslet.dlsym(to_signed32(handle), name)
        except Exception:
            return -1

    @export("dlclose", (I32,), (I32,))
    def dlclose(handle):
        return faaslet.dlclose(to_signed32(handle))

    # ------------------------------------------------------------------
    # Memory management (grow/shrink only, per Tab. 2)
    # ------------------------------------------------------------------
    @export("sbrk", (I32,), (I32,))
    def sbrk(delta):
        return faaslet.sbrk(to_signed32(delta))

    @export("brk", (I32,), (I32,))
    def brk(addr):
        current = faaslet.brk_value()
        if addr == 0:
            return current
        if faaslet.sbrk(addr - current) == -1:
            return -1
        return 0

    @export("mmap", (I32,), (I32,))
    def mmap(length):
        # Anonymous, private, grow-only mapping at the end of linear memory.
        return faaslet.sbrk_pages(length)

    @export("munmap", (I32, I32), (I32,))
    def munmap(addr, length):
        # Linear memory never shrinks (as in WebAssembly); success no-op.
        return 0

    # ------------------------------------------------------------------
    # Networking (client-side only, via the virtual interface)
    # ------------------------------------------------------------------
    @export("socket", (I32, I32), (I32,))
    def socket(family, sock_type):
        try:
            return faaslet.netns.socket(family, sock_type)
        except NetworkPolicyError:
            return -1

    @export("connect", (I32, I32, I32, I32), (I32,))
    def connect(fd, host_ptr, host_len, port):
        try:
            faaslet.netns.connect(fd, _read_str(faaslet, host_ptr, host_len), port)
            return 0
        except (OSError, NetworkPolicyError):
            return -1

    @export("bind", (I32, I32, I32, I32), (I32,))
    def bind(fd, host_ptr, host_len, port):
        try:
            faaslet.netns.bind(fd, _read_str(faaslet, host_ptr, host_len), port)
            return 0
        except (OSError, NetworkPolicyError):
            return -1

    @export("nsend", (I32, I32, I32), (I32,))
    def nsend(fd, ptr, length):
        try:
            sent, _delay = faaslet.netns.send(fd, _read_bytes(faaslet, ptr, length))
            return sent
        except OSError:
            return -1

    @export("nrecv", (I32, I32, I32), (I32,))
    def nrecv(fd, ptr, length):
        try:
            data, _delay = faaslet.netns.recv(fd, length)
        except OSError:
            return -1
        _write_bytes(faaslet, ptr, data)
        return len(data)

    @export("nclose", (I32,), (I32,))
    def nclose(fd):
        faaslet.netns.close(fd)
        return 0

    # ------------------------------------------------------------------
    # File I/O (per-user virtual filesystem, WASI capability model)
    # ------------------------------------------------------------------
    @export("open", (I32, I32, I32), (I32,))
    def open_(path_ptr, path_len, flags):
        try:
            return faaslet.filesystem.open(_read_str(faaslet, path_ptr, path_len), flags)
        except FilesystemError:
            return -1

    @export("close", (I32,), (I32,))
    def close_(fd):
        try:
            faaslet.filesystem.close(fd)
            return 0
        except FilesystemError:
            return -1

    @export("dup", (I32,), (I32,))
    def dup(fd):
        try:
            return faaslet.filesystem.dup(fd)
        except FilesystemError:
            return -1

    @export("read", (I32, I32, I32), (I32,))
    def read(fd, ptr, length):
        try:
            data = faaslet.filesystem.read(fd, length)
        except FilesystemError:
            return -1
        _write_bytes(faaslet, ptr, data)
        return len(data)

    @export("write", (I32, I32, I32), (I32,))
    def write(fd, ptr, length):
        try:
            return faaslet.filesystem.write(fd, _read_bytes(faaslet, ptr, length))
        except FilesystemError:
            return -1

    @export("seek", (I32, I32, I32), (I32,))
    def seek(fd, offset, whence):
        try:
            return faaslet.filesystem.seek(fd, to_signed32(offset), whence)
        except FilesystemError:
            return -1

    @export("fstat_size", (I32, I32), (I32,))
    def fstat_size(path_ptr, path_len):
        try:
            return faaslet.filesystem.stat(_read_str(faaslet, path_ptr, path_len)).size
        except FilesystemError:
            return -1

    # ------------------------------------------------------------------
    # Guest threads (intra-Faaslet fork-join parallelism)
    # ------------------------------------------------------------------
    @export("thread_spawn", (I32, I32), (I32,))
    def thread_spawn(elem_index, argptr):
        # Spawn errors are traps (GuestThreadError), not -1 returns: a bad
        # spawn target is a program bug, not a recoverable I/O condition.
        return faaslet.thread_spawn(elem_index, argptr)

    @export("thread_join", (I32,), (I32,))
    def thread_join(tid):
        return faaslet.thread_join(to_signed32(tid))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    @export("gettime", (), (I64,))
    def gettime():
        return env.current_time_ns()

    @export("getrandom", (I32, I32), (I32,))
    def getrandom(ptr, length):
        data = env.random_bytes(length)
        _write_bytes(faaslet, ptr, data)
        return len(data)

    return imports
