"""``repro.host`` — the Faaslet host interface (Tab. 2) and its backing
virtualisation: the WASI-capability filesystem and the environment contract
binding Faaslets to an embedding runtime."""

from .environment import ChainError, FaasletEnvironment, StandaloneEnvironment
from .filesystem import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    FileStat,
    FilesystemError,
    GlobalObjectStore,
    VirtualFilesystem,
)
from .interface import build_host_imports

__all__ = [
    "ChainError",
    "FaasletEnvironment",
    "FileStat",
    "FilesystemError",
    "GlobalObjectStore",
    "O_APPEND",
    "O_CREAT",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "SEEK_CUR",
    "SEEK_END",
    "SEEK_SET",
    "StandaloneEnvironment",
    "VirtualFilesystem",
    "build_host_imports",
]
