"""The environment a Faaslet's host interface is bound to.

The host interface (Tab. 2) needs capabilities that belong to the embedding
runtime: function chaining, the state API for the local host, a virtual
filesystem, network endpoints, a clock and randomness. This module defines
the :class:`FaasletEnvironment` contract and a self-contained
:class:`StandaloneEnvironment` used by tests and single-Faaslet examples;
the FAASM runtime provides its own implementation wired into the scheduler
and message bus.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod

from repro.faaslet.netns import NetworkNamespace
from repro.state.api import StateAPI
from repro.state.kv import GlobalStateStore, StateClient
from repro.state.local import LocalTier
from repro.wasm.module import Module

from .filesystem import GlobalObjectStore, VirtualFilesystem


class ChainError(RuntimeError):
    """A chained-call operation failed (unknown function, bad call id)."""


class FaasletEnvironment(ABC):
    """Capabilities the host interface draws on, supplied by the embedder."""

    state: StateAPI
    filesystem: VirtualFilesystem
    netns: NetworkNamespace

    def filesystem_for(self, user: str) -> VirtualFilesystem:
        """The per-user filesystem view (Tab. 2: "per-user virtual
        filesystem access"). Defaults to one cached view per user over the
        same global object store."""
        cache = getattr(self, "_user_filesystems", None)
        if cache is None:
            cache = self._user_filesystems = {self.filesystem.user: self.filesystem}
        vfs = cache.get(user)
        if vfs is None:
            vfs = cache[user] = VirtualFilesystem(self.filesystem.store, user)
        return vfs

    @abstractmethod
    def chain_call(self, name: str, input_data: bytes) -> int:
        """Invoke function ``name`` asynchronously; returns a call id."""

    @abstractmethod
    def await_call(self, call_id: int) -> int:
        """Block until ``call_id`` finishes; returns its exit code."""

    @abstractmethod
    def get_call_output(self, call_id: int) -> bytes:
        """Output bytes of a completed chained call."""

    def current_time_ns(self) -> int:
        """Per-user monotonic clock (Tab. 2 ``gettime``)."""
        return time.monotonic_ns()

    def random_bytes(self, n: int) -> bytes:
        """Tab. 2 ``getrandom`` — backed by the host's ``/dev/urandom``."""
        return os.urandom(n)

    def load_module(self, path: str, filesystem: VirtualFilesystem | None = None) -> Module:
        """Load, compile if necessary, and validate a module for ``dlopen``.

        ``.wat`` files are assembled; ``.ml`` files are compiled with the
        minilang toolchain. Both pass through trusted validation, as §3.2
        requires for dynamically loaded code. ``filesystem`` scopes the
        lookup to the calling Faaslet's capability view.
        """
        from repro.minilang import build as build_minilang
        from repro.wasm import parse_module, validate_module

        data = (filesystem or self.filesystem).read_file(path)
        text = data.decode("utf-8")
        if path.endswith(".ml"):
            return build_minilang(text)
        module = parse_module(text)
        validate_module(module)
        return module


class StandaloneEnvironment(FaasletEnvironment):
    """A one-host environment with synchronous chaining.

    Chained functions run immediately (depth-first) via a name → callable
    registry; each callable receives the input bytes and returns output
    bytes. Enough to exercise the full host interface without the runtime.
    """

    def __init__(
        self,
        store: GlobalStateStore | None = None,
        object_store: GlobalObjectStore | None = None,
        host: str = "standalone",
        user: str = "default",
    ):
        self.global_state = store or GlobalStateStore()
        self.object_store = object_store or GlobalObjectStore()
        self.state = StateAPI(LocalTier(host, StateClient(self.global_state)))
        self.filesystem = VirtualFilesystem(self.object_store, user)
        self.netns = NetworkNamespace(f"ns-{host}")
        self.functions: dict[str, "callable"] = {}
        self._outputs: dict[int, bytes] = {}
        self._codes: dict[int, int] = {}
        self._next_call_id = 1

    def register_function(self, name: str, fn) -> None:
        """Register ``fn(input_bytes) -> bytes`` as a chainable function."""
        self.functions[name] = fn

    def chain_call(self, name: str, input_data: bytes) -> int:
        fn = self.functions.get(name)
        if fn is None:
            raise ChainError(f"unknown function {name!r}")
        call_id = self._next_call_id
        self._next_call_id += 1
        try:
            output = fn(bytes(input_data))
            self._outputs[call_id] = bytes(output) if output is not None else b""
            self._codes[call_id] = 0
        except Exception:
            self._outputs[call_id] = b""
            self._codes[call_id] = 1
        return call_id

    def await_call(self, call_id: int) -> int:
        if call_id not in self._codes:
            raise ChainError(f"unknown call id {call_id}")
        return self._codes[call_id]

    def get_call_output(self, call_id: int) -> bytes:
        if call_id not in self._outputs:
            raise ChainError(f"unknown call id {call_id}")
        return self._outputs[call_id]
