"""Read-global write-local virtual filesystem with capability handles (§3.1).

Faaslets see a filesystem assembled from two layers:

* a **global object store** of read-only files shared by every host (the
  paper backs this with S3/the platform object store) — used for library
  code, datasets and dynamically loaded modules;
* a **local write layer** private to the Faaslet's user — writes (e.g.
  CPython's cached bytecode) land here and shadow the global layer.

Access follows the WASI capability model: the only way to reach a file is
through an unforgeable descriptor returned by ``open``; there is no
ambient root to escape to, so no chroot or layered filesystem is needed —
which is precisely why Faaslet cold starts avoid that cost (§3.1).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class FilesystemError(OSError):
    """A filesystem operation failed (bad path, bad descriptor, policy)."""


def _normalise(path: str) -> str:
    """Normalise a path, rejecting escapes above the virtual root."""
    parts: list[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if not parts:
                raise FilesystemError(f"path {path!r} escapes the filesystem root")
            parts.pop()
        else:
            parts.append(part)
    return "/".join(parts)


class GlobalObjectStore:
    """The shared, read-only file layer (one per cluster)."""

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}
        self._mutex = threading.Lock()

    def upload(self, path: str, data: bytes) -> None:
        """Publish a file to every host (the paper's upload service writes
        object files here)."""
        with self._mutex:
            self._files[_normalise(path)] = bytes(data)

    def get(self, path: str) -> bytes | None:
        with self._mutex:
            return self._files.get(_normalise(path))

    def exists(self, path: str) -> bool:
        with self._mutex:
            return _normalise(path) in self._files

    def list(self, prefix: str = "") -> list[str]:
        prefix = _normalise(prefix)
        with self._mutex:
            return sorted(
                p for p in self._files if not prefix or p.startswith(prefix)
            )


@dataclass
class _OpenFile:
    path: str
    flags: int
    buffer: bytearray
    position: int = 0
    #: Whether the buffer is the private local copy (writable).
    local: bool = False


@dataclass
class FileStat:
    size: int
    local: bool


class VirtualFilesystem:
    """One user's capability-scoped view: global layer + private writes."""

    def __init__(self, store: GlobalObjectStore, user: str = "default"):
        self.store = store
        self.user = user
        self._local: dict[str, bytearray] = {}
        self._fds: dict[int, _OpenFile] = {}
        self._next_fd = 3

    # ------------------------------------------------------------------
    def open(self, path: str, flags: int = O_RDONLY) -> int:
        path = _normalise(path)
        writable = flags & (O_WRONLY | O_RDWR | O_APPEND)
        local = self._local.get(path)
        if local is not None:
            buffer = local if writable else bytearray(local)
            is_local = bool(writable)
        else:
            global_data = self.store.get(path)
            if global_data is None:
                if not flags & O_CREAT:
                    raise FilesystemError(f"no such file: {path!r}")
                buffer = self._local.setdefault(path, bytearray())
                is_local = True
            elif writable:
                # Copy-up: writes shadow the global layer locally.
                buffer = self._local.setdefault(path, bytearray(global_data))
                is_local = True
            else:
                buffer = bytearray(global_data)
                is_local = False
        if flags & O_TRUNC and writable:
            del buffer[:]
        fd = self._next_fd
        self._next_fd += 1
        handle = _OpenFile(path, flags, buffer, local=is_local)
        if flags & O_APPEND:
            handle.position = len(buffer)
        self._fds[fd] = handle
        return fd

    def close(self, fd: int) -> None:
        if fd not in self._fds:
            raise FilesystemError(f"bad file descriptor {fd}")
        del self._fds[fd]

    def dup(self, fd: int) -> int:
        handle = self._handle(fd)
        new_fd = self._next_fd
        self._next_fd += 1
        self._fds[new_fd] = _OpenFile(
            handle.path, handle.flags, handle.buffer, handle.position, handle.local
        )
        return new_fd

    def read(self, fd: int, nbytes: int) -> bytes:
        handle = self._handle(fd)
        if handle.flags & O_WRONLY:
            raise FilesystemError(f"descriptor {fd} is write-only")
        data = bytes(handle.buffer[handle.position : handle.position + nbytes])
        handle.position += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        handle = self._handle(fd)
        if not handle.flags & (O_WRONLY | O_RDWR | O_APPEND):
            raise FilesystemError(f"descriptor {fd} is read-only")
        end = handle.position + len(data)
        if end > len(handle.buffer):
            handle.buffer.extend(b"\x00" * (end - len(handle.buffer)))
        handle.buffer[handle.position : end] = data
        handle.position = end
        return len(data)

    def seek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        handle = self._handle(fd)
        if whence == SEEK_SET:
            pos = offset
        elif whence == SEEK_CUR:
            pos = handle.position + offset
        elif whence == SEEK_END:
            pos = len(handle.buffer) + offset
        else:
            raise FilesystemError(f"bad whence {whence}")
        if pos < 0:
            raise FilesystemError("seek before start of file")
        handle.position = pos
        return pos

    # ------------------------------------------------------------------
    def stat(self, path: str) -> FileStat:
        path = _normalise(path)
        local = self._local.get(path)
        if local is not None:
            return FileStat(len(local), True)
        data = self.store.get(path)
        if data is None:
            raise FilesystemError(f"no such file: {path!r}")
        return FileStat(len(data), False)

    def exists(self, path: str) -> bool:
        path = _normalise(path)
        return path in self._local or self.store.exists(path)

    def read_file(self, path: str) -> bytes:
        """Whole-file convenience used by dynamic linking."""
        fd = self.open(path, O_RDONLY)
        try:
            return self.read(fd, len(self._handle(fd).buffer))
        finally:
            self.close(fd)

    def local_bytes(self) -> int:
        """Size of the private write layer (memory accounting)."""
        return sum(len(b) for b in self._local.values())

    def _handle(self, fd: int) -> _OpenFile:
        handle = self._fds.get(fd)
        if handle is None:
            raise FilesystemError(f"bad file descriptor {fd}")
        return handle
