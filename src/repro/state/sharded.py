"""A sharded global tier (the paper's §7 "autoscaling storage" direction).

The paper's global tier is one Redis deployment and notes that systems like
Anna, Tuba and Pocket would shard and autoscale it. This module provides
that extension: a drop-in :class:`GlobalStateStore` replacement that
partitions keys over N shards by stable hashing, with per-shard accounting
so experiments can observe load distribution — and a resharding operation
that grows the shard count while preserving every key (the "autoscaling"
step, done stop-the-world as Tuba does within constraints).

``ShardedStateStore`` is API-compatible with ``GlobalStateStore``: the
whole runtime (StateClient, LocalTier, scheduler warm sets) works unchanged
on top of it.
"""

from __future__ import annotations

import hashlib
import threading

from .kv import GlobalStateStore
from .rwlock import RWLock


def _stable_hash(key: str) -> int:
    return int.from_bytes(hashlib.blake2s(key.encode(), digest_size=8).digest(), "big")


class ShardedStateStore:
    """Key-partitioned global tier with per-shard accounting."""

    def __init__(self, n_shards: int = 4):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self._shards = [GlobalStateStore() for _ in range(n_shards)]
        self._mutex = threading.Lock()
        #: Operations routed to each shard (load-balance observability).
        self.shard_ops = [0] * n_shards

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_for(self, key: str) -> int:
        return _stable_hash(key) % len(self._shards)

    def _route(self, key: str) -> GlobalStateStore:
        index = self.shard_for(key)
        with self._mutex:
            self.shard_ops[index] += 1
        return self._shards[index]

    # ------------------------------------------------------------------
    # GlobalStateStore API (delegated per key)
    # ------------------------------------------------------------------
    def set_value(self, key, value):
        self._route(key).set_value(key, value)

    def get_value(self, key):
        return self._route(key).get_value(key)

    def get_value_versioned(self, key):
        return self._route(key).get_value_versioned(key)

    def get_range(self, key, offset, length):
        return self._route(key).get_range(key, offset, length)

    def get_ranges_into(self, key, dests):
        """Batched zero-copy multi-range read (one routed call)."""
        return self._route(key).get_ranges_into(key, dests)

    def get_ranges_into_versioned(self, key, dests):
        return self._route(key).get_ranges_into_versioned(key, dests)

    def set_range(self, key, offset, data):
        self._route(key).set_range(key, offset, data)

    def set_ranges(self, key, parts, truncate_to=None):
        """Batched multi-range write (one routed call)."""
        return self._route(key).set_ranges(key, parts, truncate_to)

    def set_ranges_versioned(self, key, parts, truncate_to=None):
        return self._route(key).set_ranges_versioned(key, parts, truncate_to)

    def append(self, key, data):
        self._route(key).append(key, data)

    def delete(self, key):
        self._route(key).delete(key)

    def exists(self, key):
        return self._route(key).exists(key)

    def size(self, key):
        return self._route(key).size(key)

    def version(self, key):
        return self._route(key).version(key)

    def lock_for(self, key) -> RWLock:
        return self._route(key).lock_for(key)

    def atomic_update(self, key, fn):
        return self._route(key).atomic_update(key, fn)

    def keys(self) -> list[str]:
        out: list[str] = []
        for shard in self._shards:
            out.extend(shard.keys())
        return sorted(out)

    def total_bytes(self) -> int:
        return sum(shard.total_bytes() for shard in self._shards)

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------
    def shard_sizes(self) -> list[int]:
        """Bytes stored per shard."""
        return [shard.total_bytes() for shard in self._shards]

    def reshard(self, n_shards: int) -> int:
        """Repartition onto ``n_shards`` shards; returns keys moved.

        Stop-the-world: concurrent writers must be quiesced by the caller
        (the runtime performs resharding between scheduling epochs).
        """
        if n_shards < 1:
            raise ValueError("need at least one shard")
        with self._mutex:
            old_shards = self._shards
            self._shards = [GlobalStateStore() for _ in range(n_shards)]
            self.shard_ops = [0] * n_shards
            moved = 0
            for shard in old_shards:
                for key in shard.keys():
                    value = shard.get_value(key)
                    target = _stable_hash(key) % n_shards
                    self._shards[target].set_value(key, value)
                    moved += 1
            return moved

    def imbalance(self) -> float:
        """max/mean shard size (1.0 = perfectly even); empty store → 1.0."""
        sizes = self.shard_sizes()
        total = sum(sizes)
        if total == 0:
            return 1.0
        mean = total / len(sizes)
        return max(sizes) / mean
