"""The local state tier: per-host replicas in Faaslet shared memory (§4.2).

Each host runs one :class:`LocalTier`. A replica of a state value is a
:class:`~repro.faaslet.sharing.SharedRegion` that co-located Faaslets map
directly into their linear memories — there is no separate storage service
(unlike SAND or Cloudburst, as the paper notes). Chunked values (Fig. 4,
value ``C``) track which byte ranges have been pulled so only the required
subsets are replicated.

**Delta sync.** Every replica additionally tracks the byte ranges written
since the last push in a *dirty* :class:`_IntervalSet`, fed by three
sources: host-side ``write_local`` calls, guest stores into mapped shared
pages (page-granular, via the write-protect fault hook in
:mod:`repro.wasm.memory`), and DDO write paths. ``push`` flushes only the
dirty spans — batched into one round trip — instead of shipping the whole
value, the Python analogue of Faasm's dirty-page flush. Pulls likewise
batch all missing gaps into a single ranged round trip and copy straight
into the region's backing through a ``memoryview`` (no intermediate
``bytes``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.faaslet.sharing import SharedRegion
from repro.telemetry import span

from .kv import StateClient
from .rwlock import RWLock


class _IntervalSet:
    """A merged set of [start, end) byte intervals."""

    def __init__(self) -> None:
        self._spans: list[tuple[int, int]] = []

    def add(self, start: int, end: int) -> None:
        if end <= start:
            return
        spans = self._spans
        merged: list[tuple[int, int]] = []
        placed = False
        for s, e in spans:
            if e < start or s > end:
                merged.append((s, e))
            else:
                start, end = min(s, start), max(e, end)
        for i, (s, e) in enumerate(merged):
            if start < s:
                merged.insert(i, (start, end))
                placed = True
                break
        if not placed:
            merged.append((start, end))
        self._spans = merged

    def remove(self, start: int, end: int) -> None:
        """Subtract [start, end), splitting spans that straddle it."""
        if end <= start:
            return
        out: list[tuple[int, int]] = []
        for s, e in self._spans:
            if e <= start or s >= end:
                out.append((s, e))
                continue
            if s < start:
                out.append((s, start))
            if e > end:
                out.append((end, e))
        self._spans = out

    def covers(self, start: int, end: int) -> bool:
        if end <= start:
            return True
        return any(s <= start and end <= e for s, e in self._spans)

    def missing(self, start: int, end: int) -> list[tuple[int, int]]:
        """Sub-ranges of [start, end) not yet present."""
        gaps: list[tuple[int, int]] = []
        cursor = start
        for s, e in self._spans:
            if e <= cursor:
                continue
            if s >= end:
                break
            if s > cursor:
                gaps.append((cursor, min(s, end)))
            cursor = max(cursor, e)
            if cursor >= end:
                break
        if cursor < end:
            gaps.append((cursor, end))
        return gaps

    def intersect(self, start: int, end: int) -> list[tuple[int, int]]:
        """The parts of the set that fall inside [start, end)."""
        out: list[tuple[int, int]] = []
        for s, e in self._spans:
            lo, hi = max(s, start), min(e, end)
            if lo < hi:
                out.append((lo, hi))
        return out

    def total(self) -> int:
        """Bytes covered by the set."""
        return sum(e - s for s, e in self._spans)

    def clear(self) -> None:
        self._spans = []

    @property
    def spans(self) -> list[tuple[int, int]]:
        return list(self._spans)


@dataclass
class Replica:
    """A local-tier replica of one state value.

    ``value_size`` is the value's logical length; the backing region may be
    larger (page-aligned, or left over from a previously larger value).
    ``present`` tracks which byte ranges have been materialised locally
    (pulled or written); ``dirty`` tracks ranges written since the last
    push, so flushes move only modified bytes. ``synced_size`` is the
    logical size the global tier was last known to hold — when it differs
    from ``value_size`` the next push also carries the size change.
    """

    key: str
    region: SharedRegion
    lock: RWLock = field(default_factory=RWLock)
    present: _IntervalSet = field(default_factory=_IntervalSet)
    dirty: _IntervalSet = field(default_factory=_IntervalSet)
    value_size: int = 0
    synced_size: int | None = None
    #: Guards ``dirty``: marks arrive from guest write faults on executor
    #: threads that do not hold the replica lock.
    _dirty_mutex: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        if self.value_size == 0:
            self.value_size = self.region.size
        # Host writes through region.write() and guest stores into mapped
        # pages both land here, keeping the dirty set exact without the
        # writer knowing about replicas.
        self.region.add_write_listener(self.mark_dirty)

    @property
    def size(self) -> int:
        return self.value_size

    # ------------------------------------------------------------------
    def mark_dirty(self, start: int, end: int) -> None:
        """Record that [start, end) was modified locally (thread-safe)."""
        with self._dirty_mutex:
            self.dirty.add(start, end)

    def take_dirty(self, limit: int) -> list[tuple[int, int]]:
        """Atomically drain the dirty set, clipped to [0, limit).

        Returns the spans to flush and clears the set, then re-arms
        page-granular guest tracking; writes racing with the drain re-fault
        and land in the next flush (HOGWILD-tolerated, §4.1).
        """
        with self._dirty_mutex:
            spans = self.dirty.intersect(0, limit)
            self.dirty.clear()
        self.region.reprotect_mappings()
        return spans

    def discard_dirty(self, start: int, end: int) -> None:
        """Forget dirty marks inside [start, end) (a forced pull overwrote
        the local bytes, so they now match the global tier)."""
        with self._dirty_mutex:
            self.dirty.remove(start, end)


class LocalTier:
    """Shared in-memory state replicas for one host."""

    def __init__(self, host: str, client: StateClient):
        self.host = host
        self.client = client
        self._replicas: dict[str, Replica] = {}
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Replica management
    # ------------------------------------------------------------------
    def replica(self, key: str, size: int | None = None) -> Replica:
        """Get or create the replica for ``key`` (sized from the global tier
        when ``size`` is not given)."""
        with self._mutex:
            rep = self._replicas.get(key)
            if rep is not None:
                if size is not None and size > rep.value_size:
                    if size > rep.region.size:
                        rep.region.resize(size)
                    # The region may hold stale bytes beyond the logical
                    # end (left by a shrink); a grown value must read as
                    # zeros there. Written through the view so the zeros
                    # are not themselves marked dirty — the global tier
                    # zero-fills the same gap when the value extends.
                    gap = size - rep.value_size
                    rep.region.view(rep.value_size, gap)[:] = bytes(gap)
                    rep.value_size = size
                return rep
            synced: int | None = None
            if size is None:
                size = self.client.size(key)  # raises StateKeyError if absent
                synced = size  # sized from the global tier at this instant
            region = SharedRegion(f"{self.host}/{key}", size)
            rep = self._replicas[key] = Replica(
                key, region, value_size=size, synced_size=synced
            )
            return rep

    def has_replica(self, key: str) -> bool:
        with self._mutex:
            return key in self._replicas

    def drop(self, key: str) -> None:
        with self._mutex:
            self._replicas.pop(key, None)

    def keys(self) -> list[str]:
        with self._mutex:
            return sorted(self._replicas)

    def memory_bytes(self) -> int:
        """Bytes of local-tier shared memory on this host (for billable
        memory accounting in Fig. 6c)."""
        with self._mutex:
            return sum(r.region.n_pages * 64 * 1024 for r in self._replicas.values())

    # ------------------------------------------------------------------
    # Pull / push (local <-> global movement, §4.1)
    # ------------------------------------------------------------------
    def pull(self, key: str, force: bool = False) -> Replica:
        """Ensure the full value is present locally; fetch it if not.

        The fetch lands directly in the shared region through a view (one
        copy, global backing → region) and resets the dirty set: after a
        forced pull the replica is byte-identical to the global tier.
        """
        rep = self.replica(key)
        with rep.lock.write_locked():
            if force or not rep.present.covers(0, rep.size):
                with span("state.pull", key=key, host=self.host) as sp:
                    size = self.client.size(key)  # raises StateKeyError if absent
                    if size > rep.region.size:
                        rep.region.resize(size)
                    if size:
                        self.client.pull_ranges_into(
                            key, [(0, rep.region.view(0, size))]
                        )
                    rep.value_size = size
                    rep.present.clear()
                    rep.present.add(0, size)
                    rep.discard_dirty(0, max(size, rep.region.size))
                    rep.synced_size = size
                    sp.set_attr("bytes", size)
                    sp.set_attr("round_trips", 2 if size else 1)
                    sp.set_attr("ranges", [(0, size)])
        return rep

    def pull_chunk(self, key: str, offset: int, length: int, force: bool = False) -> Replica:
        """Ensure ``[offset, offset+length)`` is present locally (state
        chunks, Fig. 4). All missing gaps move in ONE batched round trip,
        copied straight into the region."""
        rep = self.replica(key)
        with rep.lock.write_locked():
            if force:
                gaps = [(offset, offset + length)]
            else:
                gaps = rep.present.missing(offset, offset + length)
            if gaps:
                with span("state.pull", key=key, host=self.host, chunk=True) as sp:
                    self.client.pull_ranges_into(
                        key, [(s, rep.region.view(s, e - s)) for s, e in gaps]
                    )
                    for s, e in gaps:
                        rep.present.add(s, e)
                        rep.discard_dirty(s, e)
                    sp.set_attr("bytes", sum(e - s for s, e in gaps))
                    sp.set_attr("round_trips", 1)
                    sp.set_attr("ranges", list(gaps))
        return rep

    def push(self, key: str) -> None:
        """Flush the replica's dirty byte ranges to the global tier.

        This is the delta push: only ranges actually written since the last
        sync travel (batched into one round trip), never the whole value —
        and never bytes that were neither pulled nor written, so a partial
        replica cannot clobber the authoritative value with stale zeros. A
        local size change (shrink/grow) is carried by the same trip.
        """
        rep = self.replica(key)
        with rep.lock.write_locked():
            spans = rep.take_dirty(rep.value_size)
            if not spans and rep.synced_size == rep.value_size:
                return
            with span("state.push", key=key, host=self.host) as sp:
                parts = [(s, rep.region.view(s, e - s)) for s, e in spans]
                # The trip always carries the local logical size: a push makes
                # the global value's length match the replica's, exactly as a
                # full-value push did, so shrinks and grows propagate with the
                # same round trip (no extra RPC, no extra payload bytes).
                self.client.push_ranges(key, parts, truncate_to=rep.value_size)
                for s, e in spans:
                    rep.present.add(s, e)
                rep.synced_size = rep.value_size
                sp.set_attr("bytes", sum(e - s for s, e in spans))
                sp.set_attr("round_trips", 1)
                sp.set_attr("ranges", list(spans))

    def push_chunk(self, key: str, offset: int, length: int) -> None:
        """Push one explicit byte range (Tab. 2 ``push_state_offset``)."""
        rep = self.replica(key)
        with rep.lock.write_locked():
            with span("state.push", key=key, host=self.host, chunk=True) as sp:
                self.client.push_ranges(
                    key, [(offset, rep.region.view(offset, length))]
                )
                rep.present.add(offset, offset + length)
                rep.discard_dirty(offset, offset + length)
                sp.set_attr("bytes", length)
                sp.set_attr("round_trips", 1)
                sp.set_attr("ranges", [(offset, offset + length)])

    # ------------------------------------------------------------------
    # Local reads/writes (no global traffic)
    # ------------------------------------------------------------------
    def read_local(self, key: str, offset: int = 0, length: int | None = None) -> bytes:
        rep = self.replica(key)
        with rep.lock.read_locked():
            return rep.region.read(offset, length)

    def write_local(self, key: str, data: bytes, offset: int = 0, size: int | None = None) -> Replica:
        """Write to the local replica only; creates it if needed.

        With an explicit ``size`` the value's logical length becomes exactly
        ``size`` (a full replacement may *shrink* the value); without one the
        value grows as needed. The written range is marked dirty (via the
        region's write listener), so the next push flushes exactly it.
        """
        rep = self.replica(key, size=size if size is not None else offset + len(data))
        with rep.lock.write_locked():
            self._prepare_write(rep, offset, len(data), size)
            rep.region.write(data, offset)
            rep.present.add(offset, offset + len(data))
        return rep

    def write_local_from_memory(
        self, key: str, memory, addr: int, length: int,
        offset: int = 0, size: int | None = None,
    ) -> Replica:
        """Like :meth:`write_local`, but the data comes straight out of a
        guest :class:`~repro.wasm.memory.LinearMemory`: pages copy directly
        into the region's view with no intermediate ``bytes`` (the
        zero-copy ``set_state`` syscall path)."""
        rep = self.replica(key, size=size if size is not None else offset + length)
        with rep.lock.write_locked():
            self._prepare_write(rep, offset, length, size)
            memory.read_into(addr, rep.region.view(offset, length))
            rep.mark_dirty(offset, offset + length)
            rep.present.add(offset, offset + length)
        return rep

    @staticmethod
    def _prepare_write(rep: Replica, offset: int, length: int, size: int | None) -> None:
        """Shared sizing/zero-fill bookkeeping before a local write (the
        replica write lock must be held)."""
        if offset + length > rep.region.size:
            rep.region.resize(offset + length)
        if offset > rep.value_size:
            # Writing past the logical end: the gap reads as zeros.
            rep.region.write(b"\x00" * (offset - rep.value_size), rep.value_size)
            rep.present.add(rep.value_size, offset)
        if size is not None:
            new_size = max(size, offset + length)
        else:
            new_size = max(rep.value_size, offset + length)
        if new_size < rep.value_size:
            # Shrinking truncates: stale tail bytes must never resurface
            # if the value later regrows.
            rep.region.write(b"\x00" * (rep.value_size - new_size), new_size)
        rep.value_size = new_size
