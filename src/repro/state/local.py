"""The local state tier: per-host replicas in Faaslet shared memory (§4.2).

Each host runs one :class:`LocalTier`. A replica of a state value is a
:class:`~repro.faaslet.sharing.SharedRegion` that co-located Faaslets map
directly into their linear memories — there is no separate storage service
(unlike SAND or Cloudburst, as the paper notes). Chunked values (Fig. 4,
value ``C``) track which byte ranges have been pulled so only the required
subsets are replicated.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.faaslet.sharing import SharedRegion

from .kv import StateClient, StateKeyError
from .rwlock import RWLock


class _IntervalSet:
    """A merged set of [start, end) byte intervals."""

    def __init__(self) -> None:
        self._spans: list[tuple[int, int]] = []

    def add(self, start: int, end: int) -> None:
        if end <= start:
            return
        spans = self._spans
        merged: list[tuple[int, int]] = []
        placed = False
        for s, e in spans:
            if e < start or s > end:
                merged.append((s, e))
            else:
                start, end = min(s, start), max(e, end)
        for i, (s, e) in enumerate(merged):
            if start < s:
                merged.insert(i, (start, end))
                placed = True
                break
        if not placed:
            merged.append((start, end))
        self._spans = merged

    def covers(self, start: int, end: int) -> bool:
        if end <= start:
            return True
        return any(s <= start and end <= e for s, e in self._spans)

    def missing(self, start: int, end: int) -> list[tuple[int, int]]:
        """Sub-ranges of [start, end) not yet present."""
        gaps: list[tuple[int, int]] = []
        cursor = start
        for s, e in self._spans:
            if e <= cursor:
                continue
            if s >= end:
                break
            if s > cursor:
                gaps.append((cursor, min(s, end)))
            cursor = max(cursor, e)
            if cursor >= end:
                break
        if cursor < end:
            gaps.append((cursor, end))
        return gaps

    def clear(self) -> None:
        self._spans = []

    @property
    def spans(self) -> list[tuple[int, int]]:
        return list(self._spans)


@dataclass
class Replica:
    """A local-tier replica of one state value.

    ``value_size`` is the value's logical length; the backing region may be
    larger (page-aligned, or left over from a previously larger value).
    """

    key: str
    region: SharedRegion
    lock: RWLock = field(default_factory=RWLock)
    present: _IntervalSet = field(default_factory=_IntervalSet)
    value_size: int = 0

    def __post_init__(self) -> None:
        if self.value_size == 0:
            self.value_size = self.region.size

    @property
    def size(self) -> int:
        return self.value_size


class LocalTier:
    """Shared in-memory state replicas for one host."""

    def __init__(self, host: str, client: StateClient):
        self.host = host
        self.client = client
        self._replicas: dict[str, Replica] = {}
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Replica management
    # ------------------------------------------------------------------
    def replica(self, key: str, size: int | None = None) -> Replica:
        """Get or create the replica for ``key`` (sized from the global tier
        when ``size`` is not given)."""
        with self._mutex:
            rep = self._replicas.get(key)
            if rep is not None:
                if size is not None and size > rep.value_size:
                    if size > rep.region.size:
                        rep.region.resize(size)
                    rep.value_size = size
                return rep
            if size is None:
                size = self.client.size(key)  # raises StateKeyError if absent
            region = SharedRegion(f"{self.host}/{key}", size)
            rep = self._replicas[key] = Replica(key, region, value_size=size)
            return rep

    def has_replica(self, key: str) -> bool:
        with self._mutex:
            return key in self._replicas

    def drop(self, key: str) -> None:
        with self._mutex:
            self._replicas.pop(key, None)

    def keys(self) -> list[str]:
        with self._mutex:
            return sorted(self._replicas)

    def memory_bytes(self) -> int:
        """Bytes of local-tier shared memory on this host (for billable
        memory accounting in Fig. 6c)."""
        with self._mutex:
            return sum(r.region.n_pages * 64 * 1024 for r in self._replicas.values())

    # ------------------------------------------------------------------
    # Pull / push (local <-> global movement, §4.1)
    # ------------------------------------------------------------------
    def pull(self, key: str, force: bool = False) -> Replica:
        """Ensure the full value is present locally; fetch it if not."""
        rep = self.replica(key)
        with rep.lock.write_locked():
            if force or not rep.present.covers(0, rep.size):
                value = self.client.pull(key)
                if len(value) > rep.region.size:
                    rep.region.resize(len(value))
                rep.region.write(value, 0)
                rep.value_size = len(value)
                rep.present.clear()
                rep.present.add(0, len(value))
        return rep

    def pull_chunk(self, key: str, offset: int, length: int, force: bool = False) -> Replica:
        """Ensure ``[offset, offset+length)`` is present locally (state
        chunks, Fig. 4)."""
        rep = self.replica(key)
        with rep.lock.write_locked():
            if force:
                gaps = [(offset, offset + length)]
            else:
                gaps = rep.present.missing(offset, offset + length)
            for start, end in gaps:
                data = self.client.pull_range(key, start, end - start)
                rep.region.write(data, start)
                rep.present.add(start, end)
        return rep

    def push(self, key: str) -> None:
        """Write the full local replica to the global tier."""
        rep = self.replica(key)
        with rep.lock.read_locked():
            self.client.push(key, rep.region.read(0, rep.size))
            rep.present.add(0, rep.size)

    def push_chunk(self, key: str, offset: int, length: int) -> None:
        rep = self.replica(key)
        with rep.lock.read_locked():
            self.client.push_range(key, offset, rep.region.read(offset, length))

    # ------------------------------------------------------------------
    # Local reads/writes (no global traffic)
    # ------------------------------------------------------------------
    def read_local(self, key: str, offset: int = 0, length: int | None = None) -> bytes:
        rep = self.replica(key)
        with rep.lock.read_locked():
            return rep.region.read(offset, length)

    def write_local(self, key: str, data: bytes, offset: int = 0, size: int | None = None) -> Replica:
        """Write to the local replica only; creates it if needed.

        With an explicit ``size`` the value's logical length becomes exactly
        ``size`` (a full replacement may *shrink* the value); without one the
        value grows as needed.
        """
        rep = self.replica(key, size=size if size is not None else offset + len(data))
        with rep.lock.write_locked():
            if offset + len(data) > rep.region.size:
                rep.region.resize(offset + len(data))
            if offset > rep.value_size:
                # Writing past the logical end: the gap reads as zeros.
                rep.region.write(b"\x00" * (offset - rep.value_size), rep.value_size)
                rep.present.add(rep.value_size, offset)
            rep.region.write(data, offset)
            if size is not None:
                new_size = max(size, offset + len(data))
            else:
                new_size = max(rep.value_size, offset + len(data))
            if new_size < rep.value_size:
                # Shrinking truncates: stale tail bytes must never resurface
                # if the value later regrows.
                rep.region.write(b"\x00" * (rep.value_size - new_size), new_size)
            rep.value_size = new_size
            rep.present.add(offset, offset + len(data))
        return rep
