"""The local state tier: per-host replicas in Faaslet shared memory (§4.2).

Each host runs one :class:`LocalTier`. A replica of a state value is a
:class:`~repro.faaslet.sharing.SharedRegion` that co-located Faaslets map
directly into their linear memories — there is no separate storage service
(unlike SAND or Cloudburst, as the paper notes). Chunked values (Fig. 4,
value ``C``) track which byte ranges have been pulled so only the required
subsets are replicated.

**Delta sync.** Every replica additionally tracks the byte ranges written
since the last push in a *dirty* :class:`_IntervalSet`, fed by three
sources: host-side ``write_local`` calls, guest stores into mapped shared
pages (page-granular, via the write-protect fault hook in
:mod:`repro.wasm.memory`), and DDO write paths. ``push`` flushes only the
dirty spans — batched into one round trip — instead of shipping the whole
value, the Python analogue of Faasm's dirty-page flush. Pulls likewise
batch all missing gaps into a single ranged round trip and copy straight
into the region's backing through a ``memoryview`` (no intermediate
``bytes``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.faaslet.sharing import SharedRegion
from repro.telemetry import span

from .kv import StateClient
from .rwlock import RWLock


class _IntervalSet:
    """A merged set of [start, end) byte intervals."""

    def __init__(self) -> None:
        self._spans: list[tuple[int, int]] = []

    def add(self, start: int, end: int) -> None:
        if end <= start:
            return
        spans = self._spans
        merged: list[tuple[int, int]] = []
        placed = False
        for s, e in spans:
            if e < start or s > end:
                merged.append((s, e))
            else:
                start, end = min(s, start), max(e, end)
        for i, (s, e) in enumerate(merged):
            if start < s:
                merged.insert(i, (start, end))
                placed = True
                break
        if not placed:
            merged.append((start, end))
        self._spans = merged

    def remove(self, start: int, end: int) -> None:
        """Subtract [start, end), splitting spans that straddle it."""
        if end <= start:
            return
        out: list[tuple[int, int]] = []
        for s, e in self._spans:
            if e <= start or s >= end:
                out.append((s, e))
                continue
            if s < start:
                out.append((s, start))
            if e > end:
                out.append((end, e))
        self._spans = out

    def covers(self, start: int, end: int) -> bool:
        if end <= start:
            return True
        return any(s <= start and end <= e for s, e in self._spans)

    def missing(self, start: int, end: int) -> list[tuple[int, int]]:
        """Sub-ranges of [start, end) not yet present."""
        gaps: list[tuple[int, int]] = []
        cursor = start
        for s, e in self._spans:
            if e <= cursor:
                continue
            if s >= end:
                break
            if s > cursor:
                gaps.append((cursor, min(s, end)))
            cursor = max(cursor, e)
            if cursor >= end:
                break
        if cursor < end:
            gaps.append((cursor, end))
        return gaps

    def intersect(self, start: int, end: int) -> list[tuple[int, int]]:
        """The parts of the set that fall inside [start, end)."""
        out: list[tuple[int, int]] = []
        for s, e in self._spans:
            lo, hi = max(s, start), min(e, end)
            if lo < hi:
                out.append((lo, hi))
        return out

    def total(self) -> int:
        """Bytes covered by the set."""
        return sum(e - s for s, e in self._spans)

    def clear(self) -> None:
        self._spans = []

    @property
    def spans(self) -> list[tuple[int, int]]:
        return list(self._spans)


@dataclass
class Replica:
    """A local-tier replica of one state value.

    ``value_size`` is the value's logical length; the backing region may be
    larger (page-aligned, or left over from a previously larger value).
    ``present`` tracks which byte ranges have been materialised locally
    (pulled or written); ``dirty`` tracks ranges written since the last
    push, so flushes move only modified bytes. ``synced_size`` is the
    logical size the global tier was last known to hold — when it differs
    from ``value_size`` the next push also carries the size change.
    """

    key: str
    region: SharedRegion
    lock: RWLock = field(default_factory=RWLock)
    present: _IntervalSet = field(default_factory=_IntervalSet)
    dirty: _IntervalSet = field(default_factory=_IntervalSet)
    value_size: int = 0
    synced_size: int | None = None
    #: Global write version this replica is known byte-identical to. Only
    #: meaningful when checked together with "fully present and nothing
    #: dirty" at the use site; ``None`` means unknown/diverged. Maintained
    #: by versioned pulls and pushes, consumed by push-invalidate.
    gver: int | None = None
    #: Delivery-plane bookkeeping: ranges materialised ahead of demand
    #: (drained into hit counters as demand reads arrive), the global
    #: version they were read at (``-1`` = mixed versions, unusable for
    #: the gap-fill fast path), and whether the replica has only ever
    #: been touched speculatively — a speculative replica must stay
    #: invisible to ``get_state``/``state_size`` until demand completes it.
    prefetched: _IntervalSet = field(default_factory=_IntervalSet)
    prefetch_version: int | None = None
    speculative: bool = False
    #: Guards ``dirty`` and ``prefetched``: marks arrive from guest write
    #: faults on executor threads that do not hold the replica lock.
    _dirty_mutex: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        if self.value_size == 0:
            self.value_size = self.region.size
        # Host writes through region.write() and guest stores into mapped
        # pages both land here, keeping the dirty set exact without the
        # writer knowing about replicas.
        self.region.add_write_listener(self.mark_dirty)

    @property
    def size(self) -> int:
        return self.value_size

    # ------------------------------------------------------------------
    def mark_dirty(self, start: int, end: int) -> None:
        """Record that [start, end) was modified locally (thread-safe)."""
        # A local write promotes the replica out of speculative status:
        # the guest has observably interacted with it.
        self.speculative = False
        with self._dirty_mutex:
            self.dirty.add(start, end)

    def has_dirty(self) -> bool:
        """Whether any locally written bytes are still unflushed."""
        with self._dirty_mutex:
            return self.dirty.total() > 0

    def take_dirty(self, limit: int) -> list[tuple[int, int]]:
        """Atomically drain the dirty set, clipped to [0, limit).

        Returns the spans to flush and clears the set, then re-arms
        page-granular guest tracking; writes racing with the drain re-fault
        and land in the next flush (HOGWILD-tolerated, §4.1).
        """
        with self._dirty_mutex:
            spans = self.dirty.intersect(0, limit)
            self.dirty.clear()
        self.region.reprotect_mappings()
        return spans

    def discard_dirty(self, start: int, end: int) -> None:
        """Forget dirty marks inside [start, end) (a forced pull overwrote
        the local bytes, so they now match the global tier)."""
        with self._dirty_mutex:
            self.dirty.remove(start, end)


class LocalTier:
    """Shared in-memory state replicas for one host."""

    def __init__(self, host: str, client: StateClient):
        self.host = host
        self.client = client
        self._replicas: dict[str, Replica] = {}
        self._mutex = threading.Lock()
        # ---- proactive-delivery bookkeeping (repro.state.prefetch) ----
        #: Recent pushes from this host: key -> [(base_version,
        #: new_version, logical_size | None, dirty spans)], the chain a
        #: callee's host can walk to turn a full forced pull into a
        #: delta pull of only the truly-stale ranges.
        self._push_log: dict[str, list[tuple]] = {}
        #: Push-invalidate hints received from callers:
        #: key -> (latest known version, push chain).
        self._hints: dict[str, tuple[int, tuple]] = {}
        #: Guards the two dicts above plus the delivery counters.
        self._spec_mutex = threading.Lock()
        #: Per-key bytes that were prefetched and then actually read by
        #: demand (each prefetched byte is counted at most once).
        self.prefetch_hit_bytes: dict[str, int] = {}
        #: Optional callback ``(key, nbytes)`` fired on every prefetch
        #: hit — the Prefetcher hooks this to attribute hits to functions.
        self.on_prefetch_hit = None
        #: Push-invalidate effectiveness counters.
        self.invalidate_skips = 0
        self.invalidate_delta_pulls = 0
        self.invalidate_bytes_saved = 0

    # ------------------------------------------------------------------
    # Replica management
    # ------------------------------------------------------------------
    def replica(
        self, key: str, size: int | None = None, _speculative: bool = False
    ) -> Replica:
        """Get or create the replica for ``key`` (sized from the global tier
        when ``size`` is not given). ``_speculative`` marks a replica the
        prefetcher creates ahead of demand — only a *newly created*
        replica is marked, atomically, so a demand-created replica can
        never be demoted by a racing prefetch."""
        with self._mutex:
            rep = self._replicas.get(key)
            if rep is not None:
                if size is not None and size > rep.value_size:
                    if size > rep.region.size:
                        rep.region.resize(size)
                    # The region may hold stale bytes beyond the logical
                    # end (left by a shrink); a grown value must read as
                    # zeros there. Written through the view so the zeros
                    # are not themselves marked dirty — the global tier
                    # zero-fills the same gap when the value extends.
                    gap = size - rep.value_size
                    rep.region.view(rep.value_size, gap)[:] = bytes(gap)
                    rep.value_size = size
                    # Logical size changed without a global round trip:
                    # the replica can no longer claim version equality.
                    rep.gver = None
                return rep
            synced: int | None = None
            if size is None:
                size = self.client.size(key)  # raises StateKeyError if absent
                synced = size  # sized from the global tier at this instant
            region = SharedRegion(f"{self.host}/{key}", size)
            rep = self._replicas[key] = Replica(
                key, region, value_size=size, synced_size=synced,
                speculative=_speculative,
            )
            return rep

    def has_replica(self, key: str) -> bool:
        with self._mutex:
            return key in self._replicas

    def drop(self, key: str) -> None:
        with self._mutex:
            self._replicas.pop(key, None)

    def keys(self) -> list[str]:
        with self._mutex:
            return sorted(self._replicas)

    def memory_bytes(self) -> int:
        """Bytes of local-tier shared memory on this host (for billable
        memory accounting in Fig. 6c)."""
        with self._mutex:
            return sum(r.region.n_pages * 64 * 1024 for r in self._replicas.values())

    # ------------------------------------------------------------------
    # Pull / push (local <-> global movement, §4.1)
    # ------------------------------------------------------------------
    def pull(self, key: str, force: bool = False) -> Replica:
        """Ensure the full value is present locally; fetch it if not.

        The fetch lands directly in the shared region through a view (one
        copy, global backing → region) and resets the dirty set: after a
        forced pull the replica is byte-identical to the global tier.

        Two delivery-plane fast paths may satisfy the request without the
        full fetch, both proven exact via write versions: a *forced* pull
        consults push-invalidate hints (:meth:`apply_invalidations`) to
        skip clean keys or delta-pull only the pushed ranges, and a
        non-forced pull of a speculative replica gap-fills around the
        prefetched bytes. Either path falls back to the demand fetch the
        moment the version check fails.
        """
        rep = self.replica(key)
        if force:
            with self._spec_mutex:
                hint = self._hints.get(key)
        else:
            hint = None
        with rep.lock.write_locked():
            if hint is not None and self._fast_forward(rep, hint):
                return rep
            if force or rep.speculative or not rep.present.covers(0, rep.size):
                if (
                    not force
                    and rep.speculative
                    and self._complete_speculative(rep)
                ):
                    return rep
                with span("state.pull", key=key, host=self.host) as sp:
                    size = self.client.size(key)  # raises StateKeyError if absent
                    if size > rep.region.size:
                        rep.region.resize(size)
                    version: int | None = None
                    if size:
                        _, version, vsize = (
                            self.client.pull_ranges_into_versioned(
                                key, [(0, rep.region.view(0, size))]
                            )
                        )
                        if vsize != size:
                            # The value was resized between the metadata
                            # trip and the data trip: the bytes are real
                            # but no version-equality claim can be made.
                            version = None
                    rep.value_size = size
                    rep.present.clear()
                    rep.present.add(0, size)
                    rep.discard_dirty(0, max(size, rep.region.size))
                    rep.synced_size = size
                    rep.gver = version
                    self._clear_speculative(rep, credit=False)
                    sp.set_attr("bytes", size)
                    sp.set_attr("round_trips", 2 if size else 1)
                    sp.set_attr("ranges", [(0, size)])
        return rep

    def pull_chunk(self, key: str, offset: int, length: int, force: bool = False) -> Replica:
        """Ensure ``[offset, offset+length)`` is present locally (state
        chunks, Fig. 4). All missing gaps move in ONE batched round trip,
        copied straight into the region."""
        rep = self.replica(key)
        if offset + length > rep.value_size:
            # The replica may have been created by a local write narrower
            # than the global value: grow the local view to cover the
            # requested chunk, then pull. A request past the *global* end
            # still fails the store's range check, as it always did.
            rep = self.replica(key, size=offset + length)
        with rep.lock.write_locked():
            if force:
                gaps = [(offset, offset + length)]
            else:
                gaps = rep.present.missing(offset, offset + length)
            if gaps:
                with span("state.pull", key=key, host=self.host, chunk=True) as sp:
                    _, version, _ = self.client.pull_ranges_into_versioned(
                        key, [(s, rep.region.view(s, e - s)) for s, e in gaps]
                    )
                    for s, e in gaps:
                        rep.present.add(s, e)
                        rep.discard_dirty(s, e)
                    if rep.gver is not None and version != rep.gver:
                        # Newer bytes mixed into an older-version replica.
                        rep.gver = None
                    sp.set_attr("bytes", sum(e - s for s, e in gaps))
                    sp.set_attr("round_trips", 1)
                    sp.set_attr("ranges", list(gaps))
            self._credit_read(rep, offset, offset + length)
        return rep

    def push(self, key: str) -> None:
        """Flush the replica's dirty byte ranges to the global tier.

        This is the delta push: only ranges actually written since the last
        sync travel (batched into one round trip), never the whole value —
        and never bytes that were neither pulled nor written, so a partial
        replica cannot clobber the authoritative value with stale zeros. A
        local size change (shrink/grow) is carried by the same trip.
        """
        rep = self.replica(key)
        with rep.lock.write_locked():
            spans = rep.take_dirty(rep.value_size)
            if not spans and rep.synced_size == rep.value_size:
                return
            with span("state.push", key=key, host=self.host) as sp:
                parts = [(s, rep.region.view(s, e - s)) for s, e in spans]
                # The trip always carries the local logical size: a push makes
                # the global value's length match the replica's, exactly as a
                # full-value push did, so shrinks and grows propagate with the
                # same round trip (no extra RPC, no extra payload bytes).
                new_version = self.client.push_ranges_versioned(
                    key, parts, truncate_to=rep.value_size
                )
                for s, e in spans:
                    rep.present.add(s, e)
                rep.synced_size = rep.value_size
                self._note_push(rep, new_version, spans, rep.value_size)
                sp.set_attr("bytes", sum(e - s for s, e in spans))
                sp.set_attr("round_trips", 1)
                sp.set_attr("ranges", list(spans))

    def push_chunk(self, key: str, offset: int, length: int) -> None:
        """Push one explicit byte range (Tab. 2 ``push_state_offset``)."""
        rep = self.replica(key)
        with rep.lock.write_locked():
            with span("state.push", key=key, host=self.host, chunk=True) as sp:
                new_version = self.client.push_ranges_versioned(
                    key, [(offset, rep.region.view(offset, length))]
                )
                rep.present.add(offset, offset + length)
                rep.discard_dirty(offset, offset + length)
                self._note_push(
                    rep,
                    new_version,
                    [(offset, offset + length)],
                    # A chunk push never truncates: the global size only
                    # grows (if at all), which the chain walk models as
                    # "grow to cover the pushed span".
                    None,
                )
                sp.set_attr("bytes", length)
                sp.set_attr("round_trips", 1)
                sp.set_attr("ranges", [(offset, offset + length)])

    # ------------------------------------------------------------------
    # Local reads/writes (no global traffic)
    # ------------------------------------------------------------------
    def read_local(self, key: str, offset: int = 0, length: int | None = None) -> bytes:
        rep = self.replica(key)
        with rep.lock.read_locked():
            data = rep.region.read(offset, length)
        self._credit_read(rep, offset, offset + len(data))
        return data

    def write_local(self, key: str, data: bytes, offset: int = 0, size: int | None = None) -> Replica:
        """Write to the local replica only; creates it if needed.

        With an explicit ``size`` the value's logical length becomes exactly
        ``size`` (a full replacement may *shrink* the value); without one the
        value grows as needed. The written range is marked dirty (via the
        region's write listener), so the next push flushes exactly it.
        """
        rep = self.replica(key, size=size if size is not None else offset + len(data))
        with rep.lock.write_locked():
            self._prepare_write(rep, offset, len(data), size)
            rep.region.write(data, offset)
            rep.present.add(offset, offset + len(data))
        return rep

    def write_local_from_memory(
        self, key: str, memory, addr: int, length: int,
        offset: int = 0, size: int | None = None,
    ) -> Replica:
        """Like :meth:`write_local`, but the data comes straight out of a
        guest :class:`~repro.wasm.memory.LinearMemory`: pages copy directly
        into the region's view with no intermediate ``bytes`` (the
        zero-copy ``set_state`` syscall path)."""
        rep = self.replica(key, size=size if size is not None else offset + length)
        with rep.lock.write_locked():
            self._prepare_write(rep, offset, length, size)
            memory.read_into(addr, rep.region.view(offset, length))
            rep.mark_dirty(offset, offset + length)
            rep.present.add(offset, offset + length)
        return rep

    # ------------------------------------------------------------------
    # Proactive data delivery (repro.state.prefetch, DESIGN.md §10)
    # ------------------------------------------------------------------
    def prefetch_spans(
        self,
        key: str,
        spans: list[tuple[int, int]],
        max_bytes: int | None = None,
    ) -> int:
        """Speculatively materialise byte ranges of ``key`` ahead of
        demand; returns the bytes actually pulled.

        Safety: only *missing, non-dirty* ranges are filled — a prefetch
        can never overwrite a byte the guest has written — and the
        gap-compute + fill happens atomically under the replica write
        lock, so a demand access either waits for the fill or sees it
        complete. Semantically a prefetch is just a legal
        ``pull_chunk(force=False)`` issued early; the §4.1 consistency
        model already permits it at any point.

        Raises :class:`~repro.state.kv.StateKeyError` when the key does
        not exist (the caller skips it — nothing to prefetch).
        """
        rep = self.replica(key, _speculative=True)  # StateKeyError if absent
        with rep.lock.write_locked():
            gapset = _IntervalSet()
            for s, e in spans:
                s, e = max(0, int(s)), min(int(e), rep.value_size)
                for gs, ge in rep.present.missing(s, e):
                    gapset.add(gs, ge)
            # Defence in depth: never touch a dirty byte, even though a
            # dirty byte is also present and thus already excluded.
            with rep._dirty_mutex:
                for s, e in rep.dirty.spans:
                    gapset.remove(s, e)
            gaps: list[tuple[int, int]] = []
            budget = max_bytes if max_bytes is not None else None
            for s, e in gapset.spans:
                if budget is not None:
                    if budget <= 0:
                        break
                    e = min(e, s + budget)
                    budget -= e - s
                gaps.append((s, e))
            if not gaps:
                return 0
            with span("prefetch.pull", key=key, host=self.host) as sp:
                total, version, _ = self.client.pull_ranges_into_versioned(
                    key, [(s, rep.region.view(s, e - s)) for s, e in gaps]
                )
                for s, e in gaps:
                    rep.present.add(s, e)
                with rep._dirty_mutex:
                    for s, e in gaps:
                        rep.prefetched.add(s, e)
                if rep.prefetch_version is None:
                    rep.prefetch_version = version
                elif rep.prefetch_version != version:
                    # Mixed-version speculative data: still legal bytes,
                    # but the gap-fill fast path must not claim them
                    # uniform (-1 is the "mixed" sentinel).
                    rep.prefetch_version = -1
                if rep.gver is not None and version != rep.gver:
                    rep.gver = None
                sp.set_attr("bytes", total)
                sp.set_attr("round_trips", 1)
                sp.set_attr("ranges", list(gaps))
            return total

    def apply_invalidations(self, payload) -> None:
        """Record push-invalidate hints piggybacked on a chained call.

        ``payload`` is what the caller's host's
        :meth:`invalidation_payload` produced: per key, the latest global
        write version that host knows plus its recent push chain. Hints
        only ever *accelerate forced pulls* (see :meth:`_fast_forward`);
        no other path consults them, so delivery off/on cannot diverge
        on non-forced reads.
        """
        if not payload:
            return
        with self._spec_mutex:
            for key, version, chain in payload:
                current = self._hints.get(key)
                if current is None or current[0] <= version:
                    self._hints[key] = (version, chain)

    def invalidation_payload(self, max_keys: int = 32):
        """This host's freshness knowledge, for piggybacking on a chained
        call: ``(key, latest known version, recent push chain)`` per
        replica whose version is known. Versions are facts about the
        global tier, so shipping them to any host is always sound."""
        with self._mutex:
            reps = sorted(self._replicas.items())
        out = []
        with self._spec_mutex:
            for key, rep in reps:
                chain = tuple(self._push_log.get(key, ()))
                version = rep.gver
                if version is None:
                    version = chain[-1][1] if chain else None
                if version is None:
                    continue
                out.append((key, version, chain))
                if len(out) >= max_keys:
                    break
        return tuple(out) or None

    def _fast_forward(self, rep: Replica, hint) -> bool:
        """Serve a *forced* pull from a push-invalidate hint (replica
        write lock held). Returns True only when the result is provably
        what the demand pull would produce as of the hint's version:
        either the replica already matches it (skip: zero round trips),
        or a contiguous push chain from the replica's version reaches it
        (delta pull of only the pushed ranges, one round trip). Any
        doubt — unknown version, local dirt, partial presence, version
        drift during the pull — falls back to the full demand pull."""
        version, chain = hint
        if (
            rep.gver is None
            or rep.has_dirty()
            or not rep.present.covers(0, rep.value_size)
        ):
            return False
        if rep.gver == version:
            with self._spec_mutex:
                self.invalidate_skips += 1
                self.invalidate_bytes_saved += rep.value_size
            return True
        # Walk the push chain from our version towards the hint's.
        stale = _IntervalSet()
        cursor = rep.gver
        size = rep.value_size
        while cursor != version:
            entry = next((e for e in chain if e[0] == cursor), None)
            if entry is None or entry[1] > version:
                return False
            _, cursor, entry_size, entry_spans = entry
            for s, e in entry_spans:
                stale.add(s, e)
            if entry_size is not None:
                size = entry_size
            else:
                size = max(size, max((e for _, e in entry_spans), default=0))
        old_size = rep.value_size
        if size > rep.region.size:
            rep.region.resize(size)
        if size > old_size:
            # Grown tail: global bytes there are either zeros (truncate
            # growth) or covered by the chain's pushed spans.
            rep.region.view(old_size, size - old_size)[:] = bytes(
                size - old_size
            )
        elif size < old_size:
            # Shrink: stale tail must never resurface on a later regrow.
            rep.region.view(size, old_size - size)[:] = bytes(
                old_size - size
            )
        rep.value_size = size
        rep.present.add(min(old_size, size), size)
        gaps = stale.intersect(0, size)
        if gaps:
            with span("state.pull", key=rep.key, host=self.host) as sp:
                total, pulled_version, vsize = (
                    self.client.pull_ranges_into_versioned(
                        rep.key,
                        [(s, rep.region.view(s, e - s)) for s, e in gaps],
                    )
                )
                sp.set_attr("bytes", total)
                sp.set_attr("round_trips", 1)
                sp.set_attr("ranges", list(gaps))
                sp.set_attr("invalidate", "delta")
            if pulled_version != version or vsize != size:
                # A third writer moved the value past the hint while we
                # pulled: the delta no longer proves equality. The bytes
                # written so far are all overwritten by the full pull.
                rep.gver = None
                return False
        rep.synced_size = size
        rep.gver = version
        with self._spec_mutex:
            self.invalidate_delta_pulls += 1
            self.invalidate_bytes_saved += max(
                0, size - sum(e - s for s, e in gaps)
            )
        return True

    def _complete_speculative(self, rep: Replica) -> bool:
        """Finish a speculative replica's first demand pull by fetching
        only the gaps around the prefetched bytes (replica write lock
        held). Returns True only when the result is provably
        byte-identical to the full demand pull: the gap bytes came back
        at exactly the version the prefetch read, and the size is
        unchanged. Any mismatch returns False and the caller does the
        full pull (exactness over savings)."""
        version = rep.prefetch_version
        if version is None or version < 0:
            return False
        size = self.client.size(rep.key)
        if size != rep.value_size or self.client.version(rep.key) != version:
            return False
        gaps = rep.present.missing(0, size)
        if gaps:
            with span(
                "state.pull", key=rep.key, host=self.host, chunk=True
            ) as sp:
                total, pulled_version, vsize = (
                    self.client.pull_ranges_into_versioned(
                        rep.key,
                        [(s, rep.region.view(s, e - s)) for s, e in gaps],
                    )
                )
                sp.set_attr("bytes", total)
                sp.set_attr("round_trips", 1)
                sp.set_attr("ranges", list(gaps))
                sp.set_attr("speculative_fill", True)
            if pulled_version != version or vsize != size:
                return False
            for s, e in gaps:
                rep.present.add(s, e)
                rep.discard_dirty(s, e)
        rep.synced_size = size
        rep.gver = version
        # Every prefetched byte of a completed pull was demanded.
        self._clear_speculative(rep, credit=True)
        return True

    def _note_push(self, rep: Replica, new_version: int, spans, size) -> None:
        """Record a push in the host's push log and maintain the
        replica's version-equality claim (replica write lock held)."""
        base = new_version - 1
        span_end = max((e for _, e in spans), default=0)
        if (
            rep.gver == base
            and not rep.has_dirty()
            and rep.present.covers(0, rep.value_size)
            and (size is not None or span_end <= rep.value_size)
        ):
            # We pushed onto exactly the version we mirror: the global
            # value is now our bytes, verbatim.
            rep.gver = new_version
        else:
            rep.gver = None
        with self._spec_mutex:
            log = self._push_log.setdefault(rep.key, [])
            log.append((base, new_version, size, tuple(spans)))
            del log[:-8]

    def _credit_read(self, rep: Replica, start: int, end: int) -> None:
        """Count demand-read bytes that a prefetch had already delivered
        (each prefetched byte is credited at most once)."""
        if not rep.prefetched._spans:
            return
        with rep._dirty_mutex:
            parts = rep.prefetched.intersect(start, end)
            for s, e in parts:
                rep.prefetched.remove(s, e)
        nbytes = sum(e - s for s, e in parts)
        if not nbytes:
            return
        with self._spec_mutex:
            self.prefetch_hit_bytes[rep.key] = (
                self.prefetch_hit_bytes.get(rep.key, 0) + nbytes
            )
        hook = self.on_prefetch_hit
        if hook is not None:
            hook(rep.key, nbytes)

    def credit_read(self, key: str, start: int, end: int) -> None:
        """Public :meth:`_credit_read` for callers that hand out raw
        views (the state API's whole-value ``get_state``)."""
        with self._mutex:
            rep = self._replicas.get(key)
        if rep is not None:
            self._credit_read(rep, start, end)

    def _clear_speculative(self, rep: Replica, credit: bool) -> None:
        """Retire a replica's speculative status; optionally credit all
        still-unread prefetched bytes as hits (a completed demand pull
        consumed them all)."""
        rep.speculative = False
        rep.prefetch_version = None
        with rep._dirty_mutex:
            parts = rep.prefetched.spans
            rep.prefetched.clear()
        if not credit:
            return
        nbytes = sum(e - s for s, e in parts)
        if not nbytes:
            return
        with self._spec_mutex:
            self.prefetch_hit_bytes[rep.key] = (
                self.prefetch_hit_bytes.get(rep.key, 0) + nbytes
            )
        hook = self.on_prefetch_hit
        if hook is not None:
            hook(rep.key, nbytes)

    def delivery_stats(self) -> dict:
        """This host's delivery-plane counters (for ``repro prefetch``)."""
        with self._spec_mutex:
            return {
                "hit_bytes": dict(self.prefetch_hit_bytes),
                "invalidate_skips": self.invalidate_skips,
                "invalidate_delta_pulls": self.invalidate_delta_pulls,
                "invalidate_bytes_saved": self.invalidate_bytes_saved,
            }

    @staticmethod
    def _prepare_write(rep: Replica, offset: int, length: int, size: int | None) -> None:
        """Shared sizing/zero-fill bookkeeping before a local write (the
        replica write lock must be held)."""
        if offset + length > rep.region.size:
            rep.region.resize(offset + length)
        if offset > rep.value_size:
            # Writing past the logical end: the gap reads as zeros.
            rep.region.write(b"\x00" * (offset - rep.value_size), rep.value_size)
            rep.present.add(rep.value_size, offset)
        if size is not None:
            new_size = max(size, offset + length)
        else:
            new_size = max(rep.value_size, offset + length)
        if new_size < rep.value_size:
            # Shrinking truncates: stale tail bytes must never resurface
            # if the value later regrows.
            rep.region.write(b"\x00" * (rep.value_size - new_size), new_size)
        rep.value_size = new_size
