"""``repro.state`` — the two-tier state architecture of §4.

A cluster has one :class:`GlobalStateStore` (the authoritative global tier,
standing in for the paper's Redis deployment). Each host owns a
:class:`LocalTier` of replicas held in Faaslet shared memory regions, a
metered :class:`StateClient` connection to the global tier, and a
:class:`StateAPI` exposing the Tab. 2 state operations. Distributed data
objects (:mod:`repro.state.ddo`) sit on top.

Example::

    from repro.state import GlobalStateStore, LocalTier, StateAPI, StateClient

    store = GlobalStateStore()
    api = StateAPI(LocalTier("host-1", StateClient(store)))
    api.set_state("weights", b"\\x00" * 64)
    api.push_state("weights")
"""

from .api import StateAPI
from .ddo import (
    DistributedCounter,
    DistributedDict,
    DistributedList,
    DistributedObject,
    ImmutableValue,
    MatrixReadOnly,
    SparseMatrixReadOnly,
    VectorAsync,
)
from .kv import (
    GlobalStateStore,
    StateClient,
    StateKeyError,
    StateUnavailableError,
    TransferMeter,
)
from .local import LocalTier, Replica
from .prefetch import DeliveryPolicy, Prefetcher
from .rwlock import RWLock
from .sharded import ShardedStateStore

__all__ = [
    "DeliveryPolicy",
    "DistributedCounter",
    "DistributedDict",
    "DistributedList",
    "DistributedObject",
    "GlobalStateStore",
    "ImmutableValue",
    "LocalTier",
    "MatrixReadOnly",
    "Prefetcher",
    "RWLock",
    "ShardedStateStore",
    "Replica",
    "SparseMatrixReadOnly",
    "StateAPI",
    "StateClient",
    "StateKeyError",
    "StateUnavailableError",
    "TransferMeter",
    "VectorAsync",
]
