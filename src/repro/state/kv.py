"""The global state tier: a Redis-like in-memory key-value store (§4.2).

The authoritative copy of every state value lives here; hosts pull replicas
into their local tier and push updates back. The store supports the byte-
oriented operations the state API needs (whole values, ranges, appends) plus
per-key distributed read/write locks.

Concurrency: keys are spread over a fixed set of **lock stripes** (per-key
striping instead of one store-wide mutex), so operations on different keys
from different hosts' dispatcher threads proceed in parallel — the Python
analogue of Redis's per-connection pipelining plus the paper's observation
that the global tier must not serialise independent keys.

Data movement is **batched and zero-copy** where it matters: a gap list of
byte ranges moves in one :meth:`StateClient.pull_ranges` /
:meth:`StateClient.push_ranges` call (one metered round trip), and the
``*_into`` variants copy directly between the store's backing bytearray and
a caller-supplied ``memoryview`` (a shared region), with no intermediate
``bytes`` objects.

Every byte moved through a :class:`StateClient` is charged to that client's
:class:`TransferMeter`, which is how the experiments of Figs. 6b and 8b
account network traffic: in the paper's deployment the global tier is a
remote Redis, so every pull/push is a network transfer — and every client
call is one network **round trip**, counted in ``round_trips``.
"""

from __future__ import annotations

import threading
import time
import zlib

from repro.telemetry import MetricsRegistry

from .rwlock import RWLock


class StateKeyError(KeyError):
    """The requested state key does not exist in the global tier."""


class StateUnavailableError(RuntimeError):
    """A transient availability failure of the global tier.

    Raised when (part of) the store cannot serve an operation right now —
    in this reproduction, when a chaos plan has taken one of the store's
    lock stripes down (the analogue of a Redis shard being partitioned
    away). Callers are expected to retry: :class:`StateClient` retries a
    bounded number of times with a small backoff, and the runtime treats
    exhaustion as an attempt failure that the invocation monitor re-queues.
    """


class TransferMeter:
    """Counts bytes and round trips exchanged with the global tier.

    A thin view over metrics-registry counters (``state.bytes_sent`` /
    ``state.bytes_received`` / ``state.round_trips``): a host's runtime
    instance passes the cluster registry and a ``host=`` label so the
    same numbers are visible per host and cluster-aggregated, while the
    historic attribute API (``meter.sent_bytes`` …) keeps working.
    Counters are internally locked — dispatcher threads on one host share
    a meter, and an unsynchronised ``+=`` would drop counts and corrupt
    the Fig. 6b/8b accounting.
    """

    def __init__(self, metrics: MetricsRegistry | None = None, **labels) -> None:
        # `is None`, not truthiness: an empty registry has len() == 0.
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._sent = metrics.counter("state.bytes_sent", **labels)
        self._received = metrics.counter("state.bytes_received", **labels)
        #: Client calls to the global tier — each is one network round trip
        #: in the paper's deployment, regardless of how many byte ranges it
        #: batches.
        self._trips = metrics.counter("state.round_trips", **labels)

    def record_sent(self, nbytes: int) -> None:
        """Charge one outbound round trip carrying ``nbytes``."""
        self._sent.inc(nbytes)
        self._trips.inc()

    def record_received(self, nbytes: int) -> None:
        """Charge one inbound round trip carrying ``nbytes``."""
        self._received.inc(nbytes)
        self._trips.inc()

    @property
    def sent_bytes(self) -> int:
        return self._sent.value

    @property
    def received_bytes(self) -> int:
        return self._received.value

    @property
    def round_trips(self) -> int:
        return self._trips.value

    @property
    def operations(self) -> int:
        """Historic alias for :attr:`round_trips`."""
        return self.round_trips

    @property
    def total_bytes(self) -> int:
        """All bytes moved, either direction."""
        return self.sent_bytes + self.received_bytes

    def reset(self) -> None:
        """Zero every counter (this meter's labelled series only)."""
        self._sent.reset()
        self._received.reset()
        self._trips.reset()


#: Default number of lock stripes: enough that 16 dispatcher threads on
#: distinct keys rarely collide, small enough to stay cache-friendly.
DEFAULT_STRIPES = 16


class GlobalStateStore:
    """Thread-safe authoritative store for all state keys in a cluster.

    Per-key operations take only the key's *stripe* lock, so concurrent
    accesses to different keys do not serialise behind one mutex (the
    multi-key throughput measured by ``bench_state_plane.py``). Whole-store
    snapshots (``keys``/``total_bytes``) read the dict atomically under the
    GIL without stopping writers.
    """

    def __init__(self, n_stripes: int = DEFAULT_STRIPES) -> None:
        if n_stripes < 1:
            raise ValueError("need at least one lock stripe")
        self._values: dict[str, bytearray] = {}
        #: Per-key monotonic write version, bumped by exactly one on every
        #: mutating operation (under the key's stripe lock). Versions
        #: survive delete/recreate so a stale replica can never alias a
        #: recreated key's counter. This is what makes push-invalidate
        #: safe: a pusher learns the version its write produced, and any
        #: replica matching that version is provably byte-identical.
        self._versions: dict[str, int] = {}
        self._locks: dict[str, RWLock] = {}
        self._stripes = [threading.Lock() for _ in range(n_stripes)]
        #: Guards the distributed-lock registry (not the values).
        self._meta = threading.Lock()

    def _stripe(self, key: str) -> threading.Lock:
        return self._stripes[zlib.crc32(key.encode()) % len(self._stripes)]

    def _bump(self, key: str) -> int:
        """Advance ``key``'s write version (stripe lock must be held)."""
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        return version

    # ------------------------------------------------------------------
    # Value operations
    # ------------------------------------------------------------------
    def set_value(self, key: str, value: bytes | bytearray | memoryview) -> None:
        """Replace (or create) ``key``'s full value."""
        with self._stripe(key):
            self._values[key] = bytearray(value)
            self._bump(key)

    def get_value(self, key: str) -> bytes:
        """The full value of ``key`` (a copy)."""
        with self._stripe(key):
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            return bytes(value)

    def get_value_versioned(self, key: str) -> tuple[bytes, int]:
        """``(value, write version)`` captured under one stripe-lock hold.

        The scheduler's warm-set/residency cache revalidates with this:
        a cached snapshot tagged with the version it was parsed at can be
        reused for free while :meth:`version` still matches — the write
        version doubles as the warm set's *epoch*, bumped by every
        mutation through :meth:`atomic_update`.
        """
        with self._stripe(key):
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            return bytes(value), self._versions.get(key, 0)

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        """Bytes ``[offset, offset+length)`` of ``key`` (a copy)."""
        with self._stripe(key):
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            self._check_range(key, value, offset, length)
            return bytes(value[offset : offset + length])

    def get_ranges_into(
        self, key: str, dests: list[tuple[int, memoryview]]
    ) -> int:
        """Copy several ranges of ``key`` straight into caller views.

        ``dests`` is a list of ``(offset, view)`` pairs; each view receives
        ``value[offset : offset+len(view)]`` with no intermediate ``bytes``
        copy. Returns the total bytes copied. This is the batched, zero-copy
        read path pulls into shared regions use (one round trip for a whole
        gap list).
        """
        with self._stripe(key):
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            total = 0
            for offset, view in dests:
                length = len(view)
                self._check_range(key, value, offset, length)
                view[:] = memoryview(value)[offset : offset + length]
                total += length
            return total

    def get_ranges_into_versioned(
        self, key: str, dests: list[tuple[int, memoryview]]
    ) -> tuple[int, int, int]:
        """:meth:`get_ranges_into`, additionally returning ``(version,
        value size)`` as of the read. Copy, version, and size are captured
        under one stripe-lock hold, so the triple is exact — the
        foundation of the speculative pull path's staleness check."""
        with self._stripe(key):
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            total = 0
            for offset, view in dests:
                length = len(view)
                self._check_range(key, value, offset, length)
                view[:] = memoryview(value)[offset : offset + length]
                total += length
            return total, self._versions.get(key, 0), len(value)

    def set_range(self, key: str, offset: int, data: bytes) -> None:
        """Overwrite ``[offset, offset+len(data))``, growing if needed."""
        with self._stripe(key):
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            self._apply_range(value, offset, data)
            self._bump(key)

    def set_ranges(
        self,
        key: str,
        parts: list[tuple[int, bytes | bytearray | memoryview]],
        truncate_to: int | None = None,
    ) -> int:
        """Apply a batch of ``(offset, data)`` writes in one call.

        Creates the key if missing (unwritten gaps read as zeros) — a push
        of a locally created value must not require a separate create RPC.
        With ``truncate_to`` the value's final length is forced to exactly
        that many bytes (a delta push of a shrunk/grown value carries its
        new logical size). Returns the payload bytes applied.
        """
        return self.set_ranges_versioned(key, parts, truncate_to)[0]

    def set_ranges_versioned(
        self,
        key: str,
        parts: list[tuple[int, bytes | bytearray | memoryview]],
        truncate_to: int | None = None,
    ) -> tuple[int, int]:
        """:meth:`set_ranges`, additionally returning the write version
        this batch produced. Data and version are captured under one
        stripe-lock hold, so the pusher's knowledge is exact: the global
        value at the returned version is *precisely* its pre-image at
        ``version - 1`` with these ranges applied."""
        with self._stripe(key):
            value = self._values.get(key)
            if value is None:
                value = self._values[key] = bytearray()
            total = 0
            for offset, data in parts:
                self._apply_range(value, offset, data)
                total += len(data)
            if truncate_to is not None:
                if truncate_to < len(value):
                    del value[truncate_to:]
                elif truncate_to > len(value):
                    value.extend(b"\x00" * (truncate_to - len(value)))
            return total, self._bump(key)

    def append(self, key: str, data: bytes) -> None:
        """Append ``data`` to ``key`` (created empty if missing)."""
        with self._stripe(key):
            self._values.setdefault(key, bytearray()).extend(data)
            self._bump(key)

    def delete(self, key: str) -> None:
        """Drop the value and its distributed lock. The write-version
        counter is kept (and bumped) so a later recreate cannot alias a
        version number some replica still remembers."""
        with self._stripe(key):
            self._values.pop(key, None)
            self._bump(key)
        with self._meta:
            self._locks.pop(key, None)

    def exists(self, key: str) -> bool:
        """Whether ``key`` has a value."""
        return key in self._values

    def size(self, key: str) -> int:
        """Length of ``key``'s value in bytes."""
        with self._stripe(key):
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            return len(value)

    def version(self, key: str) -> int:
        """``key``'s current write version (0 if never written)."""
        with self._stripe(key):
            return self._versions.get(key, 0)

    def keys(self) -> list[str]:
        """All keys, sorted (an atomic snapshot)."""
        return sorted(self._values)

    def total_bytes(self) -> int:
        """Bytes stored across all keys."""
        return sum(len(v) for v in list(self._values.values()))

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_range(value: bytearray, offset: int, data) -> None:
        end = offset + len(data)
        if end > len(value):
            value.extend(b"\x00" * (end - len(value)))
        value[offset:end] = data

    @staticmethod
    def _check_range(key: str, value: bytearray, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > len(value):
            raise IndexError(
                f"range [{offset}, {offset + length}) outside value of "
                f"size {len(value)} for key {key!r}"
            )

    # ------------------------------------------------------------------
    # Distributed locks
    # ------------------------------------------------------------------
    def lock_for(self, key: str) -> RWLock:
        """The per-key distributed read/write lock (Tab. 2)."""
        with self._meta:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = RWLock()
            return lock

    # ------------------------------------------------------------------
    # Atomic helpers used by the scheduler's shared-state decisions (§5.1).
    # ------------------------------------------------------------------
    def atomic_update(self, key: str, fn) -> bytes:
        """Atomically apply ``fn(old_value | None) -> bytes`` to a key."""
        with self._stripe(key):
            old = self._values.get(key)
            new = fn(bytes(old) if old is not None else None)
            self._values[key] = bytearray(new)
            self._bump(key)
            return new


class StateClient:
    """A host's metered connection to the global tier.

    All local-tier pull/push traffic flows through one of these, so the
    per-host :class:`TransferMeter` reflects exactly the bytes — and round
    trips — that would cross the network to Redis in the paper's
    deployment. The ranged calls batch an arbitrary gap list into a single
    round trip (Fig. 4's chunked values without a per-chunk RPC tax).
    """

    #: How often a client re-tries an operation that hit a transient
    #: :class:`StateUnavailableError` before letting it propagate, and the
    #: (linearly growing) sleep between tries. Sized so a short stripe
    #: outage window is ridden out inside one logical operation.
    UNAVAILABLE_RETRIES = 25
    UNAVAILABLE_BACKOFF = 0.002

    def __init__(self, store: GlobalStateStore, meter: TransferMeter | None = None):
        self.store = store
        self.meter = meter or TransferMeter()

    def _retry(self, fn, *args):
        """Run a store operation, riding out transient unavailability."""
        for i in range(self.UNAVAILABLE_RETRIES):
            try:
                return fn(*args)
            except StateUnavailableError:
                time.sleep(self.UNAVAILABLE_BACKOFF * (i + 1))
        return fn(*args)  # final try propagates the error

    def pull(self, key: str) -> bytes:
        """Fetch the whole value; one round trip."""
        value = self._retry(self.store.get_value, key)
        self.meter.record_received(len(value))
        return value

    def pull_range(self, key: str, offset: int, length: int) -> bytes:
        """Fetch one byte range; one round trip."""
        value = self._retry(self.store.get_range, key, offset, length)
        self.meter.record_received(len(value))
        return value

    def pull_ranges(
        self, key: str, ranges: list[tuple[int, int]]
    ) -> list[bytes]:
        """Fetch several ``(offset, length)`` ranges in ONE round trip."""
        out = [
            self._retry(self.store.get_range, key, offset, length)
            for offset, length in ranges
        ]
        self.meter.record_received(sum(len(b) for b in out))
        return out

    def pull_ranges_into(self, key: str, dests: list[tuple[int, memoryview]]) -> int:
        """Fetch several ranges straight into caller views (e.g. a shared
        region) in ONE round trip, with no intermediate copies."""
        total = self._retry(self.store.get_ranges_into, key, dests)
        self.meter.record_received(total)
        return total

    def pull_ranges_into_versioned(
        self, key: str, dests: list[tuple[int, memoryview]]
    ) -> tuple[int, int, int]:
        """:meth:`pull_ranges_into` plus the ``(version, value size)`` the
        bytes were read at; still ONE round trip. The delivery plane uses
        the version to prove a speculative pull is (or is not) still
        current, and the size to detect a concurrent resize."""
        total, version, size = self._retry(
            self.store.get_ranges_into_versioned, key, dests
        )
        self.meter.record_received(total)
        return total, version, size

    def push(self, key: str, value: bytes) -> None:
        """Replace the whole value; one round trip."""
        self.meter.record_sent(len(value))
        self._retry(self.store.set_value, key, value)

    def push_range(self, key: str, offset: int, data: bytes) -> None:
        """Overwrite one byte range; one round trip."""
        self.meter.record_sent(len(data))
        self._retry(self.store.set_range, key, offset, data)

    def push_ranges(
        self,
        key: str,
        parts: list[tuple[int, bytes | bytearray | memoryview]],
        truncate_to: int | None = None,
    ) -> None:
        """Write several ``(offset, data)`` ranges — a delta push's dirty
        spans — in ONE round trip; ``truncate_to`` forces the value's final
        length (size changes travel with the same trip)."""
        self.meter.record_sent(sum(len(d) for _, d in parts))
        self._retry(self.store.set_ranges, key, parts, truncate_to)

    def push_ranges_versioned(
        self,
        key: str,
        parts: list[tuple[int, bytes | bytearray | memoryview]],
        truncate_to: int | None = None,
    ) -> int:
        """:meth:`push_ranges`, returning the write version this push
        produced — what a pusher advertises in push-invalidate hints."""
        self.meter.record_sent(sum(len(d) for _, d in parts))
        _, version = self._retry(
            self.store.set_ranges_versioned, key, parts, truncate_to
        )
        return version

    def append(self, key: str, data: bytes) -> None:
        """Append to the value; one round trip."""
        self.meter.record_sent(len(data))
        self._retry(self.store.append, key, data)

    def size(self, key: str) -> int:
        """Value size (metadata query, not charged as payload)."""
        return self.store.size(key)

    def exists(self, key: str) -> bool:
        """Whether the key exists in the global tier."""
        return self.store.exists(key)

    def version(self, key: str) -> int:
        """Current write version (metadata query, not charged)."""
        return self.store.version(key)

    def delete(self, key: str) -> None:
        """Remove the key from the global tier."""
        self.store.delete(key)

    def lock_for(self, key: str) -> RWLock:
        """The key's distributed read/write lock."""
        return self.store.lock_for(key)
