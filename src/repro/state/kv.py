"""The global state tier: a Redis-like in-memory key-value store (§4.2).

The authoritative copy of every state value lives here; hosts pull replicas
into their local tier and push updates back. The store supports the byte-
oriented operations the state API needs (whole values, ranges, appends) plus
per-key distributed read/write locks.

Every byte moved through a :class:`StateClient` is charged to that client's
:class:`TransferMeter`, which is how the experiments of Figs. 6b and 8b
account network traffic: in the paper's deployment the global tier is a
remote Redis, so every pull/push is a network transfer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .rwlock import RWLock


class StateKeyError(KeyError):
    """The requested state key does not exist in the global tier."""


@dataclass
class TransferMeter:
    """Counts bytes exchanged with the global tier (per host)."""

    sent_bytes: int = 0
    received_bytes: int = 0
    operations: int = 0

    def record_sent(self, nbytes: int) -> None:
        self.sent_bytes += nbytes
        self.operations += 1

    def record_received(self, nbytes: int) -> None:
        self.received_bytes += nbytes
        self.operations += 1

    @property
    def total_bytes(self) -> int:
        return self.sent_bytes + self.received_bytes

    def reset(self) -> None:
        self.sent_bytes = 0
        self.received_bytes = 0
        self.operations = 0


class GlobalStateStore:
    """Thread-safe authoritative store for all state keys in a cluster."""

    def __init__(self) -> None:
        self._values: dict[str, bytearray] = {}
        self._locks: dict[str, RWLock] = {}
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Value operations
    # ------------------------------------------------------------------
    def set_value(self, key: str, value: bytes | bytearray | memoryview) -> None:
        with self._mutex:
            self._values[key] = bytearray(value)

    def get_value(self, key: str) -> bytes:
        with self._mutex:
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            return bytes(value)

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        with self._mutex:
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            if offset < 0 or offset + length > len(value):
                raise IndexError(
                    f"range [{offset}, {offset + length}) outside value of "
                    f"size {len(value)} for key {key!r}"
                )
            return bytes(value[offset : offset + length])

    def set_range(self, key: str, offset: int, data: bytes) -> None:
        with self._mutex:
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            end = offset + len(data)
            if end > len(value):
                value.extend(b"\x00" * (end - len(value)))
            value[offset:end] = data

    def append(self, key: str, data: bytes) -> None:
        with self._mutex:
            self._values.setdefault(key, bytearray()).extend(data)

    def delete(self, key: str) -> None:
        with self._mutex:
            self._values.pop(key, None)
            self._locks.pop(key, None)

    def exists(self, key: str) -> bool:
        with self._mutex:
            return key in self._values

    def size(self, key: str) -> int:
        with self._mutex:
            value = self._values.get(key)
            if value is None:
                raise StateKeyError(key)
            return len(value)

    def keys(self) -> list[str]:
        with self._mutex:
            return sorted(self._values)

    def total_bytes(self) -> int:
        with self._mutex:
            return sum(len(v) for v in self._values.values())

    # ------------------------------------------------------------------
    # Distributed locks
    # ------------------------------------------------------------------
    def lock_for(self, key: str) -> RWLock:
        with self._mutex:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = RWLock()
            return lock

    # ------------------------------------------------------------------
    # Atomic helpers used by the scheduler's shared-state decisions (§5.1).
    # ------------------------------------------------------------------
    def atomic_update(self, key: str, fn) -> bytes:
        """Atomically apply ``fn(old_value | None) -> bytes`` to a key."""
        with self._mutex:
            old = self._values.get(key)
            new = fn(bytes(old) if old is not None else None)
            self._values[key] = bytearray(new)
            return new


class StateClient:
    """A host's metered connection to the global tier.

    All local-tier pull/push traffic flows through one of these, so the
    per-host :class:`TransferMeter` reflects exactly the bytes that would
    cross the network to Redis in the paper's deployment.
    """

    def __init__(self, store: GlobalStateStore, meter: TransferMeter | None = None):
        self.store = store
        self.meter = meter or TransferMeter()

    def pull(self, key: str) -> bytes:
        value = self.store.get_value(key)
        self.meter.record_received(len(value))
        return value

    def pull_range(self, key: str, offset: int, length: int) -> bytes:
        value = self.store.get_range(key, offset, length)
        self.meter.record_received(len(value))
        return value

    def push(self, key: str, value: bytes) -> None:
        self.meter.record_sent(len(value))
        self.store.set_value(key, value)

    def push_range(self, key: str, offset: int, data: bytes) -> None:
        self.meter.record_sent(len(data))
        self.store.set_range(key, offset, data)

    def append(self, key: str, data: bytes) -> None:
        self.meter.record_sent(len(data))
        self.store.append(key, data)

    def size(self, key: str) -> int:
        return self.store.size(key)

    def exists(self, key: str) -> bool:
        return self.store.exists(key)

    def delete(self, key: str) -> None:
        self.store.delete(key)

    def lock_for(self, key: str) -> RWLock:
        return self.store.lock_for(key)
