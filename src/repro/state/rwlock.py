"""A reentrancy-free reader–writer lock.

Used for both local-tier replica locks and global-tier per-key locks
(Tab. 2: ``lock_state_read/write`` and ``lock_state_global_read/write``).
Writer-preferring: once a writer is waiting, new readers queue behind it,
bounding writer starvation under read-heavy workloads like shared matrices.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """A writer-preferring reader–writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- write side --------------------------------------------------------
    def acquire_write(self, timeout: float | None = None) -> bool:
        with self._cond:
            self._writers_waiting += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer and self._readers == 0, timeout
                )
                if not ok:
                    return False
                self._writer = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without a held write lock")
            self._writer = False
            self._cond.notify_all()

    # -- read side ----------------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> bool:
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._writer and self._writers_waiting == 0, timeout
            )
            if not ok:
                return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a held read lock")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- context managers --------------------------------------------------
    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests) ----------------------------------------------
    @property
    def readers(self) -> int:
        return self._readers

    @property
    def write_held(self) -> bool:
        return self._writer
