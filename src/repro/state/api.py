"""The key/value state API of Tab. 2, bound to one host's local tier.

This is the surface both the Faaslet host interface (guest-facing) and the
distributed data objects (host-facing) are built on: ``get/set_state`` (and
offset variants) touch the local tier only; ``push/pull_state`` move data
between tiers; ``append_state`` goes straight to the global tier; lock
functions expose the local and global read/write locks.
"""

from __future__ import annotations

from contextlib import contextmanager

from .local import LocalTier


class StateAPI:
    """Host-side implementation of the paper's state API (Tab. 2)."""

    def __init__(self, tier: LocalTier):
        self.tier = tier

    # ------------------------------------------------------------------
    # get/set (local tier)
    # ------------------------------------------------------------------
    def get_state(
        self, key: str, size: int | None = None, mark_dirty: bool = True
    ) -> memoryview:
        """Pointer (zero-copy view) to the local replica of ``key``.

        Per §4.2, a replica is created (and pulled from the global tier)
        only "if it does not already exist": an existing replica is returned
        as-is, preserving local writes that have not been pushed yet. With
        an explicit ``size`` a key missing everywhere yields a zeroed local
        value, as when a function creates state it will later push.

        Because the returned view is writable and untracked, the whole
        value is conservatively marked dirty (the next push behaves like a
        classic full push). Callers that report their own writes precisely
        — the DDOs' delta paths — pass ``mark_dirty=False``.
        """
        if self.tier.has_replica(key):
            rep = self.tier.replica(key, size)
            if rep.speculative:
                # Touched only by the prefetcher so far: this is the
                # demand pull; the tier completes it exactly (gap-fill
                # when the speculation is provably current, full pull
                # otherwise).
                rep = self.tier.pull(key)
        elif size is not None and not self.tier.client.exists(key):
            rep = self.tier.replica(key, size)
            with rep.lock.write_locked():
                rep.present.add(0, size)
        else:
            rep = self.tier.pull(key)
        if mark_dirty:
            rep.mark_dirty(0, rep.size)
        self.tier.credit_read(key, 0, rep.size)
        return rep.region.view(0, rep.size)

    def get_state_offset(
        self, key: str, offset: int, length: int, mark_dirty: bool = True
    ) -> memoryview:
        """Pointer to a chunk of the replica, pulling only that chunk (the
        chunk is conservatively marked dirty unless the caller opts out and
        tracks its own writes)."""
        rep = self.tier.pull_chunk(key, offset, length)
        if mark_dirty:
            rep.mark_dirty(offset, offset + length)
        return rep.region.view(offset, length)

    def set_state(self, key: str, value: bytes) -> None:
        """Set the local replica's value (no global traffic)."""
        self.tier.write_local(key, value, 0, size=len(value))

    def set_state_offset(self, key: str, value: bytes, offset: int) -> None:
        self.tier.write_local(key, value, offset)

    def set_state_from_memory(
        self, key: str, memory, addr: int, length: int,
        offset: int = 0, size: int | None = None,
    ) -> None:
        """Zero-copy ``set_state`` for the host interface: bytes move from
        the guest's linear memory pages straight into the replica's shared
        region, no intermediate ``bytes`` object."""
        self.tier.write_local_from_memory(
            key, memory, addr, length, offset=offset, size=size
        )

    # ------------------------------------------------------------------
    # push/pull (tier movement)
    # ------------------------------------------------------------------
    def push_state(self, key: str) -> None:
        self.tier.push(key)

    def push_state_offset(self, key: str, offset: int, length: int) -> None:
        self.tier.push_chunk(key, offset, length)

    def pull_state(self, key: str) -> None:
        self.tier.pull(key, force=True)

    def pull_state_offset(self, key: str, offset: int, length: int) -> None:
        self.tier.pull_chunk(key, offset, length, force=True)

    # ------------------------------------------------------------------
    # append (global tier)
    # ------------------------------------------------------------------
    def append_state(self, key: str, value: bytes) -> None:
        self.tier.client.append(key, value)

    def read_appended(self, key: str) -> bytes:
        return self.tier.client.pull(key)

    # ------------------------------------------------------------------
    # Locks
    # ------------------------------------------------------------------
    def lock_state_read(self, key: str) -> None:
        self.tier.replica(key).lock.acquire_read()

    def unlock_state_read(self, key: str) -> None:
        self.tier.replica(key).lock.release_read()

    def lock_state_write(self, key: str) -> None:
        self.tier.replica(key).lock.acquire_write()

    def unlock_state_write(self, key: str) -> None:
        self.tier.replica(key).lock.release_write()

    def lock_state_global_read(self, key: str) -> None:
        self.tier.client.lock_for(key).acquire_read()

    def unlock_state_global_read(self, key: str) -> None:
        self.tier.client.lock_for(key).release_read()

    def lock_state_global_write(self, key: str) -> None:
        self.tier.client.lock_for(key).acquire_write()

    def unlock_state_global_write(self, key: str) -> None:
        self.tier.client.lock_for(key).release_write()

    @contextmanager
    def consistent_write(self, key: str):
        """The strongly consistent write recipe from §4.2: acquire the
        global write lock, pull, yield the replica view for modification,
        push, release."""
        self.lock_state_global_write(key)
        try:
            if self.tier.client.exists(key):
                self.pull_state(key)
            rep = self.tier.replica(key)
            yield rep.region.view(0, rep.size)
            # The caller wrote through an untracked view: mark the whole
            # value dirty so the push flushes it.
            rep.mark_dirty(0, rep.size)
            self.push_state(key)
        finally:
            self.unlock_state_global_write(key)

    # ------------------------------------------------------------------
    def state_size(self, key: str) -> int:
        if self.tier.has_replica(key):
            rep = self.tier.replica(key)
            # A purely speculative replica must be invisible: answer from
            # the global tier, exactly as if no prefetch had happened.
            if not rep.speculative:
                return rep.size
        return self.tier.client.size(key)

    def exists(self, key: str) -> bool:
        if self.tier.has_replica(key) and not self.tier.replica(key).speculative:
            return True
        return self.tier.client.exists(key)

    def delete(self, key: str) -> None:
        self.tier.drop(key)
        self.tier.client.delete(key)
