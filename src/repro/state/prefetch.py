"""Profile-driven proactive data delivery (ROADMAP item 3, DESIGN.md §10).

Faasm's two-tier state design (§4.2) pulls state on demand: a function's
first access to a key pays a global-tier round trip, serialised behind the
snapshot restore on the cold path and behind the chain hop on the chained
path. The profiles PR 7 mines (:mod:`repro.telemetry.profiles`) record
exactly which byte ranges each function touches, so the runtime can move
those bytes *before* the guest asks:

* **Prefetch** — on dispatch, the HEAD :class:`AccessProfile`'s hot read
  ranges are pulled into the local tier concurrently with the snapshot
  restore (:meth:`LocalTier.prefetch_spans`).
* **Push-invalidate** — a host piggybacks its push chain and latest known
  write versions on outgoing calls, so the callee's forced pull skips
  clean keys entirely or delta-pulls only the truly-stale ranges.
* **Pre-placement** — the scheduler's residency ranking warms likely-next
  hosts' page stores with a callee's snapshot pages in the background
  (:meth:`HostSnapshotCache.warm_pages`).

All three are governed by one :class:`DeliveryPolicy` and are *semantically
invisible*: every speculative action is either a legal early demand
operation under the §4.1 consistency model or is proven byte-identical via
global write versions before it substitutes for a demand operation. The
differential suite (``tests/state/test_prefetch_differential.py``) and the
chaos plane hold that line.

Failure handling is strictly degrade-to-demand: a speculative pull that
hits :class:`StateUnavailableError` (or anything else) is abandoned —
never re-driven by an outer retry loop — and the call proceeds on the
demand path as if the prefetch had never been scheduled.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.telemetry import MetricsRegistry

from .kv import StateKeyError, StateUnavailableError
from .local import LocalTier


@dataclass(frozen=True)
class DeliveryPolicy:
    """Knobs for the proactive delivery plane, threaded from the cluster
    down to every host's tier, scheduler, and prefetcher.

    ``confidence`` is the fraction of a function's observed calls that
    must have read a byte range before it is worth prefetching — the
    direct lever on the hit/waste ratio ``repro prefetch`` reports.
    """

    mode: str = "off"
    prefetch: bool = False
    push_invalidate: bool = False
    pre_place: bool = False
    confidence: float = 0.6
    top_ranges: int = 8
    #: Hard cap on speculative bytes pulled per dispatch.
    max_bytes_per_call: int = 4 * 1024 * 1024
    #: Most keys considered per dispatch (and per invalidation payload).
    max_keys: int = 8
    #: Run speculative work inline on the dispatching thread instead of
    #: overlapped — deterministic ordering for tests and benchmarks.
    synchronous: bool = False

    @property
    def enabled(self) -> bool:
        return self.prefetch or self.push_invalidate or self.pre_place

    @classmethod
    def off(cls) -> "DeliveryPolicy":
        """Demand-only delivery (the default; PR-7-and-earlier behaviour)."""
        return cls()

    @classmethod
    def conservative(cls, **overrides) -> "DeliveryPolicy":
        """Prefetch + push-invalidate, only for near-certain ranges."""
        defaults = dict(
            mode="conservative",
            prefetch=True,
            push_invalidate=True,
            confidence=0.9,
            top_ranges=4,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def aggressive(cls, **overrides) -> "DeliveryPolicy":
        """All three mechanisms, speculating on anything seen in half of
        the profiled calls."""
        defaults = dict(
            mode="aggressive",
            prefetch=True,
            push_invalidate=True,
            pre_place=True,
            confidence=0.5,
            top_ranges=16,
        )
        defaults.update(overrides)
        return cls(**defaults)


class PrefetchHandle:
    """One dispatch's in-flight speculative pull (joinable)."""

    def __init__(self, function: str, plan):
        self.function = function
        self.plan = plan
        self.bytes_pulled = 0
        self.aborted = False
        self.done = threading.Event()

    def wait(self, timeout: float | None = None) -> bool:
        return self.done.wait(timeout)


class Prefetcher:
    """Per-host driver of profile-guided state prefetch.

    On dispatch the runtime calls :meth:`begin`, which consults the HEAD
    access profile for the function (plans are cached per profile digest,
    so steady state costs one object-store HEAD lookup) and pulls the hot
    read ranges into the local tier on a background thread — overlapped
    with the snapshot restore that the dispatching thread performs.

    The ledger (:meth:`stats`) attributes every prefetched and every
    demand-hit byte to the function whose profile motivated the pull, so
    ``repro prefetch`` can show hit/waste ratios per function.
    """

    def __init__(
        self,
        host: str,
        tier: LocalTier,
        profile_store,
        policy: DeliveryPolicy,
        metrics: MetricsRegistry | None = None,
    ):
        self.host = host
        self.tier = tier
        self.store = profile_store
        self.policy = policy
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._bytes = metrics.counter("prefetch.bytes", host=host)
        self._hits = metrics.counter("prefetch.hit_bytes", host=host)
        self._aborts = metrics.counter("prefetch.aborted", host=host)
        self._begun = metrics.counter("prefetch.begun", host=host)
        self._lock = threading.Lock()
        #: function -> (profile digest, plan) — invalidated when HEAD moves.
        self._plans: dict[str, tuple[str, tuple]] = {}
        #: key -> function whose profile prefetched it (hit attribution).
        self._key_owner: dict[str, str] = {}
        #: function -> {prefetched_bytes, hit_bytes, aborted}
        self._ledger: dict[str, dict] = {}
        self._outstanding: list[PrefetchHandle] = []
        tier.on_prefetch_hit = self._record_hit

    # ------------------------------------------------------------------
    def plan(self, function: str) -> tuple:
        """The function's prefetch plan: ``((key, ((start, end), ...)),
        ...)`` from the HEAD profile's hot read ranges, or ``()`` when no
        profile exists or nothing clears the confidence threshold."""
        head = self.store.head(function)
        if head is None:
            return ()
        with self._lock:
            cached = self._plans.get(function)
            if cached is not None and cached[0] == head:
                return cached[1]
        profile = self.store.load(function, head)
        plan: tuple = ()
        if profile is not None:
            hot = profile.hot_ranges(
                confidence=self.policy.confidence, top=self.policy.top_ranges
            )
            plan = tuple(
                (key, tuple(spans))
                for key, spans in sorted(hot.items())[: self.policy.max_keys]
            )
        with self._lock:
            self._plans[function] = (head, plan)
        return plan

    def begin(self, function: str) -> PrefetchHandle | None:
        """Kick off the speculative pull for one dispatch of ``function``
        (``None`` when the policy is off or nothing is worth pulling)."""
        if not self.policy.prefetch:
            return None
        try:
            plan = self.plan(function)
        except StateUnavailableError:
            self._aborts.inc()
            return None
        if not plan:
            return None
        handle = PrefetchHandle(function, plan)
        self._begun.inc()
        with self._lock:
            self._outstanding = [
                h for h in self._outstanding if not h.done.is_set()
            ]
            self._outstanding.append(handle)
        if self.policy.synchronous:
            self._run(handle)
        else:
            threading.Thread(
                target=self._run,
                args=(handle,),
                name=f"prefetch-{self.host}-{function}",
                daemon=True,
            ).start()
        return handle

    def hint(self, key: str) -> bool:
        """Guest-initiated prefetch hint (the ``prefetch_state`` host
        call, Tab. 2 extension): pull the key's missing bytes in the
        background. Returns False when the policy disables prefetch."""
        if not self.policy.prefetch:
            return False

        def run():
            try:
                size = self.tier.client.size(key)
                pulled = self.tier.prefetch_spans(
                    key, [(0, size)], self.policy.max_bytes_per_call
                )
                self._bytes.inc(pulled)
            except (StateKeyError, StateUnavailableError):
                self._aborts.inc()
            except Exception:
                self._aborts.inc()

        if self.policy.synchronous:
            run()
        else:
            threading.Thread(
                target=run, name=f"prefetch-hint-{self.host}", daemon=True
            ).start()
        return True

    def _run(self, handle: PrefetchHandle) -> None:
        budget = self.policy.max_bytes_per_call
        try:
            for key, spans in handle.plan:
                if budget <= 0:
                    break
                with self._lock:
                    self._key_owner[key] = handle.function
                try:
                    pulled = self.tier.prefetch_spans(key, spans, budget)
                except StateKeyError:
                    continue  # key gone: nothing to deliver early
                except StateUnavailableError:
                    # Degrade to demand: the guest's own access will ride
                    # the client's bounded retries (or surface the fault
                    # exactly as it would without a prefetcher).
                    handle.aborted = True
                    self._aborts.inc()
                    break
                except Exception:
                    handle.aborted = True
                    self._aborts.inc()
                    break
                budget -= pulled
                handle.bytes_pulled += pulled
                if pulled:
                    self._bytes.inc(pulled)
                    with self._lock:
                        row = self._ledger.setdefault(
                            handle.function,
                            {"prefetched_bytes": 0, "hit_bytes": 0, "aborted": 0},
                        )
                        row["prefetched_bytes"] += pulled
            if handle.aborted:
                with self._lock:
                    row = self._ledger.setdefault(
                        handle.function,
                        {"prefetched_bytes": 0, "hit_bytes": 0, "aborted": 0},
                    )
                    row["aborted"] += 1
        finally:
            handle.done.set()

    def _record_hit(self, key: str, nbytes: int) -> None:
        self._hits.inc(nbytes)
        with self._lock:
            function = self._key_owner.get(key)
            if function is None:
                return
            row = self._ledger.setdefault(
                function, {"prefetched_bytes": 0, "hit_bytes": 0, "aborted": 0}
            )
            row["hit_bytes"] += nbytes

    # ------------------------------------------------------------------
    def quiesce(self, timeout: float = 5.0) -> None:
        """Wait for in-flight speculative pulls to finish."""
        with self._lock:
            handles = list(self._outstanding)
        for handle in handles:
            handle.wait(timeout)

    def stats(self) -> dict[str, dict]:
        """Per-function delivery ledger: bytes prefetched, bytes of those
        actually demanded, and the waste (prefetched but never read)."""
        with self._lock:
            out = {}
            for function, row in sorted(self._ledger.items()):
                waste = max(0, row["prefetched_bytes"] - row["hit_bytes"])
                out[function] = dict(row, waste_bytes=waste)
            return out
