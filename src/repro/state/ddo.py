"""Distributed data objects (DDOs, §4/§4.1).

DDOs are the high-level, language-specific classes users program against;
each one wraps a single state key (or a small family of keys) and hides the
two-tier architecture behind ordinary container semantics. They map onto
the state API exactly as in the paper: reads pull lazily, writes go to the
local tier, and explicit/periodic pushes propagate to the global tier with
whatever consistency the object chooses.

The three objects from Listing 1 are here (``SparseMatrixReadOnly``,
``MatrixReadOnly``, ``VectorAsync``) plus a dictionary, a list and an
immutable value.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np

from .api import StateAPI
from .kv import StateKeyError


class DistributedObject:
    """Base class: one state key managed through a :class:`StateAPI`."""

    def __init__(self, api: StateAPI, key: str):
        self.api = api
        self.key = key

    def exists(self) -> bool:
        return self.api.exists(self.key)

    def delete(self) -> None:
        self.api.delete(self.key)


class ImmutableValue(DistributedObject):
    """A write-once value; replicas never need re-synchronisation."""

    def __init__(self, api: StateAPI, key: str):
        super().__init__(api, key)
        self._cached: bytes | None = None

    def create(self, value: bytes) -> None:
        if self.api.exists(self.key):
            raise ValueError(f"immutable value {self.key!r} already exists")
        self.api.set_state(self.key, value)
        self.api.push_state(self.key)
        self._cached = bytes(value)

    def get(self) -> bytes:
        if self._cached is None:
            self._cached = bytes(self.api.get_state(self.key))
        return self._cached


class DistributedDict(DistributedObject):
    """A pickled dictionary with explicit push/pull and an optional strongly
    consistent update path."""

    def _load(self) -> dict:
        try:
            # pickle reads straight from the replica view (no bytes copy).
            raw = self.api.get_state(self.key)
        except StateKeyError:
            return {}
        return pickle.loads(raw) if len(raw) else {}

    def _store(self, data: dict) -> None:
        self.api.set_state(self.key, pickle.dumps(data))

    def get(self, item, default=None):
        return self._load().get(item, default)

    def put(self, item, value) -> None:
        """Eventually-consistent write: local update + full push."""
        data = self._load()
        data[item] = value
        self._store(data)
        self.api.push_state(self.key)

    def update_atomic(self, fn) -> dict:
        """Strongly consistent read-modify-write under the global lock."""
        self.api.lock_state_global_write(self.key)
        try:
            if self.api.tier.client.exists(self.key):
                self.api.pull_state(self.key)
            data = self._load()
            fn(data)
            self._store(data)
            self.api.push_state(self.key)
            return data
        finally:
            self.api.unlock_state_global_write(self.key)

    def items(self) -> dict:
        return self._load()

    def pull(self) -> None:
        self.api.pull_state(self.key)


class DistributedList(DistributedObject):
    """An append-only list built on the global tier's append operation.

    Appends are naturally eventually consistent: they commute, so no
    locking is required (the paper's example of a consistency-relaxed DDO).
    """

    _LEN = struct.Struct("<I")

    def append(self, value: bytes) -> None:
        self.api.append_state(self.key, self._LEN.pack(len(value)) + value)

    def items(self) -> list[bytes]:
        try:
            raw = self.api.read_appended(self.key)
        except StateKeyError:
            return []
        out: list[bytes] = []
        pos = 0
        while pos < len(raw):
            (n,) = self._LEN.unpack_from(raw, pos)
            pos += self._LEN.size
            out.append(bytes(raw[pos : pos + n]))
            pos += n
        return out

    def __len__(self) -> int:
        return len(self.items())


class DistributedCounter(DistributedObject):
    """A conflict-free distributed counter (G-counter style).

    ``VectorAsync``-style whole-value pushes race under concurrent writers
    (last writer wins). The counter instead gives each host its own sub-key
    — increments touch only the local host's slot, pushes never conflict,
    and the value is the sum over all hosts' slots. This is the DDO pattern
    the paper describes for consistency-relaxed structures (§4.1): cheap
    eventually-consistent updates with a well-defined merge.
    """

    _SLOT = struct.Struct("<q")

    def _slot_key(self) -> str:
        return f"{self.key}:host:{self.api.tier.host}"

    def increment(self, amount: int = 1) -> None:
        """Add to this host's slot locally (propagates on push)."""
        key = self._slot_key()
        try:
            current = self._SLOT.unpack(bytes(self.api.get_state(key, size=8)))[0]
        except StateKeyError:
            current = 0
        self.api.set_state(key, self._SLOT.pack(current + amount))

    def push(self) -> None:
        """Publish this host's slot (never conflicts with other hosts)."""
        self.api.push_state(self._slot_key())

    def local_value(self) -> int:
        """This host's contribution."""
        try:
            return self._SLOT.unpack(bytes(self.api.get_state(self._slot_key())))[0]
        except StateKeyError:
            return 0

    def value(self) -> int:
        """The merged global value: the sum of every host's slot."""
        prefix = f"{self.key}:host:"
        total = 0
        for key in self.api.tier.client.store.keys():
            if key.startswith(prefix):
                total += self._SLOT.unpack(self.api.tier.client.pull(key))[0]
        # Include unpushed local contribution exactly once.
        local_key = self._slot_key()
        if not self.api.tier.client.exists(local_key):
            total += self.local_value()
        else:
            pushed = self._SLOT.unpack(self.api.tier.client.pull(local_key))[0]
            total += self.local_value() - pushed
        return total


class VectorAsync(DistributedObject):
    """A float64 vector with asynchronous (batched) global updates.

    Reads and writes hit the local replica through a zero-copy numpy view;
    ``push()`` propagates local updates to the global tier and ``pull()``
    refreshes it — the eventual-consistency pattern ``weights`` uses in
    Listing 1.

    Pushes are **delta pushes**: the vector keeps a shadow copy of the
    replica as of the last sync and, at push time, diffs the live array
    against it byte-exactly (Faasm's dirty-byte comparison against the
    original snapshot). Only the changed element ranges are marked dirty
    and flushed — a sparse SGD update of a few weights moves a few dozen
    bytes, not the whole vector — and arbitrary in-place numpy writes
    through :attr:`array` are captured without any write hooks.
    """

    #: Changed elements closer than this merge into one flushed span (the
    #: per-range framing overhead outweighs re-sending a few clean bytes).
    _COALESCE_GAP = 8

    def __init__(self, api: StateAPI, key: str, length: int):
        super().__init__(api, key)
        self.length = length
        view = api.get_state(key, size=length * 8, mark_dirty=False)
        self._array = np.frombuffer(view, dtype=np.float64)
        self._replica = api.tier.replica(key)
        self._shadow = self._array.copy()

    @classmethod
    def create(cls, api: StateAPI, key: str, values: np.ndarray) -> "VectorAsync":
        values = np.asarray(values, dtype=np.float64)
        api.set_state(key, values.tobytes())
        api.push_state(key)
        return cls(api, key, len(values))

    @property
    def array(self) -> np.ndarray:
        """The live local view; writes are local until ``push()``."""
        return self._array

    def __getitem__(self, idx):
        return self._array[idx]

    def __setitem__(self, idx, value) -> None:
        self._array[idx] = value

    def __len__(self) -> int:
        return self.length

    def _changed_spans(self) -> list[tuple[int, int]]:
        """Element ranges where the live array differs from the shadow,
        coalescing near-adjacent changes."""
        changed = np.flatnonzero(self._array != self._shadow)
        if changed.size == 0:
            return []
        spans: list[tuple[int, int]] = []
        start = prev = int(changed[0])
        for idx in changed[1:]:
            idx = int(idx)
            if idx - prev > self._COALESCE_GAP:
                spans.append((start, prev + 1))
                start = idx
            prev = idx
        spans.append((start, prev + 1))
        return spans

    def push(self) -> None:
        """Flush elements modified since the last sync (delta push)."""
        for lo, hi in self._changed_spans():
            self._replica.mark_dirty(lo * 8, hi * 8)
        self.api.push_state(self.key)
        np.copyto(self._shadow, self._array)

    def pull(self) -> None:
        self.api.pull_state(self.key)
        np.copyto(self._shadow, self._array)


class MatrixReadOnly(DistributedObject):
    """A dense float64 matrix with chunked, column-range reads.

    The matrix is stored column-major so a column range is one contiguous
    state chunk; ``columns(a, b)`` pulls only that chunk into the local tier
    (Fig. 4's value ``C``).
    """

    _META = struct.Struct("<II")  # rows, cols

    def __init__(self, api: StateAPI, key: str):
        super().__init__(api, key)
        meta = bytes(api.get_state(self.meta_key(key)))
        self.rows, self.cols = self._META.unpack(meta)

    @staticmethod
    def meta_key(key: str) -> str:
        return f"{key}:meta"

    @classmethod
    def create(cls, api: StateAPI, key: str, matrix: np.ndarray) -> "MatrixReadOnly":
        matrix = np.asarray(matrix, dtype=np.float64)
        rows, cols = matrix.shape
        api.set_state(cls.meta_key(key), cls._META.pack(rows, cols))
        api.push_state(cls.meta_key(key))
        api.set_state(key, np.asfortranarray(matrix).tobytes(order="F"))
        api.push_state(key)
        return cls(api, key)

    def columns(self, start: int, end: int) -> np.ndarray:
        """Columns [start, end) as a read-only array, pulling one chunk."""
        if not 0 <= start <= end <= self.cols:
            raise IndexError(f"column range [{start}, {end}) outside {self.cols}")
        nbytes = (end - start) * self.rows * 8
        offset = start * self.rows * 8
        # Read-only access: no dirty marking, the chunk is never pushed.
        view = self.api.get_state_offset(self.key, offset, nbytes, mark_dirty=False)
        arr = np.frombuffer(view, dtype=np.float64).reshape(
            (self.rows, end - start), order="F"
        )
        arr.flags.writeable = False
        return arr

    def full(self) -> np.ndarray:
        return self.columns(0, self.cols)


class SparseMatrixReadOnly(DistributedObject):
    """A CSC sparse float64 matrix with chunked column-range reads.

    Stored as three state values (``data``, ``indices``, ``indptr``); a
    column-range read pulls the small ``indptr`` array plus only the data
    and index chunks those columns cover, mirroring how the SGD training
    matrices are accessed in Listing 1.
    """

    _META = struct.Struct("<III")  # rows, cols, nnz

    def __init__(self, api: StateAPI, key: str):
        super().__init__(api, key)
        meta = bytes(api.get_state(f"{key}:meta"))
        self.rows, self.cols, self.nnz = self._META.unpack(meta)
        indptr_view = api.get_state(f"{key}:indptr")
        self._indptr = np.frombuffer(indptr_view, dtype=np.int64)

    @classmethod
    def create(cls, api: StateAPI, key: str, matrix) -> "SparseMatrixReadOnly":
        from scipy.sparse import csc_matrix

        csc = csc_matrix(matrix, dtype=np.float64)
        rows, cols = csc.shape
        api.set_state(f"{key}:meta", cls._META.pack(rows, cols, csc.nnz))
        api.push_state(f"{key}:meta")
        api.set_state(f"{key}:indptr", csc.indptr.astype(np.int64).tobytes())
        api.push_state(f"{key}:indptr")
        api.set_state(f"{key}:indices", csc.indices.astype(np.int32).tobytes())
        api.push_state(f"{key}:indices")
        api.set_state(f"{key}:data", csc.data.astype(np.float64).tobytes())
        api.push_state(f"{key}:data")
        return cls(api, key)

    def columns(self, start: int, end: int):
        """Columns [start, end) as a ``scipy.sparse.csc_matrix``, pulling
        only the chunks they cover."""
        from scipy.sparse import csc_matrix

        if not 0 <= start <= end <= self.cols:
            raise IndexError(f"column range [{start}, {end}) outside {self.cols}")
        lo = int(self._indptr[start])
        hi = int(self._indptr[end])
        data_view = self.api.get_state_offset(
            f"{self.key}:data", lo * 8, (hi - lo) * 8, mark_dirty=False
        )
        idx_view = self.api.get_state_offset(
            f"{self.key}:indices", lo * 4, (hi - lo) * 4, mark_dirty=False
        )
        data = np.frombuffer(data_view, dtype=np.float64)
        indices = np.frombuffer(idx_view, dtype=np.int32)
        indptr = (self._indptr[start : end + 1] - lo).astype(np.int32)
        return csc_matrix((data, indices, indptr), shape=(self.rows, end - start))
