"""Synthetic datasets for the evaluation applications.

The paper trains on Reuters RCV1 (~800 K documents × 47 k sparse TF-IDF
features) — a dataset we cannot ship. :func:`generate_rcv1_like` produces a
sparse binary-classification dataset with the same *shape* properties
(dimensionality, density, separability) at any scale, so the SGD code paths
(chunked sparse reads, shared weight vector) are exercised identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csc_matrix, random as sparse_random

#: Real RCV1 dimensions (for reference and for the simulated experiments).
RCV1_EXAMPLES = 800_000
RCV1_FEATURES = 47_236
RCV1_DENSITY = 0.0016


@dataclass
class SparseDataset:
    """A labelled sparse dataset; ``features`` is (n_features, n_examples)
    in CSC form so one column = one example (as Listing 1 reads it)."""

    features: csc_matrix
    labels: np.ndarray
    true_weights: np.ndarray

    @property
    def n_features(self) -> int:
        return self.features.shape[0]

    @property
    def n_examples(self) -> int:
        return self.features.shape[1]

    @property
    def nbytes(self) -> int:
        return (
            self.features.data.nbytes
            + self.features.indices.nbytes
            + self.features.indptr.nbytes
            + self.labels.nbytes
        )


def generate_rcv1_like(
    n_examples: int = 4096,
    n_features: int = 512,
    density: float = 0.02,
    seed: int = 42,
) -> SparseDataset:
    """A linearly separable-ish sparse dataset with RCV1-like structure."""
    rng = np.random.default_rng(seed)
    features = sparse_random(
        n_features,
        n_examples,
        density=density,
        random_state=np.random.RandomState(seed),
        format="csc",
        dtype=np.float64,
    )
    # TF-IDF-ish positive values.
    features.data[:] = np.abs(features.data) + 0.1
    true_weights = rng.normal(0, 1, n_features)
    margins = features.T @ true_weights
    labels = np.where(margins > np.median(margins), 1.0, -1.0)
    return SparseDataset(features, labels, true_weights)


def generate_images(count: int, size_bytes: int = 224 * 224 * 3, seed: int = 7) -> list[bytes]:
    """Fake input images for the inference-serving experiment (§6.3)."""
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size_bytes, dtype=np.uint8).tobytes() for _ in range(count)]
