"""Simulated workload models for the cluster-scale experiments.

Each builder returns platform-independent :class:`SimFunction` workloads
plus a driver that runs the experiment against any platform model. The
parameters are the paper's (§6.1–§6.4): RCV1-scale data for SGD,
MobileNet-scale models for inference, square matrices for matmul.

Key modelling choices (and why they match the paper's mechanics):

* **SGD (Fig. 6)** — each epoch assigns every worker a contiguous, randomly
  offset column range (Listing 1's ``idx_a:idx_b``). Ranges are fetched at
  *chunk* granularity, so more workers ⇒ more boundary over-fetch. Workers
  read the shared weights, compute proportionally to their non-zeros, and
  emit weight updates every ``push_interval`` examples with ``push=False``:
  FAASM batches them in the local tier (flushed per host per epoch), the
  container baseline must ship every one. Containers privately accumulate
  every chunk they ever read — the memory-pressure mechanism that OOMs
  Knative beyond ~30 parallel functions.
* **Inference (Fig. 7)** — open-loop Poisson-ish arrivals at a target rate;
  a configurable fraction of requests hits a *fresh* function identity
  (each user's first request cold-starts, §6.3). The model weights are one
  state value shared per host under FAASM and duplicated per container
  under Knative; inference compute pays the wasm slowdown under FAASM
  (the paper's TFLite-to-wasm overhead).
* **Matmul (Fig. 8)** — depth-2, branch-8 divide and conquer: 64 leaf
  multiplications + 9 merges, operands and intermediates in state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.workload import (
    Await,
    Chain,
    Compute,
    LoadExternal,
    SimFunction,
    StateRead,
    StateWrite,
)

MB = 1024 * 1024
GB = 1024 * MB


# ----------------------------------------------------------------------
# SGD (Fig. 6)
# ----------------------------------------------------------------------


@dataclass
class SGDModelParams:
    """RCV1-scale defaults (§6.2)."""

    n_examples: int = 800_000
    n_features: int = 47_236
    #: Bytes per example across the training data as stored in the state
    #: tier (sparse values + indices + per-example framing).
    bytes_per_example: int = 4_500
    n_epochs: int = 20
    #: Chunk granularity of the training matrix in the state tier.
    n_chunks: int = 32
    #: Examples between weight-update pushes.
    push_interval: int = 1_000
    #: FLOPs per training example and per-core compute rate (includes the
    #: interpreter overhead of running the model code under CPython).
    flops_per_example: float = 50_000.0
    host_flops: float = 2.0e9

    @property
    def dataset_bytes(self) -> int:
        return self.n_examples * self.bytes_per_example

    @property
    def chunk_bytes(self) -> int:
        return self.dataset_bytes // self.n_chunks

    @property
    def weights_bytes(self) -> int:
        return self.n_features * 8


def build_sgd_worker(params: SGDModelParams) -> SimFunction:
    """The ``weight_update`` worker as a simulated workload."""

    def body(arg):
        epoch, start_example, n_worker_examples = arg
        # Chunks covering the worker's contiguous example range.
        first_chunk = (start_example * params.n_chunks) // params.n_examples
        last_example = start_example + n_worker_examples - 1
        last_chunk = (last_example * params.n_chunks) // params.n_examples
        for chunk in range(first_chunk, last_chunk + 1):
            yield StateRead(f"train-chunk-{chunk % params.n_chunks}", params.chunk_bytes)
        yield StateRead("weights", params.weights_bytes)
        n_pushes = max(1, n_worker_examples // params.push_interval)
        compute_per_push = (
            n_worker_examples * params.flops_per_example / params.host_flops / n_pushes
        )
        for _ in range(n_pushes):
            yield Compute(compute_per_push)
            yield StateWrite("weights", params.weights_bytes, push=False)

    return SimFunction(
        "weight_update",
        body,
        working_set=2 * MB,
        init_cost_s=1.0,  # CPython + numpy startup inside a fresh container
        snapshot_init=True,
    )


def sgd_epoch_args(params: SGDModelParams, n_workers: int, epoch: int) -> list[tuple]:
    """Contiguous ranges with a per-epoch pseudo-random rotation
    (Listing 1: workers get randomly assigned column subsets)."""
    offset = (epoch * 2654435761) % params.n_examples
    per_worker = params.n_examples // n_workers
    return [
        (epoch, (offset + w * per_worker) % params.n_examples, per_worker)
        for w in range(n_workers)
    ]


def run_sgd_experiment(platform, params: SGDModelParams, n_workers: int) -> dict:
    """Drive the full training job; returns the Fig. 6 row for this point."""
    worker = build_sgd_worker(params)

    def dispatcher_body(args_list):
        # Listing 1's sgd_main: chain all workers, then await them — so each
        # platform pays its own chaining cost (message bus vs HTTP API).
        handles = []
        for worker_args in args_list:
            handle = yield Chain(worker, worker_args)
            handles.append(handle)
        yield Await(tuple(handles))

    dispatcher = SimFunction("sgd_main", dispatcher_body, working_set=MB)

    env = platform.env
    start = env.now
    failed = False
    for epoch in range(params.n_epochs):
        platform.invoke(dispatcher, sgd_epoch_args(params, n_workers, epoch))
        env.run()
        if platform.metrics.failures:
            failed = True
            break
        # End of epoch: hosts flush their batched weight updates (FAASM's
        # per-host batching; a no-op for the container baseline).
        env.run_process(platform.flush_dirty())
    duration = env.now - start
    peak_mem = max(h.mem_peak for h in platform.cluster.hosts)
    return {
        "workers": n_workers,
        "duration_s": duration,
        "network_gb": platform.cluster.total_transferred_gb(),
        "billable_gb_s": platform.metrics.billable.gb_seconds,
        "peak_host_memory_gb": peak_mem / GB,
        "oom": failed,
        "cold_starts": platform.metrics.cold_starts,
    }


# ----------------------------------------------------------------------
# Inference serving (Fig. 7)
# ----------------------------------------------------------------------


@dataclass
class InferenceModelParams:
    """MobileNet-scale serving (§6.3)."""

    model_bytes: int = 16 * MB
    image_bytes: int = 150_000
    #: Native single-image inference latency (MobileNet-class CPU cost).
    inference_s: float = 0.085
    duration_s: float = 30.0

    def make_function(self, identity: str) -> SimFunction:
        params = self

        def body(arg):
            yield LoadExternal(params.image_bytes)
            yield StateRead("model", params.model_bytes, once_per_unit=True)
            yield Compute(params.inference_s)

        return SimFunction(
            f"classify-{identity}",
            body,
            working_set=4 * MB,
            init_cost_s=2.0,  # loading TFLite + MobileNet in a container
            snapshot_init=True,
        )


def run_inference_experiment(
    platform,
    params: InferenceModelParams,
    rate_per_s: float,
    cold_ratio: float,
) -> dict:
    """Open-loop load at ``rate_per_s`` with ``cold_ratio`` of requests
    arriving from fresh users (= fresh function identities, §6.3)."""
    env = platform.env
    warm_fn = params.make_function("shared")
    n_requests = max(1, int(rate_per_s * params.duration_s))
    interval = 1.0 / rate_per_s
    cold_period = int(1 / cold_ratio) if cold_ratio > 0 else 0
    handles = []

    def load_generator(env):
        for i in range(n_requests):
            if cold_period and i % cold_period == 0:
                fn = params.make_function(f"user-{i}")
            else:
                fn = warm_fn
            handles.append(platform.invoke(fn))
            yield env.timeout(interval)

    env.process(load_generator(env))
    env.run()
    latencies = platform.metrics.latency
    return {
        "rate": rate_per_s,
        "cold_ratio": cold_ratio,
        "requests": latencies.count,
        "median_latency_s": latencies.median(),
        "p99_latency_s": latencies.p(99),
        "latencies": list(latencies.samples),
    }


# ----------------------------------------------------------------------
# Distributed matmul (Fig. 8)
# ----------------------------------------------------------------------


@dataclass
class MatmulModelParams:
    n: int = 1000
    host_flops: float = 4.0e9  # numpy BLAS-ish per-core rate

    @property
    def leaf_rows(self) -> int:
        return self.n // 4

    def block_bytes(self, rows: int, cols: int) -> int:
        return rows * cols * 8


def build_matmul_workload(params: MatmulModelParams) -> SimFunction:
    """Depth-2 branch-8 divide and conquer: 64 leaf mults, 9 merges."""
    n = params.n
    q = n // 4  # leaf block edge
    leaf_flops = 2.0 * q * q * (n // 2)
    leaf_compute = leaf_flops / params.host_flops
    leaf_in = params.block_bytes(q, n // 2)
    leaf_out = params.block_bytes(q, q)

    def leaf_body(arg):
        key = arg
        yield StateRead(f"A{key}", leaf_in)
        yield StateRead(f"B{key}", leaf_in)
        yield Compute(leaf_compute)
        # The leaf's output block is (q x q); stored as intermediate state.
        yield StateWrite(f"R{key}", leaf_out, push=True)

    leaf = SimFunction("mm-leaf", leaf_body, working_set=3 * leaf_in)

    def merge_body(arg):
        prefix, child_edge = arg
        child_bytes = params.block_bytes(child_edge, child_edge)
        for idx in range(8):
            yield StateRead(f"R{prefix}/{idx}", child_bytes)
        yield Compute(8 * child_edge * child_edge / params.host_flops)
        yield StateWrite(
            f"R{prefix}", params.block_bytes(2 * child_edge, 2 * child_edge),
            push=True,
        )

    merge = SimFunction(
        "mm-merge",
        merge_body,
        working_set=2 * leaf_out,
        # The shared-state scheduler co-locates merges with the partial
        # results its leaves just produced — this is where FAASM's network
        # saving on intermediate results comes from (§6.4).
        locality=lambda arg: [f"R{arg[0]}/{idx}" for idx in range(8)],
    )

    def mult_body(arg):
        depth, prefix = arg
        handles = []
        for idx in range(8):
            if depth + 1 == 2:
                handle = yield Chain(leaf, f"{prefix}/{idx}")
            else:
                handle = yield Chain(mult, (depth + 1, f"{prefix}/{idx}"))
            handles.append(handle)
        yield Await(tuple(handles))
        child_edge = q if depth + 1 == 2 else 2 * q
        merge_handle = yield Chain(merge, (prefix, child_edge))
        yield Await((merge_handle,))

    mult = SimFunction("mm-mult", mult_body, working_set=1 * MB)
    return mult


def run_matmul_experiment(platform, params: MatmulModelParams, warm: bool = True) -> dict:
    """Run the job; with ``warm=True`` a throwaway run first populates the
    platform's warm pools (the paper benchmarks repeated executions, so
    container cold starts are off the measured path)."""
    workload = build_matmul_workload(params)
    if warm:
        platform.invoke(workload, (0, "w"))
        platform.env.run()
    calls_before = platform.metrics.latency.count
    bytes_before = platform.cluster.network.totals.bytes_total
    start = platform.env.now
    platform.invoke(workload, (0, "r"))
    platform.env.run()
    return {
        "n": params.n,
        "duration_s": platform.env.now - start,
        "network_gb": (platform.cluster.network.totals.bytes_total - bytes_before) / 1e9,
        "calls": platform.metrics.latency.count - calls_before,
    }
